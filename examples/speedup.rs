//! Speedup curves for one workload on the KSR2-like machine model: the
//! paper's Figure 4 for any benchmark.
//!
//! Usage: cargo run --release -p fsr-core --example speedup -- [workload] [scale]

use fsr_core::experiments::{speedup_sweep, t1_unoptimized, Vsn};
use fsr_workloads::Version;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fmm".into());
    let scale: i64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let w = fsr_workloads::by_name(&name).expect("known workload");
    let procs = [1u32, 2, 4, 8, 12, 16, 20, 28, 40, 48, 56];
    let t1 = t1_unoptimized(&w, scale, 128).unwrap();

    println!("speedups for {} (scale {scale}, 128B blocks)\n", w.name);
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "procs", "unopt", "compiler", "programmer"
    );
    let n = speedup_sweep(&w, Vsn::N, &procs, scale, 128, 0);
    let c = speedup_sweep(&w, Vsn::C, &procs, scale, 128, 0);
    let p = w
        .has(Version::Programmer)
        .then(|| speedup_sweep(&w, Vsn::P, &procs, scale, 128, 0));
    for (i, &np) in procs.iter().enumerate() {
        let ps = p
            .as_ref()
            .map(|c| format!("{:.2}", c.speedups(t1)[i].1))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10}",
            np,
            n.speedups(t1)[i].1,
            c.speedups(t1)[i].1,
            ps
        );
    }
    let (ns, na) = n.max_speedup(t1);
    let (cs, ca) = c.max_speedup(t1);
    println!("\nmax speedup: unopt {ns:.1} ({na} procs), compiler {cs:.1} ({ca} procs)");
}
