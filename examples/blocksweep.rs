//! Block-size sweep: how false sharing grows with the coherence unit —
//! and how the transformations keep it flat (4..=256 bytes, the paper's
//! simulation range).
//!
//! Usage: cargo run --release -p fsr-core --example blocksweep -- [workload]

use fsr_core::{run_pipeline, PipelineConfig, PlanSource};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "topopt".into());
    let w = fsr_workloads::by_name(&name).expect("known workload");
    println!("block-size sweep: {} (8 processors)\n", w.name);
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "block", "unopt fs%", "unopt total%", "comp fs%", "comp total%"
    );
    for block in [4u32, 8, 16, 32, 64, 128, 256] {
        let cfg = PipelineConfig::with_block(block);
        let run = |src: PlanSource| {
            run_pipeline(w.source, &[("NPROC", 8), ("SCALE", 1)], src, &cfg).unwrap()
        };
        let base = run(PlanSource::Unoptimized);
        let opt = run(PlanSource::Compiler);
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            block,
            100.0 * base.false_sharing_miss_rate(),
            100.0 * base.miss_rate(),
            100.0 * opt.false_sharing_miss_rate(),
            100.0 * opt.miss_rate(),
        );
    }
}
