//! Quickstart: the classic false-sharing demo — per-process counters
//! packed into one cache block — analyzed, transformed and measured.
//!
//! Run with: `cargo run --release -p fsr-core --example quickstart`

use fsr_core::{run_pipeline, PipelineConfig, PlanSource};

const SRC: &str = r#"
// Each process increments its own counter; the unoptimized layout packs
// all counters into one cache block.
param NPROC = 8;
shared int counter[NPROC];

fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 2000 {
            counter[p] = counter[p] + 1;
        }
    }
}
"#;

fn main() {
    let cfg = PipelineConfig::with_block(128);

    // 1. Show what the compiler decides.
    let prog = fsr_lang::compile(SRC).unwrap();
    let analysis = fsr_analysis::analyze(&prog).unwrap();
    println!("{}", fsr_analysis::report::render(&prog, &analysis));
    let plan = fsr_transform::plan_for(&prog, &analysis, &cfg.plan_cfg);
    println!("{}", fsr_transform::report::render(&prog, &plan));

    // 2. Measure both layouts.
    let base = run_pipeline(SRC, &[], PlanSource::Unoptimized, &cfg).unwrap();
    let opt = run_pipeline(SRC, &[], PlanSource::Compiler, &cfg).unwrap();

    println!("unoptimized: {}", base.sim);
    println!("transformed: {}", opt.sim);
    println!(
        "\nfalse-sharing misses: {} -> {}  ({}x reduction)",
        base.sim.false_sharing(),
        opt.sim.false_sharing(),
        base.sim.false_sharing().max(1) / opt.sim.false_sharing().max(1)
    );
    println!(
        "execution time:       {} -> {} cycles ({:.1}% faster)",
        base.exec_cycles,
        opt.exec_cycles,
        100.0 * (1.0 - opt.exec_cycles as f64 / base.exec_cycles as f64)
    );
}
