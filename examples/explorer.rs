//! Compiler explorer for the workload suite: show the analysis, the
//! transformation decisions and the per-data-structure miss attribution
//! for any benchmark.
//!
//! Usage:
//!   cargo run --release -p fsr-core --example explorer -- <workload> [nproc] [block]
//!   cargo run --release -p fsr-core --example explorer -- pverify 12 128

use fsr_core::{run_pipeline, PipelineConfig, PlanSource};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| {
        eprintln!(
            "usage: explorer <workload> [nproc] [block]\nworkloads: {}",
            fsr_workloads::all()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    });
    let nproc: i64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let block: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);

    let w = fsr_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`");
        std::process::exit(2);
    });
    println!("== {} — {}\n", w.name, w.description);

    let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", nproc), ("SCALE", 1)]).unwrap();
    let analysis = fsr_analysis::analyze(&prog).unwrap();
    println!("{}", fsr_analysis::report::render(&prog, &analysis));

    let cfg = PipelineConfig::with_block(block);
    let plan = fsr_transform::plan_for(&prog, &analysis, &cfg.plan_cfg);
    println!("{}", fsr_transform::report::render(&prog, &plan));

    for (label, source) in [
        ("unoptimized", PlanSource::Unoptimized),
        ("compiler", PlanSource::Compiler),
    ] {
        let r = run_pipeline(w.source, &[("NPROC", nproc), ("SCALE", 1)], source, &cfg).unwrap();
        println!("== {label}: {}  exec={} cycles", r.sim, r.exec_cycles);
        println!("{}", fsr_sim::report::render_attribution(&r.per_obj));
    }
}
