#!/usr/bin/env bash
# Tier-1 gate: lint + format gate, release build, full test suite, and a
# quick end-to-end smoke run of the Figure 3 regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace
cargo run -q --release --bin fig3 -- --smoke
# Race lint: workload report must match the checked-in golden, and the
# seeded-race mutant suite must get every static verdict right.
cargo run -q --release --bin fsr-lint -- --json | diff -u tests/golden/lint.json -
cargo run -q --release --bin fsr-lint -- --mutants
# Static-vs-dynamic scoring: exit 1 unless precision == 1.000 (no
# unconfirmed static report anywhere) and recall >= 0.85 against the
# happens-before ground truth (relational index domain recovers the
# pairs the section domain alone had to suppress).
cargo run -q --release --bin fsr-lint -- --validate >/dev/null
# False-sharing advisor: FSR-W004 must agree with the simulator's
# per-object miss taxonomy on every workload (completeness per object,
# soundness per block), and the full report is pinned byte-for-byte.
cargo run -q --release --bin fsr-lint -- --advise | diff -u tests/golden/advise.json -
# Coherence protocol invariants on random traces (the vendored proptest
# engine is fixed-seed, so this is deterministic) plus the directory
# backend's cross-protocol equivalence and goldens.
cargo test -q -p fsr-integration --test coherence_props --test directory
# Directory ablation must reproduce the checked-in golden bit-for-bit at
# the pinned knobs (the report is thread-count invariant).
abl_out="$(mktemp)"
scale_out="$(mktemp)"
simd_out="$(mktemp)"
trap 'rm -f "$abl_out" "$scale_out" "$simd_out"' EXIT
FSR_NPROC=8 FSR_SCALE=1 FSR_BENCH_OUT="$abl_out" \
    cargo run -q --release --bin directory_ablation >/dev/null
diff -u tests/golden/directory_ablation.json "$abl_out"
# Sharded-engine equivalence: phase-parallel + banked simulation forced
# on (shard threads >= 2) must be bit-identical to the serial path on
# every workload and protocol, including the randomized property cases.
cargo test -q -p fsr-integration --test shard
# Schedule determinism: a fixed work-steal seed is bit-identical across
# engines, shard modes and batch widths; distinct seeds never collide
# into one trace group or cached result.
cargo test -q -p fsr-integration --test scheduler
# Scale-sweep smoke at pinned knobs: the machine-independent half of
# BENCH_scale.json (exec cycles, refs, miss classes, segment count,
# asserted bit-identical across 1 and 2 shard threads inside the bin)
# must match the checked-in golden.
FSR_NPROC=8 FSR_SCALE=1 FSR_SCALE_THREADS=1,2 FSR_BENCH_OUT="$scale_out" \
    cargo run -q --release --bin scale_sweep -- --golden >/dev/null
diff -u tests/golden/scale_sweep.json "$scale_out"
# Steal-sweep smoke at pinned knobs: per-workload steal counts and the
# false-sharing miss deltas of the work-steal schedule vs round-robin,
# with serial-vs-sharded bit-identity asserted inside the bin, must
# match the checked-in golden.
steal_out="$(mktemp)"
trap 'rm -f "$abl_out" "$scale_out" "$simd_out" "$steal_out"' EXIT
FSR_NPROC=8 FSR_SCALE=1 FSR_BENCH_OUT="$steal_out" \
    cargo run -q --release --bin steal_sweep -- --golden >/dev/null
diff -u tests/golden/steal_sweep.json "$steal_out"
# Engine equivalence (scalar vs SoA vs chunked SoA replay): the simd
# suite again in the accelerated-kernel build (the portable build
# already ran in the workspace test pass), then the bench_simd per-cell
# digest against the checked-in golden at pinned knobs — in both
# feature builds, so the portable and runtime-dispatched AVX2 kernel
# paths are held to the same bits.
cargo test -q -p fsr-integration --test simd --release --features accel
FSR_NPROC=8 FSR_SCALE=1 FSR_BENCH_OUT="$simd_out" \
    cargo run -q --release --bin bench_simd -- --golden >/dev/null 2>&1
diff -u tests/golden/simd.json "$simd_out"
FSR_NPROC=8 FSR_SCALE=1 FSR_BENCH_OUT="$simd_out" \
    cargo run -q --release -p fsr-bench --features accel --bin bench_simd -- --golden >/dev/null 2>&1
diff -u tests/golden/simd.json "$simd_out"
# Daemon smoke: a scripted fsr-serve session (open a workload, lint with
# streamed diagnostics, one cold figure-3-style simulate, the identical
# request again) must reproduce the pinned transcript byte-for-byte —
# which pins, among everything else, that the warm repeat is served from
# the result cache with zero interpreter passes (`"result_hits": 1`,
# `"interpretations": 0` in the second simulate's stats). fmt/clippy
# coverage of the serve crate rides on the --all/--workspace gates above.
cargo run -q --release --bin fsr-serve < tests/golden/serve_smoke_session.jsonl \
    | diff -u tests/golden/serve_smoke.txt -
echo "tier1: OK"
