#!/usr/bin/env bash
# Tier-1 gate: lint + format gate, release build, full test suite, and a
# quick end-to-end smoke run of the Figure 3 regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace
cargo run -q --release --bin fig3 -- --smoke
# Race lint: workload report must match the checked-in golden, and the
# seeded-race mutant suite must get every static verdict right.
cargo run -q --release --bin fsr-lint -- --json | diff -u tests/golden/lint.json -
cargo run -q --release --bin fsr-lint -- --mutants
echo "tier1: OK"
