#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a quick end-to-end
# smoke run of the Figure 3 regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run -q --release --bin fig3 -- --smoke
echo "tier1: OK"
