//! Cross-backend equivalence on the real workloads plus directory
//! goldens.
//!
//! The directory backend exists to change *costs*, never *semantics*:
//! word-level access totals, the miss taxonomy, and every per-object
//! attribution must be bit-identical across MSI + ring, MESI + ring and
//! directory + home-dir on all ten paper workloads. The golden tests
//! then pin the directory-specific counters (home transactions, hop
//! classes, per-home occupancy) on the counters kernel so cost-model
//! drift is caught as loudly as classification drift.

use fsr_core::driver::{run_batch, Job};
use fsr_core::experiments::{directory_ablation, plan_spec, Backend, Vsn};
use fsr_core::{run_pipeline, InterconnectKind, MissKind, PlanSource, ProtocolKind};
use std::collections::BTreeMap;
use std::sync::Arc;

const NPROC: i64 = 8;
const SCALE: i64 = 1;
const BLOCK: u32 = 128;

/// Every workload × {unopt, compiler} × every ablation backend, one
/// batch. Returns results keyed by (program, version, backend index).
fn run_matrix() -> BTreeMap<(String, String, usize), fsr_core::RunResult> {
    let mut jobs: Vec<Job<(String, String, usize)>> = Vec::new();
    for w in fsr_workloads::all() {
        for v in [Vsn::N, Vsn::C] {
            for (bi, b) in Backend::ABLATION.iter().enumerate() {
                jobs.push(Job {
                    meta: (w.name.to_string(), v.label().to_string(), bi),
                    src: Arc::from(w.source),
                    params: vec![("NPROC".into(), NPROC), ("SCALE".into(), SCALE)],
                    plan: plan_spec(&w, v),
                    cfg: b.config(BLOCK),
                });
            }
        }
    }
    run_batch(jobs, 0)
        .into_iter()
        .map(|(j, r)| (j.meta, r.expect("workload runs on every backend")))
        .collect()
}

#[test]
fn all_workloads_classify_identically_on_every_backend() {
    let out = run_matrix();
    for w in fsr_workloads::all() {
        for v in ["unopt", "compiler"] {
            let key = |bi: usize| (w.name.to_string(), v.to_string(), bi);
            let base = &out[&key(0)];
            for bi in 1..Backend::ABLATION.len() {
                let r = &out[&key(bi)];
                let tag = format!("{}/{v} vs {:?}", w.name, Backend::ABLATION[bi]);

                // Word-level access totals.
                assert_eq!(r.sim.refs, base.sim.refs, "{tag}: refs");
                assert_eq!(r.sim.reads, base.sim.reads, "{tag}: reads");
                assert_eq!(r.sim.writes, base.sim.writes, "{tag}: writes");

                // The paper's taxonomy, in aggregate and per object.
                assert_eq!(r.sim.misses, base.sim.misses, "{tag}: miss classes");
                assert_eq!(r.per_obj, base.per_obj, "{tag}: per-object misses");
                assert_eq!(r.per_obj_refs, base.per_obj_refs, "{tag}: per-object refs");

                // Write-invalidate traffic: directory reuses the MSI
                // state machine, so invalidations match MSI exactly.
                assert_eq!(
                    r.sim.invalidations, base.sim.invalidations,
                    "{tag}: invalidations"
                );
            }
        }
    }
}

#[test]
fn directory_counters_appear_only_under_the_directory_backend() {
    let out = run_matrix();
    for ((prog, vsn, bi), r) in &out {
        let b = Backend::ABLATION[*bi];
        let tag = format!("{prog}/{vsn} on {b:?}");
        if b.protocol == ProtocolKind::Directory {
            assert_eq!(
                r.sim.dir_txns,
                r.sim.total_misses() + r.sim.upgrades,
                "{tag}: every miss and upgrade visits the home"
            );
        } else {
            assert_eq!(r.sim.dir_txns, 0, "{tag}: snooping has no home");
        }
        if b.interconnect == InterconnectKind::HomeDir {
            assert_eq!(
                r.timing.two_hop + r.timing.three_hop,
                r.sim.total_misses() + r.sim.upgrades,
                "{tag}: every home transaction has a hop class"
            );
        } else {
            assert_eq!(r.timing.two_hop, 0, "{tag}");
            assert_eq!(r.timing.three_hop, 0, "{tag}");
        }
    }
}

const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
    fn main() { forall p in 0 .. NPROC { var i;
        for i in 0 .. 200 { c[p] = c[p] + 1; } } }";

#[test]
fn counters_kernel_directory_golden() {
    // The directory analog of `counters_kernel_matches_pre_refactor_golden`
    // in tests/backends.rs: exact counters under directory + home-dir.
    // Classification columns must equal the MSI golden; the cost columns
    // pin the 2/3-hop model.
    let cfg = Backend::ABLATION[2].config(128);
    assert_eq!(cfg.protocol, ProtocolKind::Directory);
    assert_eq!(cfg.machine.interconnect, InterconnectKind::HomeDir);
    let r = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();

    // Identical to the MSI/ring golden: trace-derived counters.
    assert_eq!(r.sim.refs, 1600);
    assert_eq!(r.sim.reads, 800);
    assert_eq!(r.sim.writes, 800);
    assert_eq!(r.sim.misses, [4, 0, 0, 1197]);
    assert_eq!(r.sim.upgrades, 200);
    assert_eq!(r.sim.invalidations, 1200);
    assert_eq!(r.sim.exclusive_hits, 0, "directory uses MSI cache states");

    // Directory-specific: every one of the 1201 misses and 200 upgrades
    // is a home transaction.
    assert_eq!(r.sim.dir_txns, 1401);
}

#[test]
fn ablation_rows_are_complete_and_internally_consistent() {
    let rows = directory_ablation(&["maxflow", "mp3d"], NPROC, SCALE, BLOCK, 0);
    // 2 workloads × 2 versions × 3 backends.
    assert_eq!(rows.len(), 12);

    for name in ["maxflow", "mp3d"] {
        for vsn in ["unopt", "compiler"] {
            let cell: Vec<_> = rows
                .iter()
                .filter(|r| r.program == name && r.version == vsn)
                .collect();
            assert_eq!(cell.len(), 3, "{name}/{vsn}");
            let base = cell[0];
            assert_eq!(base.protocol, "msi");
            for r in &cell[1..] {
                assert_eq!(r.misses, base.misses, "{name}/{vsn}: taxonomy");
            }
            let dir = cell
                .iter()
                .find(|r| r.protocol == "directory")
                .expect("directory row");
            assert_eq!(dir.interconnect, "home-dir");
            assert!(dir.dir_txns > 0, "{name}/{vsn}: home saw traffic");
            let fs = base.misses[MissKind::FalseSharing as usize];
            if vsn == "unopt" {
                assert!(fs > 0, "{name} unopt must exhibit false sharing");
            }
        }
    }
}
