//! Engine equivalence suite for the struct-of-arrays / chunked-replay
//! simulator hot path ([`fsr_core::SimEngine`]).
//!
//! The scalar engine is the semantic reference: the SoA probe-first
//! path and the chunked lane-parallel replay are *optimizations*, and
//! these tests pin that they are bit-identical — every counter, every
//! outcome, every timing statistic — across protocols, interconnects,
//! workloads, random reference streams, and forced-shard
//! configurations. Any divergence is a bug in the fast path, never an
//! acceptable approximation.

use fsr_core::driver::{run_batch_sharded, Job, PlanSourceSpec, ShardMode};
use fsr_core::{CacheConfig, InterconnectKind, PipelineConfig, ProtocolKind, RunResult, SimEngine};
use fsr_sim::{BankedSim, Outcome, CHUNK_LANES};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests in this binary: the interpreter-run and segment
/// counters are process-global, so concurrent tests would perturb each
/// other's deltas.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Each protocol on its natural interconnect (directory traffic needs
/// the home-node fabric for its 2/3-hop costs to be exercised).
fn backend_pairs() -> [(ProtocolKind, InterconnectKind); 3] {
    [
        (ProtocolKind::Msi, InterconnectKind::Ksr2Ring),
        (ProtocolKind::Mesi, InterconnectKind::Bus),
        (ProtocolKind::Directory, InterconnectKind::HomeDir),
    ]
}

fn assert_same(want: &RunResult, got: &RunResult, ctx: &str) {
    assert_eq!(want.nproc, got.nproc, "{ctx}: nproc");
    assert_eq!(want.sim, got.sim, "{ctx}: sim stats");
    assert_eq!(want.per_obj, got.per_obj, "{ctx}: per-object misses");
    assert_eq!(
        want.per_obj_coherence, got.per_obj_coherence,
        "{ctx}: per-object coherence"
    );
    assert_eq!(
        want.per_obj_refs, got.per_obj_refs,
        "{ctx}: per-object refs"
    );
    assert_eq!(want.exec_cycles, got.exec_cycles, "{ctx}: exec cycles");
    assert_eq!(want.timing, got.timing, "{ctx}: timing stats");
    assert_eq!(want.interp, got.interp, "{ctx}: interp stats");
    assert_eq!(
        want.fs_stall_frac.to_bits(),
        got.fs_stall_frac.to_bits(),
        "{ctx}: fs stall fraction"
    );
}

fn workload_jobs(
    w: &fsr_workloads::Workload,
    nproc: i64,
    blocks: &[u32],
    backend: (ProtocolKind, InterconnectKind),
    engine: SimEngine,
) -> Vec<Job<String>> {
    let src: Arc<str> = Arc::from(w.source);
    blocks
        .iter()
        .flat_map(|&b| {
            [PlanSourceSpec::Unoptimized, PlanSourceSpec::Compiler]
                .into_iter()
                .map(move |plan| (b, plan))
        })
        .map(|(b, plan)| {
            Job::new(
                format!("{}/{:?}/{b}/{plan:?}/{engine}", w.name, backend.0),
                src.clone(),
                &[("NPROC", nproc), ("SCALE", 1)],
                plan,
                PipelineConfig::with_block(b)
                    .with_backends(backend.0, backend.1)
                    .with_engine(engine),
            )
        })
        .collect()
}

/// Run one job list and unwrap every result (all jobs here are valid).
fn run_ok(jobs: Vec<Job<String>>, mode: ShardMode) -> Vec<(String, RunResult)> {
    run_batch_sharded(jobs, 1, mode)
        .into_iter()
        .map(|(job, r)| {
            let meta = job.meta.clone();
            (job.meta, r.unwrap_or_else(|e| panic!("{meta}: {e}")))
        })
        .collect()
}

/// Acceptance gate: all ten workloads × all three protocol backends;
/// the SoA and chunked engines reproduce the scalar engine's
/// `RunResult` bit-for-bit, and the chunked engine composed with
/// forced phase-parallel sharding (the two batching layers stacked)
/// still matches.
#[test]
fn engines_bit_identical_for_every_workload_and_protocol() {
    let _g = gate();
    for w in fsr_workloads::all() {
        for backend in backend_pairs() {
            let jobs = |e| workload_jobs(&w, 4, &[128], backend, e);
            let baseline = run_ok(jobs(SimEngine::Scalar), ShardMode::Off);
            for engine in [SimEngine::Soa, SimEngine::SoaChunked] {
                let got = run_ok(jobs(engine), ShardMode::Off);
                for ((_, want), (meta, got)) in baseline.iter().zip(&got) {
                    assert_same(want, got, meta);
                }
            }
            let sharded = run_ok(jobs(SimEngine::SoaChunked), ShardMode::Force(3));
            for ((_, want), (meta, got)) in baseline.iter().zip(&sharded) {
                assert_same(want, got, meta);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random (workload, nproc, block, shard width): every engine, with
    /// and without forced sharding, reproduces the scalar serial result
    /// on all three protocol backends at once.
    #[test]
    fn engines_equal_on_random_configs(
        wi in 0usize..10,
        bi in 0usize..4,
        nproc in 2i64..6,
        shard_threads in 2usize..5,
    ) {
        let _g = gate();
        let blocks = [16u32, 32, 64, 128];
        let set = fsr_workloads::all();
        let w = &set[wi % set.len()];
        for backend in backend_pairs() {
            let jobs = |e| workload_jobs(w, nproc, &[blocks[bi]], backend, e);
            let baseline = run_ok(jobs(SimEngine::Scalar), ShardMode::Off);
            for engine in SimEngine::ALL {
                for mode in [ShardMode::Off, ShardMode::Force(shard_threads)] {
                    let got = run_ok(jobs(engine), mode);
                    for ((_, want), (meta, got)) in baseline.iter().zip(&got) {
                        assert_same(want, got, &format!("{meta}/{mode:?}"));
                    }
                }
            }
        }
    }

    /// Random reference streams straight into the simulator: the
    /// chunked replay — with proptest-chosen ragged chunk boundaries —
    /// and the per-reference SoA path both reproduce the scalar
    /// engine's outcomes, statistics, and global coherence snapshot on
    /// every protocol and bank count. This is the layer below the
    /// pipeline tests: no interpreter, no timing model, just the
    /// coherence engine on adversarial address streams.
    #[test]
    fn raw_random_traces_replay_bit_identically(
        len in 1usize..600,
        pids in proptest::collection::vec(0u8..4, 600),
        words in proptest::collection::vec(0u32..4096, 600),
        writes in proptest::collection::vec(0u8..2, 600),
        splits in proptest::collection::vec(1usize..(CHUNK_LANES + 1), 32),
        bank_pick in 0usize..3,
    ) {
        let trace: Vec<(u8, u32, bool)> = (0..len)
            .map(|i| (pids[i], words[i], writes[i] == 1))
            .collect();
        let nbanks = [1u32, 2, 4][bank_pick];
        for protocol in [ProtocolKind::Msi, ProtocolKind::Mesi, ProtocolKind::Directory] {
            let cfg = CacheConfig {
                nproc: 4,
                block_bytes: 64,
                cache_bytes: 16 * 1024,
                assoc: 4,
                protocol,
            };
            let bound = 4096 * 4;
            let mut scalar = BankedSim::new(cfg, bound, nbanks);
            let mut soa = BankedSim::new(cfg, bound, nbanks);
            let mut chunked = BankedSim::new(cfg, bound, nbanks);

            let want: Vec<Outcome> = trace
                .iter()
                .map(|&(p, w, wr)| scalar.access_with(SimEngine::Scalar, p, w * 4, wr))
                .collect();
            let got_soa: Vec<Outcome> = trace
                .iter()
                .map(|&(p, w, wr)| soa.access_with(SimEngine::Soa, p, w * 4, wr))
                .collect();
            prop_assert_eq!(&got_soa, &want, "soa outcomes ({:?})", protocol);

            // Chunked: feed the same stream in ragged proptest-chosen
            // chunks (cycling through `splits`), exactly as the sink
            // would at phase boundaries.
            let mut got_chunked = vec![Outcome::default(); trace.len()];
            let mut at = 0usize;
            let mut si = 0usize;
            while at < trace.len() {
                let n = splits[si % splits.len()].min(trace.len() - at);
                si += 1;
                let mut pids = [0u8; CHUNK_LANES];
                let mut addrs = [0u32; CHUNK_LANES];
                let mut mask = 0u64;
                for (j, &(p, w, wr)) in trace[at..at + n].iter().enumerate() {
                    pids[j] = p;
                    addrs[j] = w * 4;
                    if wr {
                        mask |= 1 << j;
                    }
                }
                chunked.access_chunk(
                    &pids[..n],
                    &addrs[..n],
                    mask,
                    &mut got_chunked[at..at + n],
                );
                at += n;
            }
            prop_assert_eq!(&got_chunked, &want, "chunked outcomes ({:?})", protocol);

            prop_assert_eq!(soa.stats(), scalar.stats(), "soa stats ({:?})", protocol);
            prop_assert_eq!(
                chunked.stats(),
                scalar.stats(),
                "chunked stats ({:?})",
                protocol
            );
            prop_assert_eq!(
                soa.snapshot(),
                scalar.snapshot(),
                "soa snapshot ({:?})",
                protocol
            );
            prop_assert_eq!(
                chunked.snapshot(),
                scalar.snapshot(),
                "chunked snapshot ({:?})",
                protocol
            );
        }
    }
}
