//! Schedule-determinism harness for the scheduler axis.
//!
//! The work-stealing schedule is seeded and must be *reproducible*: a
//! fixed `(schedule, seed)` produces bit-identical traces, statistics
//! and batch results no matter which simulation engine consumes the
//! trace, how many worker threads the batch uses, or whether the
//! phase/bank-sharded unit engine is forced on. And the schedule is a
//! cache axis: jobs that differ only in the steal seed must never
//! collide into one trace group or be served from one another's cached
//! results.

use fsr_core::driver::{
    run_batch_sharded, run_batch_sharded_with_stats, Job, PlanSourceSpec, ShardMode,
};
use fsr_core::{
    InterconnectKind, PipelineConfig, ProtocolKind, RunResult, Schedule, SimEngine, World,
};
use proptest::prelude::*;
use std::sync::Arc;

const WS_SEED: u64 = 0xFEED_FACE;

/// Each protocol on its natural interconnect (mirrors `tests/shard.rs`).
fn backend_pairs() -> [(ProtocolKind, InterconnectKind); 3] {
    [
        (ProtocolKind::Msi, InterconnectKind::Ksr2Ring),
        (ProtocolKind::Mesi, InterconnectKind::Bus),
        (ProtocolKind::Directory, InterconnectKind::HomeDir),
    ]
}

fn assert_same(want: &RunResult, got: &RunResult, ctx: &str) {
    assert_eq!(want.nproc, got.nproc, "{ctx}: nproc");
    assert_eq!(want.sim, got.sim, "{ctx}: sim stats");
    assert_eq!(want.per_obj, got.per_obj, "{ctx}: per-object misses");
    assert_eq!(
        want.per_obj_coherence, got.per_obj_coherence,
        "{ctx}: per-object coherence"
    );
    assert_eq!(
        want.per_obj_refs, got.per_obj_refs,
        "{ctx}: per-object refs"
    );
    assert_eq!(want.exec_cycles, got.exec_cycles, "{ctx}: exec cycles");
    assert_eq!(want.timing, got.timing, "{ctx}: timing stats");
    assert_eq!(want.interp, got.interp, "{ctx}: interp stats");
    assert_eq!(
        want.fs_stall_frac.to_bits(),
        got.fs_stall_frac.to_bits(),
        "{ctx}: fs stall fraction"
    );
}

fn sched_jobs(
    w: &fsr_workloads::Workload,
    nproc: i64,
    backend: (ProtocolKind, InterconnectKind),
    engine: SimEngine,
    schedule: Schedule,
) -> Vec<Job<String>> {
    let src: Arc<str> = Arc::from(w.source);
    [PlanSourceSpec::Unoptimized, PlanSourceSpec::Compiler]
        .into_iter()
        .map(|plan| {
            let mut cfg = PipelineConfig::with_block(128).with_backends(backend.0, backend.1);
            cfg.engine = engine;
            cfg.run.schedule = schedule;
            Job::new(
                format!("{}/{:?}/{:?}/{plan:?}", w.name, backend.0, schedule),
                src.clone(),
                &[("NPROC", nproc), ("SCALE", 1)],
                plan,
                cfg,
            )
        })
        .collect()
}

fn results(out: fsr_core::driver::JobResults<String>) -> Vec<(String, RunResult)> {
    out.into_iter()
        .map(|(j, r)| {
            let r = r.unwrap_or_else(|e| panic!("{}: {e:?}", j.meta));
            (j.meta, r)
        })
        .collect()
}

/// Acceptance gate: under a fixed steal seed, every workload × every
/// protocol backend is bit-identical across the three simulation
/// engines, across batch worker counts, and with the phase/bank
/// sharded unit engine forced on.
#[test]
fn work_steal_fixed_seed_is_bit_identical_across_engines_and_shards() {
    let sched = Schedule::WorkSteal { seed: WS_SEED };
    for w in fsr_workloads::all() {
        for backend in backend_pairs() {
            let want = results(run_batch_sharded(
                sched_jobs(&w, 4, backend, SimEngine::Scalar, sched),
                1,
                ShardMode::Off,
            ));
            // Other engines consume the identical schedule.
            for engine in [SimEngine::Soa, SimEngine::SoaChunked] {
                let got = results(run_batch_sharded(
                    sched_jobs(&w, 4, backend, engine, sched),
                    1,
                    ShardMode::Off,
                ));
                for ((ctx, a), (_, b)) in want.iter().zip(&got) {
                    assert_same(a, b, &format!("{ctx} vs {engine:?}"));
                }
            }
            // The sharded unit engine splits the stolen-schedule trace
            // at barrier boundaries and must stitch it back exactly.
            let (out, stats) = run_batch_sharded_with_stats(
                sched_jobs(&w, 4, backend, SimEngine::Scalar, sched),
                2,
                ShardMode::Force(3),
            );
            assert!(
                stats.segments > 0,
                "forced sharding runs the segment engine"
            );
            for ((ctx, a), (_, b)) in want.iter().zip(&results(out)) {
                assert_same(a, b, &format!("{ctx} sharded"));
            }
        }
    }
}

/// An explicit `Schedule::RoundRobin` is the default: same results as a
/// config that never mentions the schedule, and it never steals.
#[test]
fn round_robin_is_the_default_and_never_steals() {
    let w = fsr_workloads::by_name("maxflow").unwrap();
    let backend = backend_pairs()[0];
    let default_cfg = results(run_batch_sharded(
        {
            let src: Arc<str> = Arc::from(w.source);
            vec![Job::new(
                "default".to_string(),
                src,
                &[("NPROC", 4), ("SCALE", 1)],
                PlanSourceSpec::Unoptimized,
                PipelineConfig::with_block(128).with_backends(backend.0, backend.1),
            )]
        },
        1,
        ShardMode::Off,
    ));
    let explicit = results(run_batch_sharded(
        sched_jobs(&w, 4, backend, SimEngine::default(), Schedule::RoundRobin),
        1,
        ShardMode::Off,
    ));
    assert_same(&default_cfg[0].1, &explicit[0].1, "explicit rr vs default");
    assert_eq!(explicit[0].1.interp.steals, 0, "round-robin never steals");
    assert_eq!(explicit[0].1.timing.steal_joins, 0, "no joins either");
}

/// Cache-key soundness inside one batch: two jobs identical except for
/// the steal seed must land in two trace groups and cost two
/// interpreter passes, while same-seed jobs that differ only in block
/// size (same packed layout) still share one group and one pass.
#[test]
fn distinct_seeds_split_trace_groups_same_seed_shares() {
    let w = fsr_workloads::by_name("pverify").unwrap();
    let backend = backend_pairs()[0];
    let a = Schedule::WorkSteal { seed: 7 };
    let b = Schedule::WorkSteal { seed: 8 };

    // Same seed, two block sizes, packed layout: the trace is
    // layout-identical, so one group and one interpretation serve both.
    let same_seed: Vec<Job<String>> = [64u32, 128]
        .into_iter()
        .map(|blk| {
            let src: Arc<str> = Arc::from(w.source);
            let mut cfg = PipelineConfig::with_block(blk).with_backends(backend.0, backend.1);
            cfg.run.schedule = a;
            Job::new(
                format!("blk{blk}"),
                src,
                &[("NPROC", 4), ("SCALE", 1)],
                PlanSourceSpec::Unoptimized,
                cfg,
            )
        })
        .collect();
    let (_, stats) = run_batch_sharded_with_stats(same_seed, 1, ShardMode::Off);
    assert_eq!(stats.trace_groups, 1, "same seed shares the trace group");
    assert_eq!(stats.interpretations, 1, "one pass drives both blocks");

    // Two seeds, unoptimized plan only: two groups, two passes.
    let jobs: Vec<Job<String>> = [a, b]
        .into_iter()
        .flat_map(|s| {
            let mut js = sched_jobs(&w, 4, backend, SimEngine::Scalar, s);
            js.truncate(1); // unoptimized only
            js
        })
        .collect();
    let (out, stats) = run_batch_sharded_with_stats(jobs, 1, ShardMode::Off);
    assert_eq!(
        stats.trace_groups, 2,
        "seeds must not collide into one group"
    );
    assert_eq!(stats.interpretations, 2, "each seed interprets separately");
    assert_eq!(stats.trace_hits, 0, "no cross-seed trace reuse");
    let rs = results(out);
    assert_ne!(
        rs[0].1.interp, rs[1].1.interp,
        "different seeds schedule differently on this workload"
    );
}

/// The persistent `World` layer keys its trace/result caches on the
/// schedule: repeats within one seed are whole-result hits, a new seed
/// is a miss, and the round-robin entry is never served for a
/// work-steal request.
#[test]
fn world_caches_miss_across_seeds_and_hit_within_one() {
    let mut world = World::new();
    world.open("w", fsr_workloads::by_name("mp3d").unwrap().source);
    let run = |world: &World, schedule: Schedule| {
        let snapshot = world.snapshot();
        let mut cfg = PipelineConfig::with_block(128);
        cfg.run.schedule = schedule;
        let job = Job::new(
            format!("{schedule:?}"),
            snapshot.doc("w").unwrap(),
            &[("NPROC", 4), ("SCALE", 1)],
            PlanSourceSpec::Unoptimized,
            cfg,
        );
        let (out, stats) = snapshot.run_batch_sharded_with_stats(vec![job], 1, ShardMode::Off);
        (results(out).remove(0).1, stats)
    };

    let ws1 = Schedule::WorkSteal { seed: 11 };
    let ws2 = Schedule::WorkSteal { seed: 12 };
    let (r_cold, s_cold) = run(&world, ws1);
    assert_eq!(s_cold.interpretations, 1, "cold seed interprets");
    let (r_warm, s_warm) = run(&world, ws1);
    assert_eq!(s_warm.result_hits, 1, "same seed is a whole-result hit");
    assert_eq!(s_warm.interpretations, 0);
    assert_same(&r_cold, &r_warm, "cached result is the same result");

    let (_, s_other) = run(&world, ws2);
    assert_eq!(s_other.result_hits, 0, "new seed must miss");
    assert_eq!(s_other.interpretations, 1);
    let (_, s_rr) = run(&world, Schedule::RoundRobin);
    assert_eq!(s_rr.result_hits, 0, "rr is yet another key");
    assert_eq!(s_rr.interpretations, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any two distinct seeds split into distinct trace groups — the
    /// fingerprint can never alias two schedules — and a re-run of
    /// either seed alone is bit-identical to its half of the pair.
    #[test]
    fn distinct_seeds_never_collide(s1 in 0u64..1_000_000, delta in 1u64..1_000_000) {
        let s2 = s1.wrapping_add(delta);
        let w = fsr_workloads::by_name("radiosity").unwrap();
        let backend = backend_pairs()[1];
        let mk = |seed| {
            let mut js = sched_jobs(&w, 3, backend, SimEngine::Scalar,
                                    Schedule::WorkSteal { seed });
            js.truncate(1);
            js.remove(0)
        };
        let (out, stats) =
            run_batch_sharded_with_stats(vec![mk(s1), mk(s2)], 1, ShardMode::Off);
        prop_assert_eq!(stats.trace_groups, 2);
        prop_assert_eq!(stats.interpretations, 2);
        prop_assert_eq!(stats.trace_hits, 0);
        let pair = results(out);
        let solo = results(run_batch_sharded(vec![mk(s1)], 1, ShardMode::Off));
        assert_same(&pair[0].1, &solo[0].1, "seed rerun reproduces exactly");
    }
}
