//! Shape tests for the experiment harness: small-scale versions of the
//! paper's tables and figures must show the qualitative results the
//! paper reports.

use fsr_core::experiments::{figure3, headline, speedup_sweep, t1_unoptimized, table2, Vsn};

#[test]
fn figure3_shape_fs_dominates_and_is_removed() {
    let rows = figure3(8, 1, &[128], 0);
    assert_eq!(rows.len(), 12); // 6 programs x 2 versions
    for w in fsr_workloads::figure3_set() {
        let base = rows
            .iter()
            .find(|r| r.program == w.name && r.version == "unopt")
            .unwrap();
        let opt = rows
            .iter()
            .find(|r| r.program == w.name && r.version == "compiler")
            .unwrap();
        assert!(
            opt.fs_miss_rate < base.fs_miss_rate,
            "{}: fs rate {} -> {}",
            w.name,
            base.fs_miss_rate,
            opt.fs_miss_rate
        );
    }
}

#[test]
fn table2_attribution_matches_paper_dominance() {
    let rows = table2(8, 1, &[64, 128], 0).unwrap();
    let get = |name: &str| rows.iter().find(|r| r.program == name).unwrap();

    // Maxflow: pad & align dominates; no G&T or indirection (Table 2).
    let m = get("maxflow");
    assert!(m.pad_pct > m.transpose_pct && m.pad_pct > m.indirection_pct);
    assert_eq!(m.transpose_pct, 0.0);
    assert_eq!(m.indirection_pct, 0.0);

    // Pverify: indirection dominates.
    let p = get("pverify");
    assert!(
        p.indirection_pct > p.transpose_pct,
        "pverify: ind {} vs g&t {}",
        p.indirection_pct,
        p.transpose_pct
    );

    // Fmm / Radiosity / Raytrace: G&T dominates.
    for name in ["fmm", "radiosity", "raytrace"] {
        let r = get(name);
        assert!(
            r.transpose_pct > r.pad_pct && r.transpose_pct > r.indirection_pct,
            "{name}: g&t {} pad {} ind {}",
            r.transpose_pct,
            r.pad_pct,
            r.indirection_pct
        );
    }

    // Topopt: G&T leads, indirection contributes, residual remains.
    let t = get("topopt");
    assert!(t.transpose_pct > t.indirection_pct);
    assert!(t.indirection_pct > 0.0);
    assert!(
        t.total_reduction_pct < 99.9,
        "topopt must keep its residual"
    );
}

#[test]
fn headline_matches_paper_bands() {
    let h = headline(12, 1, 128, 0);
    // Paper: ~70% of misses are false sharing at 128B.
    assert!(
        h.fs_share_of_misses > 0.4 && h.fs_share_of_misses < 0.95,
        "fs share {}",
        h.fs_share_of_misses
    );
    // Paper: ~80% of false-sharing misses eliminated.
    assert!(h.fs_eliminated > 0.6, "eliminated {}", h.fs_eliminated);
    // Paper: total misses roughly halved.
    assert!(
        h.total_miss_change < -0.3,
        "total change {}",
        h.total_miss_change
    );
}

#[test]
fn speedup_curves_order_versions() {
    // Coarse sweep: the compiler version's best point beats the
    // unoptimized version's best point for the N-version programs.
    let procs = [1, 4, 8, 16];
    for name in ["pverify", "radiosity", "topopt"] {
        let w = fsr_workloads::by_name(name).unwrap();
        let t1 = t1_unoptimized(&w, 1, 128).unwrap();
        let n = speedup_sweep(&w, Vsn::N, &procs, 1, 128, 0).max_speedup(t1);
        let c = speedup_sweep(&w, Vsn::C, &procs, 1, 128, 0).max_speedup(t1);
        assert!(
            c.0 > n.0,
            "{name}: compiler {:.2} not above unoptimized {:.2}",
            c.0,
            n.0
        );
    }
}

#[test]
fn unoptimized_versions_stop_scaling_earlier() {
    // The paper's central scalability claim, on the starkest example.
    let w = fsr_workloads::by_name("fmm").unwrap();
    let t1 = t1_unoptimized(&w, 1, 128).unwrap();
    let procs = [1, 4, 8, 16, 28, 40];
    let n = speedup_sweep(&w, Vsn::N, &procs, 1, 128, 0);
    let c = speedup_sweep(&w, Vsn::C, &procs, 1, 128, 0);
    let (ns, _) = n.max_speedup(t1);
    let (cs, _) = c.max_speedup(t1);
    assert!(cs > ns * 1.3, "fmm: compiler {cs:.2} vs unopt {ns:.2}");
}
