//! Equivalence and work-sharing guarantees of the batched experiment
//! engine (`run_batch`) against the reference per-job pipeline.

use fsr_core::driver::{run_batch_with_stats, Job, PlanSourceSpec};
use fsr_core::{run_pipeline, PipelineConfig, PlanSource, RunResult};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests in this binary: the interpreter-run counter is
/// process-global, so concurrent tests would perturb each other's deltas.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const BLOCKS: [u32; 6] = [8, 16, 32, 64, 128, 256];

fn spec_of(plan: &PlanSource) -> PlanSourceSpec {
    match plan {
        PlanSource::Unoptimized => PlanSourceSpec::Unoptimized,
        PlanSource::Compiler => PlanSourceSpec::Compiler,
        PlanSource::Programmer(f) => PlanSourceSpec::Programmer(*f),
        PlanSource::Explicit(p) => PlanSourceSpec::Explicit(p.clone()),
    }
}

fn assert_same(want: &RunResult, got: &RunResult, ctx: &str) {
    assert_eq!(want.nproc, got.nproc, "{ctx}: nproc");
    assert_eq!(want.sim, got.sim, "{ctx}: sim stats");
    assert_eq!(want.per_obj, got.per_obj, "{ctx}: per-object misses");
    assert_eq!(
        want.per_obj_coherence, got.per_obj_coherence,
        "{ctx}: per-object coherence"
    );
    assert_eq!(want.exec_cycles, got.exec_cycles, "{ctx}: exec cycles");
    assert_eq!(want.timing, got.timing, "{ctx}: timing stats");
    assert_eq!(want.interp, got.interp, "{ctx}: interp stats");
    assert_eq!(
        want.fs_stall_frac.to_bits(),
        got.fs_stall_frac.to_bits(),
        "{ctx}: fs stall fraction"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random (workload, nproc, block pair), a batch over the N and C
    /// versions at both blocks is bit-identical to per-cell
    /// `run_pipeline` on every statistic.
    #[test]
    fn batch_equals_reference_pipeline(
        wi in 0usize..6,
        bi in 0usize..6,
        bj in 0usize..6,
        nproc in 2i64..5,
    ) {
        let _g = gate();
        let set = fsr_workloads::figure3_set();
        let w = &set[wi % set.len()];
        let src: Arc<str> = Arc::from(w.source);
        let params = [("NPROC", nproc), ("SCALE", 1)];

        let mut jobs: Vec<Job<String>> = Vec::new();
        let mut reference: Vec<RunResult> = Vec::new();
        for &b in &[BLOCKS[bi % 6], BLOCKS[bj % 6]] {
            for plan in [PlanSource::Unoptimized, PlanSource::Compiler] {
                let cfg = PipelineConfig::with_block(b);
                reference.push(run_pipeline(w.source, &params, plan.clone(), &cfg).unwrap());
                jobs.push(Job::new(
                    format!("{}/{b}/{plan:?}", w.name),
                    src.clone(),
                    &params,
                    spec_of(&plan),
                    cfg,
                ));
            }
        }

        let (out, stats) = run_batch_with_stats(jobs, 1);
        prop_assert_eq!(stats.front_ends, 1);
        prop_assert!(stats.trace_groups <= stats.jobs);
        for ((job, got), want) in out.iter().zip(&reference) {
            assert_same(want, got.as_ref().unwrap(), &job.meta);
        }
    }
}

const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
    fn main() { forall p in 0 .. NPROC { var i;
        for i in 0 .. 200 { c[p] = c[p] + 1; } } }";

#[test]
fn fingerprint_equal_jobs_share_one_interpretation() {
    let _g = gate();
    // Unoptimized layouts never consult the block size, so all six block
    // sizes must collapse into a single trace group — and a single
    // interpreter run, which the global run counter can observe.
    let jobs: Vec<Job<u32>> = BLOCKS
        .iter()
        .map(|&b| Job {
            meta: b,
            src: Arc::from(COUNTERS),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::with_block(b),
        })
        .collect();
    let before = fsr_interp::runs_started();
    let (out, stats) = run_batch_with_stats(jobs, 1);
    let after = fsr_interp::runs_started();
    assert_eq!(stats.jobs, 6);
    assert_eq!(stats.front_ends, 1);
    assert_eq!(stats.trace_groups, 1, "one shared trace across blocks");
    assert_eq!(after - before, 1, "exactly one interpreter run");
    assert!(out.iter().all(|(_, r)| r.is_ok()));
    // The shared trace still yields block-dependent simulation results.
    let fs: Vec<u64> = out
        .iter()
        .map(|(_, r)| r.as_ref().unwrap().sim.false_sharing())
        .collect();
    assert!(fs.windows(2).all(|w| w[0] <= w[1]));
    assert!(fs[5] > fs[0], "larger blocks must false-share more");
}

#[test]
fn block_dependent_plans_translate_into_one_pass() {
    let _g = gate();
    // A padded (compiler) layout changes with the block size: each block
    // keeps its own trace group. But all three layouts are direct-only,
    // so address translation merges them into ONE interpreter pass — and
    // statistics must still match the reference path exactly.
    let jobs: Vec<Job<u32>> = [16u32, 64, 256]
        .iter()
        .map(|&b| Job {
            meta: b,
            src: Arc::from(COUNTERS),
            params: vec![],
            plan: PlanSourceSpec::Compiler,
            cfg: PipelineConfig::with_block(b),
        })
        .collect();
    let before = fsr_interp::runs_started();
    let (out, stats) = run_batch_with_stats(jobs, 1);
    let after = fsr_interp::runs_started();
    assert_eq!(stats.trace_groups, 3, "distinct padded address maps");
    assert_eq!(stats.interpretations, 1, "translated into one pass");
    assert_eq!(after - before, 1, "exactly one interpreter run");
    for (job, r) in &out {
        let got = r.as_ref().unwrap();
        let want = run_pipeline(
            COUNTERS,
            &[],
            PlanSource::Compiler,
            &PipelineConfig::with_block(job.meta),
        )
        .unwrap();
        assert_same(&want, got, &format!("block {}", job.meta));
    }
}

#[test]
fn indirection_groups_keep_their_own_pass() {
    let _g = gate();
    // First-touch arena allocation is interpreter state, not a static
    // address map: indirected layouts must never share a translated pass.
    let src = "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
        fn main() {
            var q;
            for q in 0 .. NPROC + 1 { first[q] = q * 64; }
            forall p in 0 .. NPROC { var i; var t;
                for t in 0 .. 50 {
                for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; } }
            }
        }";
    let jobs: Vec<Job<u32>> = [16u32, 64]
        .iter()
        .map(|&b| Job {
            meta: b,
            src: Arc::from(src),
            params: vec![],
            plan: PlanSourceSpec::Compiler,
            cfg: PipelineConfig::with_block(b),
        })
        .collect();
    let before = fsr_interp::runs_started();
    let (out, stats) = run_batch_with_stats(jobs, 1);
    let after = fsr_interp::runs_started();
    assert_eq!(stats.trace_groups, 2);
    assert_eq!(stats.interpretations, 2, "indirection is never translated");
    assert_eq!(after - before, 2);
    for (job, r) in &out {
        let got = r.as_ref().unwrap();
        let want = run_pipeline(
            src,
            &[],
            PlanSource::Compiler,
            &PipelineConfig::with_block(job.meta),
        )
        .unwrap();
        assert_same(&want, got, &format!("block {}", job.meta));
    }
}

#[test]
fn batch_caches_front_ends_across_plan_variants() {
    let _g = gate();
    let mut jobs: Vec<Job<&'static str>> = Vec::new();
    let src: Arc<str> = Arc::from(COUNTERS);
    for (tag, plan) in [
        ("unopt", PlanSourceSpec::Unoptimized),
        ("compiler", PlanSourceSpec::Compiler),
    ] {
        for &b in &[32u32, 128] {
            jobs.push(Job {
                meta: tag,
                src: src.clone(),
                params: vec![],
                plan: plan.clone(),
                cfg: PipelineConfig::with_block(b),
            });
        }
    }
    let (out, stats) = run_batch_with_stats(jobs, 1);
    assert_eq!(stats.front_ends, 1, "same (source, params) compiled once");
    assert_eq!(stats.analyses, 1, "analysis shared by all compiler jobs");
    assert!(out.iter().all(|(_, r)| r.is_ok()));
}
