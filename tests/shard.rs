//! Equivalence guarantees of the phase/bank-sharded unit engine
//! (`run_batch_sharded` with `ShardMode::Force`) against the serial
//! `TeeSink` path, plus the hardened worker-pool error paths.
//!
//! The sharded engine splits each unit's trace at barrier boundaries,
//! simulates address banks concurrently and stitches timing per
//! segment; these tests pin that the stitch is *bit-identical* — every
//! statistic, not approximately — across protocols, interconnects,
//! workloads and random configurations.

use fsr_core::driver::{
    effective_threads, run_batch_sharded, run_batch_sharded_with_stats, Job, PlanSourceSpec,
    ShardMode,
};
use fsr_core::{InterconnectKind, PipelineConfig, PipelineError, ProtocolKind, RunResult};
use proptest::prelude::*;
use std::sync::Arc;

/// Each protocol on its natural interconnect (directory traffic needs
/// the home-node fabric for its 2/3-hop costs to be exercised).
fn backend_pairs() -> [(ProtocolKind, InterconnectKind); 3] {
    [
        (ProtocolKind::Msi, InterconnectKind::Ksr2Ring),
        (ProtocolKind::Mesi, InterconnectKind::Bus),
        (ProtocolKind::Directory, InterconnectKind::HomeDir),
    ]
}

fn assert_same(want: &RunResult, got: &RunResult, ctx: &str) {
    assert_eq!(want.nproc, got.nproc, "{ctx}: nproc");
    assert_eq!(want.sim, got.sim, "{ctx}: sim stats");
    assert_eq!(want.per_obj, got.per_obj, "{ctx}: per-object misses");
    assert_eq!(
        want.per_obj_coherence, got.per_obj_coherence,
        "{ctx}: per-object coherence"
    );
    assert_eq!(
        want.per_obj_refs, got.per_obj_refs,
        "{ctx}: per-object refs"
    );
    assert_eq!(want.exec_cycles, got.exec_cycles, "{ctx}: exec cycles");
    assert_eq!(want.timing, got.timing, "{ctx}: timing stats");
    assert_eq!(want.interp, got.interp, "{ctx}: interp stats");
    assert_eq!(
        want.fs_stall_frac.to_bits(),
        got.fs_stall_frac.to_bits(),
        "{ctx}: fs stall fraction"
    );
}

fn workload_jobs(
    w: &fsr_workloads::Workload,
    nproc: i64,
    blocks: &[u32],
    backend: (ProtocolKind, InterconnectKind),
) -> Vec<Job<String>> {
    let src: Arc<str> = Arc::from(w.source);
    blocks
        .iter()
        .flat_map(|&b| {
            [PlanSourceSpec::Unoptimized, PlanSourceSpec::Compiler]
                .into_iter()
                .map(move |plan| (b, plan))
        })
        .map(|(b, plan)| {
            Job::new(
                format!("{}/{:?}/{b}/{plan:?}", w.name, backend.0),
                src.clone(),
                &[("NPROC", nproc), ("SCALE", 1)],
                plan,
                PipelineConfig::with_block(b).with_backends(backend.0, backend.1),
            )
        })
        .collect()
}

/// Serial vs sharded on the same job list, every statistic compared.
/// The segment counter is per-run `BatchStats` state now (the old
/// process-global counter accumulated across requests in a long-lived
/// daemon), so the assertion needs no cross-test serialization gate.
fn assert_shard_equivalent(jobs: Vec<Job<String>>, shard_threads: usize) {
    let serial = run_batch_sharded(jobs.clone(), 1, ShardMode::Off);
    let (sharded, stats) = run_batch_sharded_with_stats(jobs, 1, ShardMode::Force(shard_threads));
    assert!(
        stats.segments > 0,
        "forced sharding must run the segment engine"
    );
    for ((_, want), (job, got)) in serial.iter().zip(&sharded) {
        match (want, got) {
            (Ok(want), Ok(got)) => assert_same(want, got, &job.meta),
            (want, got) => panic!("{}: serial {want:?} vs sharded {got:?}", job.meta),
        }
    }
}

/// Acceptance gate: all ten workloads × all three protocol backends,
/// phase-parallel + banked bit-identical to serial.
#[test]
fn sharded_engine_matches_serial_for_every_workload_and_protocol() {
    for w in fsr_workloads::all() {
        for backend in backend_pairs() {
            assert_shard_equivalent(workload_jobs(&w, 4, &[128], backend), 3);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random (workload, nproc, blocks, shard width): the sharded path
    /// stays bit-identical on all three protocols at once — the blocks
    /// land in one translation unit, so banks, segment splitting and
    /// the translated groups all engage together.
    #[test]
    fn sharded_equals_serial_on_random_configs(
        wi in 0usize..10,
        bi in 0usize..4,
        bj in 0usize..4,
        nproc in 2i64..6,
        shard_threads in 2usize..5,
    ) {
        let blocks = [16u32, 32, 64, 128];
        let set = fsr_workloads::all();
        let w = &set[wi % set.len()];
        for backend in backend_pairs() {
            let jobs = workload_jobs(w, nproc, &[blocks[bi], blocks[bj]], backend);
            assert_shard_equivalent(jobs, shard_threads);
        }
    }
}

const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
    fn main() { forall p in 0 .. NPROC { var i;
        for i in 0 .. 200 { c[p] = c[p] + 1; } } }";

/// A deterministic panic planted in one job's plan stage must come back
/// as a structured `WorkerPanic` naming that job's index and meta — and
/// every sibling job, running on the same worker pool, must complete
/// normally (the old path poisoned the result slots and aborted the
/// whole batch).
#[test]
fn panicking_job_reports_meta_without_wedging_siblings() {
    let src: Arc<str> = Arc::from(COUNTERS);
    let mk = |meta: &str, plan| Job {
        meta: meta.to_string(),
        src: src.clone(),
        params: vec![],
        plan,
        cfg: PipelineConfig::with_block(64),
    };
    let jobs = vec![
        mk("healthy-0", PlanSourceSpec::Unoptimized),
        mk(
            "seeded-panic",
            PlanSourceSpec::Programmer(|_, _| panic!("seeded plan panic")),
        ),
        mk("healthy-2", PlanSourceSpec::Compiler),
    ];
    let out = run_batch_sharded(jobs, 2, ShardMode::Force(2));
    assert_eq!(out.len(), 3);
    match &out[1].1 {
        Err(PipelineError::Driver(fsr_core::driver::DriverError::WorkerPanic {
            stage,
            job_index,
            job_meta,
            payload,
        })) => {
            assert_eq!(*stage, "plan/layout");
            assert_eq!(*job_index, 1);
            assert!(job_meta.contains("seeded-panic"), "meta: {job_meta}");
            assert!(payload.contains("seeded plan panic"), "payload: {payload}");
        }
        other => panic!("expected structured WorkerPanic, got {other:?}"),
    }
    assert!(out[0].1.is_ok(), "sibling 0 must finish");
    assert!(out[2].1.is_ok(), "sibling 2 must finish");
}

/// Satellite fix: the thread budget resolves available parallelism
/// *before* clamping to the job count, so a small batch on a wide
/// machine never spawns idle workers — and the same rule governs the
/// within-unit shard pool.
#[test]
fn thread_budget_never_oversubscribes_small_batches() {
    assert_eq!(effective_threads(16, 2), 2);
    assert_eq!(effective_threads(1, 100), 1);
    assert_eq!(effective_threads(0, 1), 1, "auto on a single job is serial");
    assert_eq!(
        effective_threads(4, 0),
        1,
        "empty batch still gets a worker"
    );
    let auto = effective_threads(0, usize::MAX);
    assert!(
        auto >= 1,
        "auto resolves to at least one thread, got {auto}"
    );
}
