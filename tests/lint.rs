//! Cross-crate tests of the race & synchronization lint: static
//! verdicts over the ten workloads, dynamic trace confirmation of the
//! designed-in races, and the `refuse_racy` wiring into the transform
//! pipeline. Byte-level stability of `fsr-lint --json` against
//! `tests/golden/lint.json` is checked by `scripts/tier1.sh`.

use fsr_interp::HbChecker;
use fsr_lang::ast::{ObjectKind, Program};
use std::collections::BTreeSet;

const PARAMS: &[(&str, i64)] = &[("NPROC", 4), ("SCALE", 1)];

fn lint(name: &str, source: &str) -> (Program, fsr_analysis::RaceReport) {
    let prog = fsr_lang::compile_with_params(source, PARAMS)
        .unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
    let analysis = fsr_analysis::analyze(&prog).unwrap();
    let report = fsr_analysis::detect(&prog, &analysis);
    (prog, report)
}

fn racy_names(prog: &Program, report: &fsr_analysis::RaceReport) -> BTreeSet<String> {
    report
        .racy_objects()
        .iter()
        .map(|&o| prog.object(o).name.clone())
        .collect()
}

fn dynamic_racy_names(prog: &Program) -> BTreeSet<String> {
    let plan = fsr_transform::LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(prog, &plan, 4);
    let code = fsr_interp::compile_program(prog).unwrap();
    let mut checker = HbChecker::new(4);
    fsr_interp::run(
        prog,
        &layout,
        &code,
        fsr_interp::RunConfig::default(),
        &mut checker,
    )
    .unwrap();
    checker
        .racy_words()
        .iter()
        .filter_map(|&w| layout.attribute(w))
        .filter(|&o| prog.object(o).kind == ObjectKind::SharedData)
        .map(|o| prog.object(o).name.clone())
        .collect()
}

/// The golden facts: which workloads warn, on which objects, with which
/// codes. Everything else must lint clean (zero false positives).
#[test]
fn workload_lint_matches_golden_facts() {
    use fsr_lang::diag::Code;
    let expected: &[(&str, &[(&str, Code)])] = &[
        (
            "maxflow",
            &[
                // Data-dependent node arrays: the relational domain
                // proves their prand-laundered index ranges cover the
                // whole dimension, so the pairs are reported, not
                // suppressed.
                ("excess", Code::UnsynchronizedWriteShare),
                ("height", Code::UnsynchronizedWriteShare),
                ("cap", Code::UnsynchronizedWriteShare),
                ("push_ops", Code::UnsynchronizedWriteShare),
                ("relabel_ops", Code::UnsynchronizedWriteShare),
                ("active_count", Code::LockNotHeldOnAllPaths),
                ("excess_total", Code::LockNotHeldOnAllPaths),
            ],
        ),
        // The shared `val` field is written through data-dependent
        // fan-in indices spanning the whole gate array.
        ("pverify", &[("gates", Code::UnsynchronizedWriteShare)]),
        (
            "raytrace",
            &[
                ("shade_calls", Code::UnsynchronizedWriteShare),
                ("bounce_depth", Code::UnsynchronizedWriteShare),
                ("bound_tests", Code::UnsynchronizedWriteShare),
            ],
        ),
        // Cell accumulators are indexed by particle positions (prand
        // residues mod the cell count — provably full-range).
        (
            "mp3d",
            &[
                ("cell_count", Code::UnsynchronizedWriteShare),
                ("cell_energy", Code::UnsynchronizedWriteShare),
            ],
        ),
        (
            "pthor",
            &[
                ("active", Code::UnsynchronizedWriteShare),
                ("sim_clock", Code::LockNotHeldOnAllPaths),
            ],
        ),
    ];
    for w in fsr_workloads::all() {
        let (prog, report) = lint(w.name, w.source);
        let want = expected
            .iter()
            .find(|(n, _)| *n == w.name)
            .map(|(_, v)| *v)
            .unwrap_or(&[]);
        let got = racy_names(&prog, &report);
        let want_names: BTreeSet<String> = want.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(got, want_names, "{}: racy objects", w.name);
        for (name, code) in want {
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.code == Some(*code) && d.msg.contains(name)),
                "{}: expected {} on `{}`",
                w.name,
                code.id(),
                name
            );
        }
        // Maxflow additionally carries the data-dependent barrier branch.
        let w003 = report
            .diagnostics
            .count_of(fsr_lang::diag::Code::BarrierCountMismatch);
        assert_eq!(w003, usize::from(w.name == "maxflow"), "{}: W003", w.name);
    }
}

/// Every statically reported workload race really happens in the trace:
/// the happens-before checker confirms each racy object dynamically.
#[test]
fn workload_reports_are_dynamically_confirmed() {
    for name in ["maxflow", "pverify", "raytrace", "mp3d", "pthor"] {
        let w = fsr_workloads::by_name(name).unwrap();
        let (prog, report) = lint(w.name, w.source);
        let stat = racy_names(&prog, &report);
        let dynr = dynamic_racy_names(&prog);
        let unconfirmed: Vec<&String> = stat.difference(&dynr).collect();
        assert!(
            unconfirmed.is_empty(),
            "{name}: statically reported but not in trace: {unconfirmed:?}"
        );
    }
}

/// Seeded mutants are detected statically and confirmed dynamically;
/// repaired controls are clean on both sides.
#[test]
fn mutant_suite_validates_end_to_end() {
    for m in fsr_workloads::mutants::all() {
        let (prog, report) = lint(m.name, m.source);
        let stat = racy_names(&prog, &report);
        let dynr = dynamic_racy_names(&prog);
        if m.seeded {
            for obj in m.racy_objects {
                assert!(stat.contains(*obj), "{}: `{obj}` not reported", m.name);
                assert!(dynr.contains(*obj), "{}: `{obj}` not in trace", m.name);
            }
        } else {
            assert!(stat.is_empty(), "{}: control flagged {stat:?}", m.name);
            assert!(dynr.is_empty(), "{}: control raced {dynr:?}", m.name);
        }
    }
}

/// `refuse_racy` flows from `PipelineConfig` into plan construction:
/// with it on, maxflow's genuinely racy counters lose their pad
/// directives while the clean transforms survive.
#[test]
fn refuse_racy_flows_through_pipeline_config() {
    let w = fsr_workloads::by_name("maxflow").unwrap();
    let prog = fsr_lang::compile_with_params(w.source, PARAMS).unwrap();
    let analysis = fsr_analysis::analyze(&prog).unwrap();
    let get = |cfg: &fsr_core::PipelineConfig, name: &str| {
        let mut plan_cfg = cfg.plan_cfg;
        plan_cfg.block_bytes = cfg.block_bytes;
        let plan = fsr_transform::plan_for(&prog, &analysis, &plan_cfg);
        prog.object_by_name(name)
            .and_then(|(oid, _)| plan.get(oid).cloned())
    };
    let default_cfg = fsr_core::PipelineConfig::with_block(64);
    let mut strict_cfg = fsr_core::PipelineConfig::with_block(64);
    strict_cfg.plan_cfg.refuse_racy = true;
    // Default keeps the paper's behaviour: racy counters still padded.
    assert_eq!(
        get(&default_cfg, "active_count"),
        Some(fsr_transform::ObjPlan::PadElems)
    );
    // Strict mode refuses to pad objects the lint proved racy.
    assert_eq!(get(&strict_cfg, "active_count"), None);
    assert_eq!(get(&strict_cfg, "excess_total"), None);
    // Non-racy directives are untouched.
    assert_eq!(
        get(&default_cfg, "qlock"),
        get(&strict_cfg, "qlock"),
        "lock padding must not depend on refuse_racy"
    );
}
