//! The persistent `World` layer: content-addressed sharing across
//! snapshots, whole-result serving on repeat requests, and *surgical*
//! invalidation — editing one of N open sources must recompile and
//! re-interpret only the entries that content touched, observed through
//! the process-global interpreter-run counter (the `tests/batch.rs`
//! technique) and through `Arc` pointer identity of the untouched
//! front ends.

use fsr_core::driver::{Job, PlanSourceSpec, ShardMode};
use fsr_core::{PipelineConfig, World};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests in this binary: the interpreter-run counter is
/// process-global, so concurrent tests would perturb each other's deltas.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Three distinct little programs — distinct contents, so the world
/// holds three independent front ends.
fn source(reps: u32) -> String {
    format!(
        "param NPROC = 2; shared int c[NPROC];
         fn main() {{ forall p in 0 .. NPROC {{ var i;
             for i in 0 .. {reps} {{ c[p] = c[p] + 1; }} }} }}"
    )
}

fn job(src: &Arc<str>, meta: usize) -> Job<usize> {
    Job {
        meta,
        src: src.clone(),
        params: vec![],
        plan: PlanSourceSpec::Unoptimized,
        cfg: PipelineConfig::with_block(64),
    }
}

fn run_all(world: &World, docs: &[&str]) -> (Vec<u64>, fsr_core::driver::BatchStats) {
    let snapshot = world.snapshot();
    let jobs: Vec<Job<usize>> = docs
        .iter()
        .enumerate()
        .map(|(i, name)| job(&snapshot.doc(name).expect("doc open"), i))
        .collect();
    let (out, stats) = snapshot.run_batch_sharded_with_stats(jobs, 1, ShardMode::Off);
    let cycles = out
        .into_iter()
        .map(|(_, r)| r.expect("clean run").exec_cycles)
        .collect();
    (cycles, stats)
}

#[test]
fn editing_one_source_recompiles_only_that_entry() {
    let _g = gate();
    let mut world = World::new();
    let docs = ["a", "b", "c"];
    for (i, name) in docs.iter().enumerate() {
        world.open(name, source(40 + 10 * i as u32));
    }

    // Cold: every doc compiles and interprets once.
    let before = fsr_interp::runs_started();
    let (cold, stats) = run_all(&world, &docs);
    assert_eq!(stats.front_ends, 3, "three distinct contents compile");
    assert_eq!(stats.interpretations, 3);
    assert_eq!(fsr_interp::runs_started() - before, 3);

    // Warm repeat: the whole batch is served from the result cache —
    // zero interpreter passes, zero front-end work, identical results.
    let before = fsr_interp::runs_started();
    let (warm, stats) = run_all(&world, &docs);
    assert_eq!(stats.result_hits, 3, "all three served whole");
    assert_eq!(stats.front_ends + stats.fe_hits, 0);
    assert_eq!(stats.interpretations, 0);
    assert_eq!(
        fsr_interp::runs_started() - before,
        0,
        "no interpreter runs"
    );
    assert_eq!(cold, warm);

    // Hold the untouched front-end Arcs across the edit.
    let snapshot = world.snapshot();
    let fe_b = snapshot
        .front_end(&snapshot.doc("b").unwrap(), &[])
        .unwrap();
    let fe_c = snapshot
        .front_end(&snapshot.doc("c").unwrap(), &[])
        .unwrap();

    // Edit doc "a": exactly its cached artifacts fall out.
    let evicted = world.change("a", source(99)).expect("doc is open");
    assert_eq!(evicted.front_ends, 1, "only the edited content evicts");
    assert_eq!(evicted.results, 1);

    // Re-run all three: only "a" recompiles and re-interprets; "b" and
    // "c" are still whole-result hits backed by the same Arcs.
    let before = fsr_interp::runs_started();
    let (after_edit, stats) = run_all(&world, &docs);
    assert_eq!(stats.front_ends, 1, "one fresh compile");
    assert_eq!(stats.interpretations, 1, "one fresh interpretation");
    assert_eq!(stats.result_hits, 2, "untouched entries served whole");
    assert_eq!(fsr_interp::runs_started() - before, 1);
    assert_ne!(after_edit[0], cold[0], "edited program really changed");
    assert_eq!(after_edit[1..], cold[1..], "untouched results unchanged");

    let snapshot = world.snapshot();
    let fe_b2 = snapshot
        .front_end(&snapshot.doc("b").unwrap(), &[])
        .unwrap();
    let fe_c2 = snapshot
        .front_end(&snapshot.doc("c").unwrap(), &[])
        .unwrap();
    assert!(
        Arc::ptr_eq(&fe_b, &fe_b2),
        "b's front end survived the edit"
    );
    assert!(
        Arc::ptr_eq(&fe_c, &fe_c2),
        "c's front end survived the edit"
    );
}

#[test]
fn reverting_an_edit_is_a_fresh_compile_not_a_hit() {
    let _g = gate();
    // The cache is keyed by content: an edit away and back evicts on
    // each transition, so the revert recompiles — no stale artifacts
    // from the intermediate content survive it.
    let mut world = World::new();
    world.open("a", source(40));
    let (first, _) = run_all(&world, &["a"]);
    world.change("a", source(99)).unwrap();
    run_all(&world, &["a"]);
    let evicted = world.change("a", source(40)).unwrap();
    assert_eq!(evicted.front_ends, 1, "the 99-rep content evicts");
    let before = fsr_interp::runs_started();
    let (reverted, stats) = run_all(&world, &["a"]);
    assert_eq!(stats.front_ends, 1, "revert recompiles from source");
    assert_eq!(fsr_interp::runs_started() - before, 1);
    assert_eq!(reverted, first, "reverted content reproduces old results");
}

#[test]
fn two_docs_sharing_content_share_one_front_end() {
    let _g = gate();
    let mut world = World::new();
    world.open("x", source(50));
    world.open("y", source(50));
    let snapshot = world.snapshot();
    let fx = snapshot
        .front_end(&snapshot.doc("x").unwrap(), &[])
        .unwrap();
    let fy = snapshot
        .front_end(&snapshot.doc("y").unwrap(), &[])
        .unwrap();
    assert!(Arc::ptr_eq(&fx, &fy), "same content, same artifacts");
    // Editing one name must NOT evict the content the other still holds.
    let evicted = world.change("x", source(51)).unwrap();
    assert_eq!(evicted.total(), 0, "content still referenced by `y`");
    let snapshot = world.snapshot();
    let fy2 = snapshot
        .front_end(&snapshot.doc("y").unwrap(), &[])
        .unwrap();
    assert!(Arc::ptr_eq(&fy, &fy2));
}
