//! Backend-trait refactor guarantees: the KSR2 ring + MSI defaults are
//! bit-identical to the pre-refactor pipeline, MESI never changes miss
//! classification, and batched runs share one interpretation across
//! every (protocol, interconnect) combination.

use fsr_core::driver::{run_batch_with_stats, Job, PlanSourceSpec};
use fsr_core::experiments::{speedup_sweep, Vsn};
use fsr_core::{
    run_pipeline, InterconnectKind, MissKind, PipelineConfig, PlanSource, ProtocolKind,
};
use fsr_sim::{CacheConfig, CoherenceEvent, MultiSim};
use proptest::prelude::*;
use std::sync::Arc;

const GOLDEN_PROCS: [u32; 7] = [1, 2, 4, 8, 16, 28, 56];

/// Pre-refactor `speedup_sweep` exec cycles (scale 1, block 128) for the
/// fig4 workloads, captured from the monolithic ring timing model before
/// the `Interconnect` trait existed. The ring backend must reproduce
/// these exactly.
const GOLDEN: [(&str, Vsn, [u64; 7]); 4] = [
    (
        "raytrace",
        Vsn::N,
        [1545876, 1390821, 860882, 598662, 416595, 413759, 692393],
    ),
    (
        "raytrace",
        Vsn::C,
        [1548264, 908523, 524802, 348505, 275995, 318146, 619549],
    ),
    (
        "pverify",
        Vsn::N,
        [400258, 274060, 190381, 145975, 148570, 166219, 229509],
    ),
    (
        "pverify",
        Vsn::C,
        [419799, 240142, 142334, 94289, 69672, 80967, 136889],
    ),
];

#[test]
fn ring_timing_bit_identical_to_pre_refactor() {
    for (name, v, want) in GOLDEN {
        let w = fsr_workloads::by_name(name).unwrap();
        let curve = speedup_sweep(&w, v, &GOLDEN_PROCS, 1, 128, 1);
        let got: Vec<u64> = curve.points.iter().map(|&(_, t)| t).collect();
        assert_eq!(got, want, "{name}/{}", v.label());
    }
}

const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
    fn main() { forall p in 0 .. NPROC { var i;
        for i in 0 .. 200 { c[p] = c[p] + 1; } } }";

#[test]
fn counters_kernel_matches_pre_refactor_golden() {
    // Full-pipeline golden under the MSI + KSR2-ring defaults, captured
    // before the backend traits: simulator counters, per-kind stall
    // attribution, and per-processor queueing must all reproduce.
    let cfg = PipelineConfig::default();
    assert_eq!(cfg.protocol, ProtocolKind::Msi);
    assert_eq!(cfg.machine.interconnect, InterconnectKind::Ksr2Ring);
    let r = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();
    assert_eq!(r.sim.refs, 1600);
    assert_eq!(r.sim.reads, 800);
    assert_eq!(r.sim.writes, 800);
    assert_eq!(r.sim.misses, [4, 0, 0, 1197]);
    assert_eq!(r.sim.upgrades, 200);
    assert_eq!(r.sim.invalidations, 1200);
    assert_eq!(r.sim.exclusive_hits, 0, "MSI never installs Exclusive");
    assert_eq!(r.exec_cycles, 73619);
    assert_eq!(r.timing.queue, vec![34864, 16778, 16, 28]);
    assert_eq!(r.timing.stall_by_kind, [120, 0, 0, 261161]);
    assert_eq!(r.timing.upgrade_stall, 18000);
}

#[test]
fn batch_shares_one_interpretation_across_backends() {
    // Protocol and interconnect are simulator/timing state, not trace
    // state: a batch over every backend combination must collapse into a
    // single trace group and a single interpreter run, exactly like a
    // block-size sweep.
    let src: Arc<str> = Arc::from(COUNTERS);
    let mut jobs: Vec<Job<(ProtocolKind, InterconnectKind)>> = Vec::new();
    for p in ProtocolKind::ALL {
        for ic in InterconnectKind::ALL {
            jobs.push(Job {
                meta: (p, ic),
                src: src.clone(),
                params: vec![],
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::default().with_backends(p, ic),
            });
        }
    }
    let before = fsr_interp::runs_started();
    let (out, stats) = run_batch_with_stats(jobs, 1);
    let after = fsr_interp::runs_started();
    assert_eq!(stats.jobs, 9);
    assert_eq!(stats.front_ends, 1);
    assert_eq!(stats.trace_groups, 1, "backends share one trace group");
    assert_eq!(after - before, 1, "exactly one interpreter run");

    // Miss classification is backend-independent; only coherence events
    // and timing change.
    let results: Vec<_> = out
        .iter()
        .map(|(j, r)| (j.meta, r.as_ref().unwrap()))
        .collect();
    let ((_, base), rest) = results.split_first().unwrap();
    for (meta, r) in rest {
        assert_eq!(r.sim.misses, base.sim.misses, "{meta:?}");
        assert_eq!(r.per_obj, base.per_obj, "{meta:?}");
    }
    for ((p, _), r) in &results {
        match p {
            ProtocolKind::Msi => assert_eq!(r.sim.exclusive_hits, 0),
            ProtocolKind::Mesi => assert_eq!(
                r.sim.upgrades + r.sim.exclusive_hits,
                base.sim.upgrades,
                "MESI silences upgrades one-for-one"
            ),
            ProtocolKind::Directory => {
                // MSI cache states at the home: same transactions, plus
                // every miss and upgrade counted at its home directory.
                assert_eq!(r.sim.upgrades, base.sim.upgrades);
                assert_eq!(r.sim.exclusive_hits, 0);
                assert_eq!(
                    r.sim.dir_txns,
                    r.sim.total_misses() + r.sim.upgrades,
                    "every miss and upgrade visits the home"
                );
            }
        }
    }
}

#[test]
fn bus_and_ring_account_the_same_misses_differently() {
    let msi_ring = PipelineConfig::default();
    let msi_bus = PipelineConfig::default().with_backends(ProtocolKind::Msi, InterconnectKind::Bus);
    let a = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &msi_ring).unwrap();
    let b = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &msi_bus).unwrap();
    assert_eq!(a.sim, b.sim, "interconnect must not affect the simulator");
    // The bus charges every fill (even memory-served cold misses) channel
    // occupancy, so its stall attribution must diverge from the ring's.
    assert_ne!(
        a.timing.stall_by_kind, b.timing.stall_by_kind,
        "bus and ring account stalls identically"
    );
}

/// A synthetic access trace: each draw decodes to (pid, word, is_write).
fn traces() -> impl Strategy<Value = Vec<(u8, u32, bool)>> {
    proptest::collection::vec(0u64..512, 300).prop_map(|raw| {
        raw.into_iter()
            .map(|x| ((x & 3) as u8, ((x >> 2) & 63) as u32, (x >> 8) & 1 == 1))
            .collect()
    })
}

fn run_protocol(protocol: ProtocolKind, trace: &[(u8, u32, bool)]) -> MultiSim {
    let cfg = CacheConfig {
        protocol,
        ..CacheConfig::with_block(32, 4)
    };
    let mut sim = MultiSim::new(cfg, 64 * 4);
    for &(pid, word, write) in trace {
        sim.access(pid, word * 4, write);
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MESI's Exclusive state changes *traffic* (upgrades become silent,
    /// clean remote copies are supplied by intervention) but never the
    /// miss classification: per-block miss counts of every kind are
    /// identical to MSI on any trace.
    #[test]
    fn mesi_classifies_every_miss_exactly_like_msi(trace in traces()) {
        let msi = run_protocol(ProtocolKind::Msi, &trace);
        let mesi = run_protocol(ProtocolKind::Mesi, &trace);

        prop_assert_eq!(msi.stats().refs, mesi.stats().refs);
        prop_assert_eq!(&msi.stats().misses, &mesi.stats().misses);
        prop_assert_eq!(msi.per_block_misses(), mesi.per_block_misses());
        for k in MissKind::ALL {
            prop_assert_eq!(msi.stats().miss_of(k), mesi.stats().miss_of(k));
        }

        // Every write hit MSI pays an upgrade for is, under MESI, either
        // still an upgrade (line was Shared) or a silent Exclusive hit.
        prop_assert_eq!(msi.stats().exclusive_hits, 0);
        prop_assert_eq!(
            msi.stats().upgrades,
            mesi.stats().upgrades + mesi.stats().exclusive_hits
        );
        // A silent upgrade by definition had no other copies to kill.
        prop_assert_eq!(msi.stats().invalidations, mesi.stats().invalidations);
        prop_assert_eq!(
            msi.stats().event_of(CoherenceEvent::Invalidation),
            mesi.stats().event_of(CoherenceEvent::Invalidation)
        );
    }
}
