//! Protocol invariants on random traces, for every coherence protocol
//! (MSI, MESI, home-node directory).
//!
//! Three families:
//! - *coherence*: at every point in the simulation, each block has a
//!   single writer or multiple readers, never both;
//! - *directory exactness*: the presence bitmask and owner the
//!   simulator maintains (which the directory protocol serves from its
//!   home nodes) always match the sharer set recovered by inspecting
//!   every cache;
//! - *classification invariance*: the paper's miss taxonomy (cold /
//!   replacement / true-sharing / false-sharing) is identical across
//!   all three protocols on any trace, even though traffic and cost
//!   differ.
//!
//! The vendored proptest engine is deterministic (fixed seed), so these
//! run the same cases on every invocation — the tier-1 gate relies on
//! that.

use fsr_sim::{CacheConfig, DirState, LineState, MissKind, MultiSim, ProtocolKind};
use proptest::prelude::*;

const NPROC: u32 = 4;
const WORDS: u32 = 64;

/// A synthetic access trace: each draw decodes to (pid, word, is_write).
fn traces() -> impl Strategy<Value = Vec<(u8, u32, bool)>> {
    proptest::collection::vec(0u64..1024, 400).prop_map(|raw| {
        raw.into_iter()
            .map(|x| {
                (
                    (x & 3) as u8,
                    ((x >> 2) & (WORDS as u64 - 1)) as u32,
                    (x >> 8) & 1 == 1,
                )
            })
            .collect()
    })
}

fn sim_for(protocol: ProtocolKind) -> MultiSim {
    let cfg = CacheConfig {
        protocol,
        ..CacheConfig::with_block(32, NPROC)
    };
    MultiSim::new(cfg, WORDS * 4)
}

/// Recover the sharer bitmask and Modified/Exclusive owner of `block`
/// by inspecting every cache — the ground truth the directory's
/// presence bits must match.
fn inspect(sim: &MultiSim, block: u32) -> (u64, Option<u8>) {
    let mut sharers = 0u64;
    let mut owner = None;
    for pid in 0..NPROC as u8 {
        match sim.line_state(pid, block) {
            LineState::Invalid => {}
            LineState::Shared => sharers |= 1 << pid,
            LineState::Modified | LineState::Exclusive => {
                assert!(owner.is_none(), "two owners of block {block}");
                owner = Some(pid);
                sharers |= 1 << pid;
            }
        }
    }
    (sharers, owner)
}

fn check_invariants(sim: &MultiSim) {
    for block in 0..sim.num_blocks() {
        let (sharers, owner) = inspect(sim, block);

        // Single writer or multiple readers: a Modified/Exclusive copy
        // is the only valid copy anywhere.
        if let Some(o) = owner {
            prop_assert_eq!(
                sharers,
                1u64 << o,
                "block {}: owner P{} coexists with other copies",
                block,
                o
            );
        }

        // Directory presence bits are exact, not approximate.
        prop_assert_eq!(
            sim.sharers_of(block),
            sharers,
            "block {}: presence bitmask diverged from the caches",
            block
        );
        prop_assert_eq!(
            sim.owner_of(block),
            owner,
            "block {}: directory owner diverged from the caches",
            block
        );

        // Home-node state derives from those bits.
        let want = match (owner, sharers) {
            (Some(_), _) => DirState::Exclusive,
            (None, 0) => DirState::Uncached,
            (None, _) => DirState::Shared,
        };
        prop_assert_eq!(sim.dir_state(block), want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single-writer-multiple-reader and directory-exactness hold after
    /// every access, under every protocol.
    #[test]
    fn coherence_invariants_hold_under_every_protocol(trace in traces()) {
        for protocol in ProtocolKind::ALL {
            let mut sim = sim_for(protocol);
            for &(pid, word, write) in &trace {
                sim.access(pid, word * 4, write);
                check_invariants(&sim);
            }
        }
    }

    /// The miss taxonomy is a property of the trace and the block size,
    /// not of the protocol: all three protocols classify every miss
    /// identically (outcome by outcome, and in aggregate).
    #[test]
    fn classification_is_identical_across_protocols(trace in traces()) {
        let mut sims: Vec<MultiSim> =
            ProtocolKind::ALL.iter().map(|&p| sim_for(p)).collect();
        for (i, &(pid, word, write)) in trace.iter().enumerate() {
            let kinds: Vec<Option<MissKind>> = sims
                .iter_mut()
                .map(|s| s.access(pid, word * 4, write).miss)
                .collect();
            for k in &kinds[1..] {
                prop_assert_eq!(*k, kinds[0], "ref {} diverged", i);
            }
        }
        let (msi, rest) = sims.split_first().unwrap();
        for s in rest {
            prop_assert_eq!(&s.stats().misses, &msi.stats().misses);
            prop_assert_eq!(s.per_block_misses(), msi.per_block_misses());
        }
    }

    /// Word-level access totals and per-block reference counts are
    /// protocol-invariant; the directory's transaction counter equals
    /// misses + upgrades there and stays zero under snooping.
    #[test]
    fn access_totals_and_dir_txns(trace in traces()) {
        let mut sims: Vec<MultiSim> =
            ProtocolKind::ALL.iter().map(|&p| sim_for(p)).collect();
        for &(pid, word, write) in &trace {
            for s in sims.iter_mut() {
                s.access(pid, word * 4, write);
            }
        }
        let (msi, rest) = sims.split_first().unwrap();
        for s in rest {
            prop_assert_eq!(s.stats().refs, msi.stats().refs);
            prop_assert_eq!(s.stats().reads, msi.stats().reads);
            prop_assert_eq!(s.stats().writes, msi.stats().writes);
            prop_assert_eq!(s.per_block_refs(), msi.per_block_refs());
        }
        for s in &sims {
            let st = s.stats();
            match s.protocol().kind() {
                ProtocolKind::Directory => prop_assert_eq!(
                    st.dir_txns,
                    st.total_misses() + st.upgrades,
                    "every miss and upgrade is a home transaction"
                ),
                _ => prop_assert_eq!(st.dir_txns, 0),
            }
        }
    }
}
