//! The daemon must be an *observationally transparent* cache: every
//! result it serves — to any number of concurrent clients, in any
//! interleaving, warm or cold — must be bit-identical to what the
//! one-shot `run_batch` pipeline computes for the same cell. The matrix
//! is the `tests/shard.rs` acceptance grid: all ten workloads × all
//! three protocol backends.

use fsr_core::driver::{Job, PlanSourceSpec};
use fsr_core::{InterconnectKind, PipelineConfig, ProtocolKind, World};
use fsr_serve::json::Value;
use fsr_serve::proto::run_result_json;
use fsr_serve::{serve_tcp_on, Server};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const NPROC: i64 = 4;
const SCALE: i64 = 1;
const BLOCK: u32 = 128;
const CLIENTS: usize = 3;

fn backend_pairs() -> [(ProtocolKind, InterconnectKind); 3] {
    [
        (ProtocolKind::Msi, InterconnectKind::Ksr2Ring),
        (ProtocolKind::Mesi, InterconnectKind::Bus),
        (ProtocolKind::Directory, InterconnectKind::HomeDir),
    ]
}

/// The serial reference: one-shot `run_batch` on a transient world,
/// rendered through the same wire serializer the daemon uses.
fn reference_cells() -> BTreeMap<String, String> {
    let world = World::transient();
    let snapshot = world.snapshot();
    let mut expected = BTreeMap::new();
    for w in fsr_workloads::all() {
        for (protocol, ic) in backend_pairs() {
            let src: Arc<str> = Arc::from(w.source);
            let params = vec![("NPROC".to_string(), NPROC), ("SCALE".to_string(), SCALE)];
            let job = Job {
                meta: (),
                src: src.clone(),
                params: params.clone(),
                plan: PlanSourceSpec::Unoptimized,
                cfg: PipelineConfig::with_block(BLOCK).with_backends(protocol, ic),
            };
            let mut out = snapshot.run_batch(vec![job], 1);
            let r = out.remove(0).1.expect("reference cell runs clean");
            let fe = snapshot.front_end(&src, &params).expect("compiles");
            expected.insert(
                format!("{}/{}", w.name, protocol.name()),
                run_result_json(&r, &fe.prog).to_string(),
            );
        }
    }
    expected
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(conn.try_clone().expect("clone")),
            writer: conn,
        }
    }

    /// Send one request; collect streamed notifications until the
    /// response arrives. Returns (notifications, response).
    fn rpc(&mut self, req: &str) -> (Vec<Value>, Value) {
        writeln!(self.writer, "{req}").expect("send");
        self.writer.flush().expect("flush");
        let mut notes = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read");
            assert!(n > 0, "daemon hung up");
            let v = fsr_serve::json::parse(line.trim()).expect("valid JSON line");
            if v.get("id").is_some() {
                assert!(v.get("error").is_none(), "request failed: {line}");
                return (notes, v);
            }
            notes.push(v);
        }
    }

    fn open_all(&mut self) {
        for w in fsr_workloads::all() {
            let req = format!(
                r#"{{"id": 0, "method": "open", "params": {{"name": "{0}", "workload": "{0}"}}}}"#,
                w.name
            );
            self.rpc(&req);
        }
    }

    fn simulate(&mut self, workload: &str, protocol: ProtocolKind, ic: InterconnectKind) -> Value {
        let req = format!(
            r#"{{"id": 1, "method": "simulate", "params": {{"name": "{workload}", "params": {{"NPROC": {NPROC}, "SCALE": {SCALE}}}, "config": {{"block": {BLOCK}, "protocol": "{}", "interconnect": "{}"}}}}}}"#,
            protocol.name(),
            ic.name()
        );
        let (_, resp) = self.rpc(&req);
        resp
    }
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let expected = Arc::new(reference_cells());

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || {
        serve_tcp_on(Arc::new(Server::new()), listener).expect("daemon runs");
    });

    // One client opens the docs; the worker clients then race over the
    // full matrix concurrently, each from a different starting offset so
    // their cold misses overlap on *different* cells.
    let mut setup = Client::connect(addr);
    setup.open_all();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let workloads = fsr_workloads::all();
                let backends = backend_pairs();
                let cells: Vec<(usize, usize)> = (0..workloads.len())
                    .flat_map(|w| (0..backends.len()).map(move |b| (w, b)))
                    .collect();
                for i in 0..cells.len() {
                    let (wi, bi) = cells[(i + k * cells.len() / CLIENTS) % cells.len()];
                    let w = &workloads[wi];
                    let (protocol, ic) = backends[bi];
                    // Interleave lint traffic with the simulations.
                    if bi == 0 {
                        let req = format!(
                            r#"{{"id": 2, "method": "lint", "params": {{"name": "{}", "params": {{"NPROC": {NPROC}, "SCALE": {SCALE}}}}}}}"#,
                            w.name
                        );
                        let (notes, resp) = client.rpc(&req);
                        let count = resp
                            .get("result")
                            .and_then(|r| r.get("count"))
                            .and_then(Value::as_i64)
                            .expect("lint count");
                        assert_eq!(
                            notes.len() as i64,
                            count,
                            "{}: streamed diagnostics must match the summary",
                            w.name
                        );
                    }
                    let resp = client.simulate(w.name, protocol, ic);
                    let got = resp
                        .get("result")
                        .and_then(|r| r.get("result"))
                        .expect("simulate result")
                        .to_string();
                    let key = format!("{}/{}", w.name, protocol.name());
                    assert_eq!(
                        got, expected[&key],
                        "client {k}: {key} diverged from one-shot run_batch"
                    );
                }
            })
        })
        .collect();
    for h in workers {
        h.join().expect("client thread");
    }

    // The daemon is now warm on every cell: a repeat request must be a
    // pure result-cache hit — zero interpreter passes, by its own
    // accounting.
    let w0 = &fsr_workloads::all()[0];
    let (protocol, ic) = backend_pairs()[0];
    let resp = setup.simulate(w0.name, protocol, ic);
    let stats = resp
        .get("result")
        .and_then(|r| r.get("stats"))
        .expect("stats")
        .clone();
    let stat = |key: &str| stats.get(key).and_then(Value::as_i64).unwrap();
    assert_eq!(stat("interpretations"), 0, "warm daemon re-interpreted");
    assert_eq!(stat("front_ends"), 0, "warm daemon recompiled");
    assert_eq!(stat("result_hits"), 1);

    let (_, _) = setup.rpc(r#"{"id": 9, "method": "shutdown"}"#);
    daemon.join().expect("daemon exits");
}
