//! Property-based tests of the analysis algebra, the relational index
//! domain, and the layout engine.

use fsr_analysis::lin::Lin;
use fsr_analysis::phase::PhaseSpan;
use fsr_analysis::section::{concrete_overlap, progressions_intersect, Bound, Section};
use fsr_layout::Layout;
use fsr_transform::{LayoutPlan, ObjPlan};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

fn brute_progression(lo: i64, hi: i64, s: i64) -> Vec<i64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x += s;
    }
    v
}

proptest! {
    /// Arithmetic-progression intersection matches brute force.
    #[test]
    fn progression_intersection_exact(
        lo1 in -50i64..50, len1 in 0i64..40, s1 in 1i64..12,
        lo2 in -50i64..50, len2 in 0i64..40, s2 in 1i64..12,
    ) {
        let hi1 = lo1 + len1;
        let hi2 = lo2 + len2;
        let a: HashSet<i64> = brute_progression(lo1, hi1, s1).into_iter().collect();
        let b: HashSet<i64> = brute_progression(lo2, hi2, s2).into_iter().collect();
        let expect = !a.is_disjoint(&b);
        prop_assert_eq!(progressions_intersect(lo1, hi1, s1, lo2, hi2, s2), expect);
    }

    /// Lin substitution is linear: subst(a+b) = subst(a) + subst(b).
    #[test]
    fn lin_subst_is_linear(
        c0a in -100i64..100, ka in -5i64..5,
        c0b in -100i64..100, kb in -5i64..5,
        rc0 in -100i64..100, rk in -5i64..5,
    ) {
        let a = Lin::slot(0).scale(ka).add(&Lin::constant(c0a));
        let b = Lin::slot(0).scale(kb).add(&Lin::constant(c0b));
        let repl = Lin::pdv().scale(rk).add(&Lin::constant(rc0));
        let lhs = a.add(&b).subst(0, &repl);
        let rhs = a.subst(0, &repl).add(&b.subst(0, &repl));
        prop_assert_eq!(lhs, rhs);
    }

    /// Evaluating after substitution equals substituting the value.
    #[test]
    fn lin_subst_then_eval(
        c0 in -100i64..100, k in -5i64..5, pid in 0i64..16,
    ) {
        let e = Lin::slot(3).scale(k).add(&Lin::constant(c0));
        let substituted = e.subst(3, &Lin::pdv());
        let direct = c0 + k * pid;
        prop_assert_eq!(substituted.eval_pdv(pid), Some(direct));
    }

    /// Section concretization: a section that depends on the PDV with a
    /// nonzero unit coefficient never overlaps itself across distinct
    /// pids (points), and always overlaps itself for the same pid.
    #[test]
    fn pdv_point_sections_disjoint(p in 0i64..12, q in 0i64..12, c0 in -8i64..8) {
        let s = Section::Elem(Bound::Lin(Lin::pdv().add(&Lin::constant(c0))));
        let a = s.concretize(p, 64);
        let b = s.concretize(q, 64);
        prop_assert_eq!(concrete_overlap(a, b, false), p == q);
    }

    /// Non-concurrency is exactly the complement of strict ordering:
    /// two phase spans may overlap iff neither is strictly before the
    /// other. This is what licenses the race pass to treat
    /// `strictly_before` as its only source of ordering.
    #[test]
    fn phase_overlap_complements_ordering(
        lo1 in 0u32..20, len1 in 0u32..20,
        lo2 in 0u32..20, len2 in 0u32..20,
    ) {
        let a = PhaseSpan::new(lo1, lo1 + len1);
        let b = PhaseSpan::new(lo2, lo2 + len2);
        prop_assert_eq!(
            a.may_overlap(b),
            !(a.strictly_before(b) || b.strictly_before(a))
        );
    }

    /// Join is an upper bound and monotone for overlap: widening one
    /// operand never loses an overlap the original had.
    #[test]
    fn phase_join_is_monotone_for_overlap(
        lo1 in 0u32..20, len1 in 0u32..20,
        lo2 in 0u32..20, len2 in 0u32..20,
        lo3 in 0u32..20, len3 in 0u32..20,
    ) {
        let a = PhaseSpan::new(lo1, lo1 + len1);
        let b = PhaseSpan::new(lo2, lo2 + len2);
        let c = PhaseSpan::new(lo3, lo3 + len3);
        let j = a.join(b);
        // join covers both operands...
        prop_assert!(j.lo <= a.lo && j.hi >= a.hi);
        prop_assert!(j.lo <= b.lo && j.hi >= b.hi);
        // ...so any overlap either operand had survives the join.
        if a.may_overlap(c) || b.may_overlap(c) {
            prop_assert!(j.may_overlap(c));
        }
    }

    /// merge_sections is an over-approximation: every point of both
    /// inputs is contained in the merge (checked for constant sections).
    #[test]
    fn merge_sections_covers_inputs(
        lo1 in 0i64..32, len1 in 0i64..16, s1 in 1i64..4,
        lo2 in 0i64..32, len2 in 0i64..16, s2 in 1i64..4,
    ) {
        use fsr_analysis::section::merge_sections;
        let mk = |lo: i64, hi: i64, s: i64| Section::Range {
            lo: Bound::constant(lo),
            hi: Bound::constant(hi),
            stride: s,
        };
        let a = mk(lo1, lo1 + len1, s1);
        let b = mk(lo2, lo2 + len2, s2);
        let m = merge_sections(&a, &b);
        let covers = |sec: &Section, x: i64| -> bool {
            match sec.concretize(0, 1 << 20) {
                fsr_analysis::section::Concrete::Progression { lo, hi, stride } => {
                    x >= lo && x <= hi && (x - lo) % stride == 0
                }
                fsr_analysis::section::Concrete::Opaque => true,
                _ => false,
            }
        };
        for x in brute_progression(lo1, lo1 + len1, s1) {
            prop_assert!(covers(&m, x), "merge {m:?} lost {x} from a");
        }
        for x in brute_progression(lo2, lo2 + len2, s2) {
            prop_assert!(covers(&m, x), "merge {m:?} lost {x} from b");
        }
    }
}

/// A fixed program with a variety of object shapes for layout testing.
fn layout_test_prog() -> fsr_lang::Program {
    fsr_lang::compile(
        "param NPROC = 4;
         struct S { int a; int b[3]; }
         shared int x;
         shared int v[17];
         shared int m[5][4];
         shared S recs[7];
         shared lock lk[3];
         private int priv[6];
         fn main() { forall p in 0 .. NPROC { x = p; } }",
    )
    .unwrap()
}

fn arb_layout_plan() -> impl Strategy<Value = LayoutPlan> {
    proptest::collection::vec(0u8..5, 6).prop_map(|choices| {
        let mut plan = LayoutPlan::unoptimized(64);
        // Objects: x, v, m, recs, lk, priv (ids 0..6 in decl order).
        for (i, c) in choices.iter().enumerate() {
            let oid = fsr_lang::ast::ObjId(i as u32);
            let d = match (i, c) {
                (4, 0 | 1) => Some(ObjPlan::PadLock),
                (4, _) | (5, _) => None,
                (_, 1) => Some(ObjPlan::PadElems),
                (1, 2) => Some(ObjPlan::Transpose {
                    owner: fsr_analysis::OwnerMap::Interleave { stride: 4, base: 0 },
                    group: None,
                }),
                (2, 2) => Some(ObjPlan::Transpose {
                    owner: fsr_analysis::OwnerMap::Dim { dim: 1 },
                    group: Some(0),
                }),
                (3, 3) => Some(ObjPlan::Indirect {
                    fields: vec![fsr_lang::ast::FieldId(1)],
                }),
                (1, 4) => Some(ObjPlan::Indirect { fields: vec![] }),
                _ => None,
            };
            if let Some(d) = d {
                plan.insert(oid, d, "prop");
            }
        }
        plan
    })
}

proptest! {
    /// Layout injectivity: under any plan, no two distinct logical words
    /// resolve to the same address, and every address lies inside the
    /// arena. (Indirected words are checked for pointer-slot uniqueness.)
    #[test]
    fn layout_addresses_are_injective(plan in arb_layout_plan()) {
        let prog = layout_test_prog();
        let layout = Layout::build(&prog, &plan, 4);
        let mut seen: BTreeMap<u32, (u32, u64, u32)> = BTreeMap::new();
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = fsr_lang::ast::ObjId(i as u32);
            let words = prog.elem_words(obj.elem);
            let copies = if obj.is_shared() { 1 } else { 4 };
            for pid in 0..copies {
                for e in 0..layout.elem_count(oid) {
                    for w in 0..words {
                        let field_sel = match obj.elem {
                            fsr_lang::ast::ElemTy::Int => None,
                            fsr_lang::ast::ElemTy::Struct(sid) => {
                                let sd = prog.struct_(sid);
                                let mut sel = None;
                                for (fi, f) in sd.fields.iter().enumerate() {
                                    if w >= f.offset_words && w < f.offset_words + f.len {
                                        sel = Some((
                                            fsr_lang::ast::FieldId(fi as u32),
                                            w - f.offset_words,
                                        ));
                                    }
                                }
                                sel
                            }
                        };
                        let addr = match layout.resolve(oid, e, field_sel, pid) {
                            fsr_layout::Resolved::Direct(a) => a,
                            // For indirection the *pointer* word must be
                            // unique per (elem, field); data slots are
                            // assigned at run time.
                            fsr_layout::Resolved::Indirect { ptr, off, .. } => {
                                if off > 0 { continue; }
                                ptr
                            }
                        };
                        prop_assert!(
                            (addr as u64) < layout.total_words() as u64,
                            "address {addr} beyond arena"
                        );
                        // Private copies of the same logical word differ per pid.
                        let key = addr;
                        if let Some(prev) = seen.insert(key, (i as u32, e, w + pid * 1000)) {
                            prop_assert!(
                                false,
                                "address collision at {addr}: {:?} vs ({i},{e},{w},pid{pid})",
                                prev
                            );
                        }
                    }
                }
            }
        }
    }

    /// Attribution: every resolved address maps back to its object.
    #[test]
    fn layout_attribution_roundtrips(plan in arb_layout_plan()) {
        let prog = layout_test_prog();
        let layout = Layout::build(&prog, &plan, 4);
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = fsr_lang::ast::ObjId(i as u32);
            for e in 0..layout.elem_count(oid) {
                let field_sel = match obj.elem {
                    fsr_lang::ast::ElemTy::Struct(_) => {
                        Some((fsr_lang::ast::FieldId(0), 0))
                    }
                    _ => None,
                };
                let addr = match layout.resolve(oid, e, field_sel, 0) {
                    fsr_layout::Resolved::Direct(a) => a,
                    fsr_layout::Resolved::Indirect { ptr, .. } => ptr,
                };
                let got = layout.attribute(addr * 4);
                // Grouped transposes attribute to a group member; all other
                // layouts attribute exactly.
                prop_assert!(got.is_some(), "unattributed address {addr}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Relational index domain vs brute-force enumeration.
//
// Leaves are chosen so the concrete feasible set is small and *exact*
// (constants, the process id, and dense ranges built through the public
// `chaos % m + off` path). Every operator is then applied both
// abstractly (RelVal transfer functions) and concretely (exact image
// sets), and every claim the abstract value makes — bounds, congruence,
// dense-run span, process-uniformity — is checked against the exact
// sets. This is the soundness contract `judge_pair` relies on: a wrong
// congruence or bound would let the race pass prove disjointness for
// overlapping accesses, and a wrong `uniform`/`span` would fabricate
// full-range overlaps (static false positives).
// ---------------------------------------------------------------------

use fsr_analysis::RelVal;
use std::collections::BTreeSet;

const REL_NPROC: i64 = 4;

#[derive(Debug, Clone)]
enum RelExpr {
    Const(i64),
    Pdv,
    /// Dense run `{off, .., off + m - 1}`, uniform across processes.
    Range {
        m: i64,
        off: i64,
    },
    Add(Box<RelExpr>, Box<RelExpr>),
    Sub(Box<RelExpr>, Box<RelExpr>),
    Mul(Box<RelExpr>, Box<RelExpr>),
    MulC(Box<RelExpr>, i64),
    RemC(Box<RelExpr>, i64),
    DivC(Box<RelExpr>, i64),
    Abs(Box<RelExpr>),
    Join(Box<RelExpr>, Box<RelExpr>),
}

fn rel_abstract(e: &RelExpr) -> RelVal {
    match e {
        RelExpr::Const(c) => RelVal::constant(*c),
        RelExpr::Pdv => RelVal::pdv(),
        RelExpr::Range { m, off } => RelVal::chaos()
            .rem_const(*m, REL_NPROC)
            .add(&RelVal::constant(*off)),
        RelExpr::Add(a, b) => rel_abstract(a).add(&rel_abstract(b)),
        RelExpr::Sub(a, b) => rel_abstract(a).sub(&rel_abstract(b)),
        RelExpr::Mul(a, b) => rel_abstract(a).mul(&rel_abstract(b), REL_NPROC),
        RelExpr::MulC(a, c) => rel_abstract(a).mul_const(*c),
        RelExpr::RemC(a, m) => rel_abstract(a).rem_const(*m, REL_NPROC),
        RelExpr::DivC(a, c) => rel_abstract(a).div_const(*c, REL_NPROC),
        RelExpr::Abs(a) => rel_abstract(a).abs(REL_NPROC),
        RelExpr::Join(a, b) => rel_abstract(a).join(&rel_abstract(b), REL_NPROC),
    }
}

/// Exact feasible set of the expression for one process id.
fn rel_concrete(e: &RelExpr, pid: i64) -> BTreeSet<i64> {
    let pair = |a: &RelExpr, b: &RelExpr, f: fn(i64, i64) -> i64| -> BTreeSet<i64> {
        let (sa, sb) = (rel_concrete(a, pid), rel_concrete(b, pid));
        sa.iter()
            .flat_map(|&x| sb.iter().map(move |&y| f(x, y)))
            .collect()
    };
    match e {
        RelExpr::Const(c) => [*c].into(),
        RelExpr::Pdv => [pid].into(),
        RelExpr::Range { m, off } => (*off..*off + *m).collect(),
        RelExpr::Add(a, b) => pair(a, b, |x, y| x + y),
        RelExpr::Sub(a, b) => pair(a, b, |x, y| x - y),
        RelExpr::Mul(a, b) => pair(a, b, |x, y| x * y),
        RelExpr::MulC(a, c) => rel_concrete(a, pid).iter().map(|&x| x * c).collect(),
        // PSL `%` and `/` truncate toward zero like Rust's.
        RelExpr::RemC(a, m) => rel_concrete(a, pid).iter().map(|&x| x % m).collect(),
        RelExpr::DivC(a, c) => rel_concrete(a, pid).iter().map(|&x| x / c).collect(),
        RelExpr::Abs(a) => rel_concrete(a, pid).iter().map(|&x| x.abs()).collect(),
        RelExpr::Join(a, b) => {
            let mut s = rel_concrete(a, pid);
            s.extend(rel_concrete(b, pid));
            s
        }
    }
}

fn longest_dense_run(s: &BTreeSet<i64>) -> i64 {
    let (mut best, mut run, mut prev) = (0i64, 0i64, None::<i64>);
    for &x in s {
        run = match prev {
            Some(p) if x == p + 1 => run + 1,
            _ => 1,
        };
        best = best.max(run);
        prev = Some(x);
    }
    best
}

/// Every claim `v` makes must hold of the exact set `s` at `pid`.
fn assert_rel_sound(e: &RelExpr, v: &RelVal, pid: i64, s: &BTreeSet<i64>) {
    for &x in s {
        if let Some(l) = &v.lo {
            let l = l.eval_pdv(pid).expect("test Lins are pdv-affine");
            assert!(l <= x, "{e:?} pid {pid}: lo {l} > member {x} ({v:?})");
        }
        if let Some(h) = &v.hi {
            let h = h.eval_pdv(pid).expect("test Lins are pdv-affine");
            assert!(x <= h, "{e:?} pid {pid}: member {x} > hi {h} ({v:?})");
        }
        if v.modulus >= 2 {
            let r = v.residue.eval_pdv(pid).expect("test Lins are pdv-affine");
            assert!(
                (x - r).rem_euclid(v.modulus) == 0,
                "{e:?} pid {pid}: member {x} violates ≡ {r} (mod {}) ({v:?})",
                v.modulus
            );
        }
    }
    // The sets here are exact, so the advertised dense run must exist.
    assert!(
        longest_dense_run(s) >= v.span,
        "{e:?} pid {pid}: span {} but longest dense run {} in {s:?}",
        v.span,
        longest_dense_run(s)
    );
}

/// Random expression trees, depth <= 2 so the exact sets stay small.
/// (The vendored proptest has no recursive combinators; this implements
/// `Strategy` directly against the deterministic runner.)
struct ArbRelExpr;

fn gen_rel_expr(r: &mut proptest::test_runner::TestRunner, depth: u32) -> RelExpr {
    fn draw(r: &mut proptest::test_runner::TestRunner, lo: i64, hi: i64) -> i64 {
        lo + (r.next_u64() % (hi - lo) as u64) as i64
    }
    fn leaf(r: &mut proptest::test_runner::TestRunner) -> RelExpr {
        match draw(r, 0, 3) {
            0 => RelExpr::Const(draw(r, -12, 12)),
            1 => RelExpr::Pdv,
            _ => RelExpr::Range {
                m: draw(r, 1, 8),
                off: draw(r, -9, 9),
            },
        }
    }
    if depth == 0 {
        return leaf(r);
    }
    match draw(r, 0, 11) {
        0..=2 => leaf(r),
        3 | 4 | 5 | 10 => {
            let op = draw(r, 0, 4);
            let a = Box::new(gen_rel_expr(r, depth - 1));
            let b = Box::new(gen_rel_expr(r, depth - 1));
            match op {
                0 => RelExpr::Add(a, b),
                1 => RelExpr::Sub(a, b),
                2 => RelExpr::Mul(a, b),
                _ => RelExpr::Join(a, b),
            }
        }
        6 => {
            let c = draw(r, -4, 5);
            RelExpr::MulC(Box::new(gen_rel_expr(r, depth - 1)), c)
        }
        7 => {
            let m = draw(r, 1, 10);
            RelExpr::RemC(Box::new(gen_rel_expr(r, depth - 1)), m)
        }
        8 => {
            let c = draw(r, 1, 5);
            RelExpr::DivC(Box::new(gen_rel_expr(r, depth - 1)), c)
        }
        _ => RelExpr::Abs(Box::new(gen_rel_expr(r, depth - 1))),
    }
}

impl Strategy for ArbRelExpr {
    type Value = RelExpr;
    fn pick(&self, runner: &mut proptest::test_runner::TestRunner) -> RelExpr {
        gen_rel_expr(runner, 2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness of every RelVal transfer function against exact
    /// enumeration: bounds, congruence, span, and uniformity all hold
    /// of the brute-forced feasible sets, and `uniform_full` never
    /// claims a coverage the sets do not have.
    #[test]
    fn rel_domain_sound_vs_brute_force(e in ArbRelExpr) {
        let v = rel_abstract(&e);
        let sets: Vec<BTreeSet<i64>> =
            (0..REL_NPROC).map(|p| rel_concrete(&e, p)).collect();
        for (p, s) in sets.iter().enumerate() {
            assert_rel_sound(&e, &v, p as i64, s);
        }
        if v.uniform {
            for s in &sets[1..] {
                prop_assert_eq!(
                    s, &sets[0],
                    "{:?}: claimed uniform but sets differ ({:?})", &e, &v
                );
            }
        }
        for dim in 1..6i64 {
            if v.uniform_full(dim, REL_NPROC) {
                for (p, s) in sets.iter().enumerate() {
                    for x in 0..dim {
                        prop_assert!(
                            s.contains(&x),
                            "{e:?}: uniform_full({dim}) but pid {p} set {s:?} misses {x}"
                        );
                    }
                }
            }
        }
    }

    /// Join is an upper bound: every member of either operand's exact
    /// set is still licensed by the joined abstract value.
    #[test]
    fn rel_join_is_upper_bound(a in ArbRelExpr, b in ArbRelExpr) {
        let j = rel_abstract(&a).join(&rel_abstract(&b), REL_NPROC);
        for p in 0..REL_NPROC {
            let mut u = rel_concrete(&a, p);
            u.extend(rel_concrete(&b, p));
            for &x in &u {
                if let Some(l) = &j.lo {
                    prop_assert!(l.eval_pdv(p).unwrap() <= x);
                }
                if let Some(h) = &j.hi {
                    prop_assert!(x <= h.eval_pdv(p).unwrap());
                }
                if j.modulus >= 2 {
                    let r = j.residue.eval_pdv(p).unwrap();
                    prop_assert!((x - r).rem_euclid(j.modulus) == 0);
                }
            }
        }
    }

    /// Wrap-to-full is exact: a non-negative dense run of length >= m
    /// reduced mod m is the full `[0, m-1]` for every process.
    #[test]
    fn rel_wrap_to_full_exact(m in 2i64..12, excess in 0i64..6, bias in 0i64..5) {
        // A process-biased, non-negative operand with span >= m.
        let x = RelVal::chaos()
            .rem_const(m + excess, REL_NPROC)
            .add(&RelVal::pdv().mul_const(bias));
        let r = x.rem_const(m, REL_NPROC);
        prop_assert!(r.uniform_full(m, REL_NPROC), "{r:?}");
        let (lo, hi) = r.concrete_bounds(REL_NPROC);
        prop_assert_eq!((lo, hi), (Some(0), Some(m - 1)));
    }
}

/// Congruence survival, the second advertised transfer rule: for a
/// non-negative `x ≡ pid (mod NPROC)`, `x % m` with `NPROC | m` keeps
/// the process-distinguishing congruence — this is what lets
/// `judge_pair` prove the interleaved-banking idiom disjoint.
#[test]
fn rel_congruence_survives_wraparound() {
    // x = pid + NPROC * t, t in [0, 5): modulus NPROC, residue pdv.
    let t = RelVal::chaos().rem_const(5, REL_NPROC);
    let x = RelVal::pdv().add(&t.mul_const(REL_NPROC));
    assert_eq!(x.modulus, REL_NPROC);
    let wrapped = x.rem_const(2 * REL_NPROC, REL_NPROC);
    assert_eq!(wrapped.modulus, REL_NPROC, "{wrapped:?}");
    assert_eq!(wrapped.residue, Lin::pdv(), "{wrapped:?}");
    // And the brute-force sets really are pairwise disjoint across pids.
    let e = RelExpr::RemC(
        Box::new(RelExpr::Add(
            Box::new(RelExpr::Pdv),
            Box::new(RelExpr::MulC(
                Box::new(RelExpr::Range { m: 5, off: 0 }),
                REL_NPROC,
            )),
        )),
        2 * REL_NPROC,
    );
    for p in 0..REL_NPROC {
        for q in 0..p {
            assert!(
                rel_concrete(&e, p).is_disjoint(&rel_concrete(&e, q)),
                "pids {p}/{q} collide"
            );
        }
    }
}

#[test]
fn descriptor_limit_is_enforced_everywhere() {
    // Build a program with many distinct point accesses; classification
    // must keep at most MAX_DESCRIPTORS per side.
    let mut body = String::new();
    for k in 0..30 {
        body.push_str(&format!(
            "d[{}] = d[{}] + 1;\n",
            k * 7 % 64,
            (k * 11 + 3) % 64
        ));
    }
    let src = format!(
        "param NPROC = 2; shared int d[64];
         fn main() {{ forall p in 0 .. NPROC {{ {body} }} }}"
    );
    let prog = fsr_lang::compile(&src).unwrap();
    let a = fsr_analysis::analyze(&prog).unwrap();
    for c in &a.classes {
        assert!(c.read.rsds.len() <= fsr_analysis::MAX_DESCRIPTORS);
        assert!(c.write.rsds.len() <= fsr_analysis::MAX_DESCRIPTORS);
    }
}
