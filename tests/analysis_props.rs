//! Property-based tests of the analysis algebra and the layout engine.

use fsr_analysis::lin::Lin;
use fsr_analysis::phase::PhaseSpan;
use fsr_analysis::section::{concrete_overlap, progressions_intersect, Bound, Section};
use fsr_layout::Layout;
use fsr_transform::{LayoutPlan, ObjPlan};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

fn brute_progression(lo: i64, hi: i64, s: i64) -> Vec<i64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x += s;
    }
    v
}

proptest! {
    /// Arithmetic-progression intersection matches brute force.
    #[test]
    fn progression_intersection_exact(
        lo1 in -50i64..50, len1 in 0i64..40, s1 in 1i64..12,
        lo2 in -50i64..50, len2 in 0i64..40, s2 in 1i64..12,
    ) {
        let hi1 = lo1 + len1;
        let hi2 = lo2 + len2;
        let a: HashSet<i64> = brute_progression(lo1, hi1, s1).into_iter().collect();
        let b: HashSet<i64> = brute_progression(lo2, hi2, s2).into_iter().collect();
        let expect = !a.is_disjoint(&b);
        prop_assert_eq!(progressions_intersect(lo1, hi1, s1, lo2, hi2, s2), expect);
    }

    /// Lin substitution is linear: subst(a+b) = subst(a) + subst(b).
    #[test]
    fn lin_subst_is_linear(
        c0a in -100i64..100, ka in -5i64..5,
        c0b in -100i64..100, kb in -5i64..5,
        rc0 in -100i64..100, rk in -5i64..5,
    ) {
        let a = Lin::slot(0).scale(ka).add(&Lin::constant(c0a));
        let b = Lin::slot(0).scale(kb).add(&Lin::constant(c0b));
        let repl = Lin::pdv().scale(rk).add(&Lin::constant(rc0));
        let lhs = a.add(&b).subst(0, &repl);
        let rhs = a.subst(0, &repl).add(&b.subst(0, &repl));
        prop_assert_eq!(lhs, rhs);
    }

    /// Evaluating after substitution equals substituting the value.
    #[test]
    fn lin_subst_then_eval(
        c0 in -100i64..100, k in -5i64..5, pid in 0i64..16,
    ) {
        let e = Lin::slot(3).scale(k).add(&Lin::constant(c0));
        let substituted = e.subst(3, &Lin::pdv());
        let direct = c0 + k * pid;
        prop_assert_eq!(substituted.eval_pdv(pid), Some(direct));
    }

    /// Section concretization: a section that depends on the PDV with a
    /// nonzero unit coefficient never overlaps itself across distinct
    /// pids (points), and always overlaps itself for the same pid.
    #[test]
    fn pdv_point_sections_disjoint(p in 0i64..12, q in 0i64..12, c0 in -8i64..8) {
        let s = Section::Elem(Bound::Lin(Lin::pdv().add(&Lin::constant(c0))));
        let a = s.concretize(p, 64);
        let b = s.concretize(q, 64);
        prop_assert_eq!(concrete_overlap(a, b, false), p == q);
    }

    /// Non-concurrency is exactly the complement of strict ordering:
    /// two phase spans may overlap iff neither is strictly before the
    /// other. This is what licenses the race pass to treat
    /// `strictly_before` as its only source of ordering.
    #[test]
    fn phase_overlap_complements_ordering(
        lo1 in 0u32..20, len1 in 0u32..20,
        lo2 in 0u32..20, len2 in 0u32..20,
    ) {
        let a = PhaseSpan::new(lo1, lo1 + len1);
        let b = PhaseSpan::new(lo2, lo2 + len2);
        prop_assert_eq!(
            a.may_overlap(b),
            !(a.strictly_before(b) || b.strictly_before(a))
        );
    }

    /// Join is an upper bound and monotone for overlap: widening one
    /// operand never loses an overlap the original had.
    #[test]
    fn phase_join_is_monotone_for_overlap(
        lo1 in 0u32..20, len1 in 0u32..20,
        lo2 in 0u32..20, len2 in 0u32..20,
        lo3 in 0u32..20, len3 in 0u32..20,
    ) {
        let a = PhaseSpan::new(lo1, lo1 + len1);
        let b = PhaseSpan::new(lo2, lo2 + len2);
        let c = PhaseSpan::new(lo3, lo3 + len3);
        let j = a.join(b);
        // join covers both operands...
        prop_assert!(j.lo <= a.lo && j.hi >= a.hi);
        prop_assert!(j.lo <= b.lo && j.hi >= b.hi);
        // ...so any overlap either operand had survives the join.
        if a.may_overlap(c) || b.may_overlap(c) {
            prop_assert!(j.may_overlap(c));
        }
    }

    /// merge_sections is an over-approximation: every point of both
    /// inputs is contained in the merge (checked for constant sections).
    #[test]
    fn merge_sections_covers_inputs(
        lo1 in 0i64..32, len1 in 0i64..16, s1 in 1i64..4,
        lo2 in 0i64..32, len2 in 0i64..16, s2 in 1i64..4,
    ) {
        use fsr_analysis::section::merge_sections;
        let mk = |lo: i64, hi: i64, s: i64| Section::Range {
            lo: Bound::constant(lo),
            hi: Bound::constant(hi),
            stride: s,
        };
        let a = mk(lo1, lo1 + len1, s1);
        let b = mk(lo2, lo2 + len2, s2);
        let m = merge_sections(&a, &b);
        let covers = |sec: &Section, x: i64| -> bool {
            match sec.concretize(0, 1 << 20) {
                fsr_analysis::section::Concrete::Progression { lo, hi, stride } => {
                    x >= lo && x <= hi && (x - lo) % stride == 0
                }
                fsr_analysis::section::Concrete::Opaque => true,
                _ => false,
            }
        };
        for x in brute_progression(lo1, lo1 + len1, s1) {
            prop_assert!(covers(&m, x), "merge {m:?} lost {x} from a");
        }
        for x in brute_progression(lo2, lo2 + len2, s2) {
            prop_assert!(covers(&m, x), "merge {m:?} lost {x} from b");
        }
    }
}

/// A fixed program with a variety of object shapes for layout testing.
fn layout_test_prog() -> fsr_lang::Program {
    fsr_lang::compile(
        "param NPROC = 4;
         struct S { int a; int b[3]; }
         shared int x;
         shared int v[17];
         shared int m[5][4];
         shared S recs[7];
         shared lock lk[3];
         private int priv[6];
         fn main() { forall p in 0 .. NPROC { x = p; } }",
    )
    .unwrap()
}

fn arb_layout_plan() -> impl Strategy<Value = LayoutPlan> {
    proptest::collection::vec(0u8..5, 6).prop_map(|choices| {
        let mut plan = LayoutPlan::unoptimized(64);
        // Objects: x, v, m, recs, lk, priv (ids 0..6 in decl order).
        for (i, c) in choices.iter().enumerate() {
            let oid = fsr_lang::ast::ObjId(i as u32);
            let d = match (i, c) {
                (4, 0 | 1) => Some(ObjPlan::PadLock),
                (4, _) | (5, _) => None,
                (_, 1) => Some(ObjPlan::PadElems),
                (1, 2) => Some(ObjPlan::Transpose {
                    owner: fsr_analysis::OwnerMap::Interleave { stride: 4, base: 0 },
                    group: None,
                }),
                (2, 2) => Some(ObjPlan::Transpose {
                    owner: fsr_analysis::OwnerMap::Dim { dim: 1 },
                    group: Some(0),
                }),
                (3, 3) => Some(ObjPlan::Indirect {
                    fields: vec![fsr_lang::ast::FieldId(1)],
                }),
                (1, 4) => Some(ObjPlan::Indirect { fields: vec![] }),
                _ => None,
            };
            if let Some(d) = d {
                plan.insert(oid, d, "prop");
            }
        }
        plan
    })
}

proptest! {
    /// Layout injectivity: under any plan, no two distinct logical words
    /// resolve to the same address, and every address lies inside the
    /// arena. (Indirected words are checked for pointer-slot uniqueness.)
    #[test]
    fn layout_addresses_are_injective(plan in arb_layout_plan()) {
        let prog = layout_test_prog();
        let layout = Layout::build(&prog, &plan, 4);
        let mut seen: BTreeMap<u32, (u32, u64, u32)> = BTreeMap::new();
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = fsr_lang::ast::ObjId(i as u32);
            let words = prog.elem_words(obj.elem);
            let copies = if obj.is_shared() { 1 } else { 4 };
            for pid in 0..copies {
                for e in 0..layout.elem_count(oid) {
                    for w in 0..words {
                        let field_sel = match obj.elem {
                            fsr_lang::ast::ElemTy::Int => None,
                            fsr_lang::ast::ElemTy::Struct(sid) => {
                                let sd = prog.struct_(sid);
                                let mut sel = None;
                                for (fi, f) in sd.fields.iter().enumerate() {
                                    if w >= f.offset_words && w < f.offset_words + f.len {
                                        sel = Some((
                                            fsr_lang::ast::FieldId(fi as u32),
                                            w - f.offset_words,
                                        ));
                                    }
                                }
                                sel
                            }
                        };
                        let addr = match layout.resolve(oid, e, field_sel, pid) {
                            fsr_layout::Resolved::Direct(a) => a,
                            // For indirection the *pointer* word must be
                            // unique per (elem, field); data slots are
                            // assigned at run time.
                            fsr_layout::Resolved::Indirect { ptr, off, .. } => {
                                if off > 0 { continue; }
                                ptr
                            }
                        };
                        prop_assert!(
                            (addr as u64) < layout.total_words() as u64,
                            "address {addr} beyond arena"
                        );
                        // Private copies of the same logical word differ per pid.
                        let key = addr;
                        if let Some(prev) = seen.insert(key, (i as u32, e, w + pid * 1000)) {
                            prop_assert!(
                                false,
                                "address collision at {addr}: {:?} vs ({i},{e},{w},pid{pid})",
                                prev
                            );
                        }
                    }
                }
            }
        }
    }

    /// Attribution: every resolved address maps back to its object.
    #[test]
    fn layout_attribution_roundtrips(plan in arb_layout_plan()) {
        let prog = layout_test_prog();
        let layout = Layout::build(&prog, &plan, 4);
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = fsr_lang::ast::ObjId(i as u32);
            for e in 0..layout.elem_count(oid) {
                let field_sel = match obj.elem {
                    fsr_lang::ast::ElemTy::Struct(_) => {
                        Some((fsr_lang::ast::FieldId(0), 0))
                    }
                    _ => None,
                };
                let addr = match layout.resolve(oid, e, field_sel, 0) {
                    fsr_layout::Resolved::Direct(a) => a,
                    fsr_layout::Resolved::Indirect { ptr, .. } => ptr,
                };
                let got = layout.attribute(addr * 4);
                // Grouped transposes attribute to a group member; all other
                // layouts attribute exactly.
                prop_assert!(got.is_some(), "unattributed address {addr}");
            }
        }
    }
}

#[test]
fn descriptor_limit_is_enforced_everywhere() {
    // Build a program with many distinct point accesses; classification
    // must keep at most MAX_DESCRIPTORS per side.
    let mut body = String::new();
    for k in 0..30 {
        body.push_str(&format!(
            "d[{}] = d[{}] + 1;\n",
            k * 7 % 64,
            (k * 11 + 3) % 64
        ));
    }
    let src = format!(
        "param NPROC = 2; shared int d[64];
         fn main() {{ forall p in 0 .. NPROC {{ {body} }} }}"
    );
    let prog = fsr_lang::compile(&src).unwrap();
    let a = fsr_analysis::analyze(&prog).unwrap();
    for c in &a.classes {
        assert!(c.read.rsds.len() <= fsr_analysis::MAX_DESCRIPTORS);
        assert!(c.write.rsds.len() <= fsr_analysis::MAX_DESCRIPTORS);
    }
}
