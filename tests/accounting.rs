//! Accounting-surface coverage: the `MissKind::COUNT` /
//! `CoherenceEvent::COUNT`-sized arrays that thread through the
//! simulator, timing model and per-object reports, and the
//! `Layout::try_build` overflow guard as the pipeline and the batched
//! driver surface it.
//!
//! These invariants were previously only exercised indirectly through
//! full pipeline runs; here they are asserted directly so a new miss
//! class or event added without updating every consumer fails loudly.

use fsr_core::driver::{run_batch, Job, PlanSourceSpec};
use fsr_core::{
    run_pipeline, InterconnectKind, MissKind, PipelineConfig, PipelineError, PlanSource,
    ProtocolKind, Schedule,
};
use fsr_interp::{compile_program, MemRef, RecordedTrace, RunConfig, TraceEvent};
use fsr_layout::{Layout, LayoutError, MAX_WORDS};
use fsr_sim::{CacheConfig, CoherenceEvent, MultiSim};
use fsr_transform::{LayoutPlan, ObjPlan};
use std::sync::Arc;

#[test]
fn per_kind_enums_are_self_consistent() {
    // The `ALL` tables are the one authority the JSON writers and the
    // report renderers iterate; their discriminants must be dense and
    // their names unique, or per-kind arrays silently misattribute.
    assert_eq!(MissKind::ALL.len(), MissKind::COUNT);
    for (i, k) in MissKind::ALL.iter().enumerate() {
        assert_eq!(*k as usize, i, "MissKind::ALL out of discriminant order");
    }
    let mut names: Vec<&str> = MissKind::ALL.iter().map(|k| k.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), MissKind::COUNT, "duplicate MissKind name");

    assert_eq!(CoherenceEvent::ALL.len(), CoherenceEvent::COUNT);
    for (i, e) in CoherenceEvent::ALL.iter().enumerate() {
        assert_eq!(*e as usize, i, "CoherenceEvent::ALL out of order");
    }
    let mut names: Vec<&str> = CoherenceEvent::ALL.iter().map(|e| e.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), CoherenceEvent::COUNT);

    // Backend selectors ride the same pattern.
    let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), ProtocolKind::ALL.len());
    let mut names: Vec<&str> = InterconnectKind::ALL.iter().map(|i| i.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), InterconnectKind::ALL.len());
}

#[test]
fn trace_event_kind_tables_are_self_consistent() {
    // Same discipline as the miss/event enums: `KIND_NAMES` is sized by
    // `KIND_COUNT` at compile time, so a new trace-event variant added
    // without a name fails to build; here we pin that `kind_index` is
    // dense, in table order, and that the names are unique.
    let one_of_each: [TraceEvent; TraceEvent::KIND_COUNT] = [
        TraceEvent::Access(MemRef {
            pid: 0,
            addr: 0,
            write: false,
            gap: 0,
        }),
        TraceEvent::Sync(vec![0]),
        TraceEvent::Handoff { from: 0, to: 1 },
        TraceEvent::Steal {
            thief: 1,
            victim: 0,
        },
    ];
    for (i, e) in one_of_each.iter().enumerate() {
        assert_eq!(e.kind_index(), i, "kind_index out of table order");
        assert_eq!(e.kind_name(), TraceEvent::KIND_NAMES[i]);
    }
    let mut names = TraceEvent::KIND_NAMES.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), TraceEvent::KIND_COUNT, "duplicate kind name");
}

/// A kernel whose per-process work is deliberately skewed, so the
/// work-stealing schedule actually steals.
const SKEWED: &str = "param NPROC = 4; shared int c[NPROC]; shared lock lk;
    fn main() { forall p in 0 .. NPROC { var i;
        for i in 0 .. (5 + p * 40) { c[p] = c[p] + 1; }
        barrier;
        for i in 0 .. 10 { lock(lk); c[0] = c[0] + 1; unlock(lk); }
        barrier;
        for i in 0 .. (160 - p * 40) { c[p] = c[p] + 2; } } }";

#[test]
fn steal_counters_close_over_the_trace() {
    // The steal counter must agree at every layer: recorded trace
    // events, interpreter stats, and the timing model's applied joins.
    let prog = fsr_lang::compile(SKEWED).unwrap();
    let plan = LayoutPlan::unoptimized(64);
    let layout = Layout::build(&prog, &plan, 4);
    let code = compile_program(&prog).unwrap();
    let cfg = RunConfig {
        schedule: Schedule::WorkSteal { seed: 3 },
        ..Default::default()
    };
    let mut rec = RecordedTrace::default();
    let fin = fsr_interp::run(&prog, &layout, &code, cfg, &mut rec).unwrap();
    let recorded = rec
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Steal { .. }))
        .count() as u64;
    assert!(recorded > 0, "skewed kernel must provoke steals");
    assert_eq!(fin.stats.steals, recorded, "interp counter vs trace");

    // Whole pipeline: the interpreter's count survives to the result
    // and matches the timing model's join count exactly.
    let mut pcfg = PipelineConfig::with_block(64);
    pcfg.run.schedule = Schedule::WorkSteal { seed: 3 };
    let r = run_pipeline(SKEWED, &[], PlanSource::Unoptimized, &pcfg).unwrap();
    assert!(r.interp.steals > 0);
    assert_eq!(r.interp.steals, r.timing.steal_joins, "one join per steal");

    // And round-robin reports zero on both sides.
    let r0 = run_pipeline(
        SKEWED,
        &[],
        PlanSource::Unoptimized,
        &PipelineConfig::with_block(64),
    )
    .unwrap();
    assert_eq!(r0.interp.steals, 0);
    assert_eq!(r0.timing.steal_joins, 0);
}

const COUNTERS: &str = "param NPROC = 4; shared int c[NPROC];
    fn main() { forall p in 0 .. NPROC { var i;
        for i in 0 .. 200 { c[p] = c[p] + 1; } } }";

#[test]
fn per_block_arrays_sum_to_the_global_counters() {
    for protocol in ProtocolKind::ALL {
        let cfg = CacheConfig {
            protocol,
            ..CacheConfig::with_block(32, 4)
        };
        let mut sim = MultiSim::new(cfg, 64 * 4);
        // A deterministic mixed trace: strided writes force sharing,
        // wrap-around reads force replacements.
        for round in 0..50u32 {
            for pid in 0..4u8 {
                let w = (round * 7 + pid as u32 * 3) % 64;
                sim.access(pid, w * 4, round % 3 != 0);
            }
        }
        let st = sim.stats();
        assert_eq!(st.refs, st.reads + st.writes);
        assert_eq!(st.total_misses(), st.misses.iter().sum::<u64>());

        // Per-block arrays are sized by the address space and their
        // columns sum to the global per-kind counters.
        assert_eq!(sim.per_block_misses().len(), sim.num_blocks() as usize);
        assert_eq!(sim.per_block_refs().len(), sim.num_blocks() as usize);
        for k in MissKind::ALL {
            let col: u64 = sim
                .per_block_misses()
                .iter()
                .map(|b| b[k as usize] as u64)
                .sum();
            assert_eq!(col, st.miss_of(k), "{protocol:?}/{}", k.name());
        }
        let refs: u64 = sim.per_block_refs().iter().sum();
        assert_eq!(refs, st.refs, "{protocol:?}: per-block refs");
    }
}

#[test]
fn pipeline_reports_close_over_the_simulator_counters() {
    let cfg = PipelineConfig::default();
    let r = run_pipeline(COUNTERS, &[], PlanSource::Unoptimized, &cfg).unwrap();

    // Per-object miss attribution is total: every miss of every kind
    // lands on some named object (or the explicit unattributed bucket).
    for k in MissKind::ALL {
        let col: u64 = r.per_obj.values().map(|o| o.misses[k as usize]).sum();
        assert_eq!(col, r.sim.miss_of(k), "{}", k.name());
    }
    let refs: u64 = r.per_obj_refs.values().sum();
    assert_eq!(refs, r.sim.refs);

    // Same for the coherence events.
    for e in CoherenceEvent::ALL {
        let col: u64 = r.per_obj_coherence.values().map(|o| o.event_of(e)).sum();
        assert_eq!(col, r.sim.event_of(e), "{}", e.name());
    }

    // Stall attribution uses the same indexing: no stall charged to a
    // miss kind that never occurred.
    for k in MissKind::ALL {
        if r.sim.miss_of(k) == 0 {
            assert_eq!(r.timing.stall_by_kind[k as usize], 0, "{}", k.name());
        }
    }
}

#[test]
fn transpose_blowup_is_rejected_before_address_arithmetic() {
    // 40M words fit unpadded; transposition replicates per process, so
    // at 64 processes the bound crosses the 32-bit word space.
    let src = "param NPROC = 2; shared int big[40000000];
         fn main() { forall p in 0 .. NPROC { big[p] = 1; } }";
    let prog = fsr_lang::compile(src).unwrap();
    let (big, _) = prog.object_by_name("big").unwrap();
    let mut plan = LayoutPlan::unoptimized(128);
    plan.insert(
        big,
        ObjPlan::Transpose {
            owner: fsr_analysis::OwnerMap::Dim { dim: 0 },
            group: None,
        },
        "test",
    );
    assert!(Layout::try_build(&prog, &plan, 2).is_ok());
    let e = Layout::try_build(&prog, &plan, 64).unwrap_err();
    let LayoutError::AddressSpaceOverflow {
        words_bound,
        words_max,
    } = e;
    assert!(words_bound > words_max);
    assert_eq!(words_max, MAX_WORDS);
    // The error names both bounds — it is the user-facing diagnosis.
    let msg = e.to_string();
    assert!(msg.contains(&words_bound.to_string()), "{msg}");
    assert!(msg.contains("addressable space"), "{msg}");
}

#[test]
fn indirect_blowup_is_rejected_before_address_arithmetic() {
    // Indirection doubles the footprint (pointer table + arena): 600M
    // words fit directly but not once indirected.
    let src = "param NPROC = 2; shared int big[600000000];
         fn main() { forall p in 0 .. NPROC { big[p] = 1; } }";
    let prog = fsr_lang::compile(src).unwrap();
    assert!(Layout::try_build(&prog, &LayoutPlan::unoptimized(128), 2).is_ok());
    let (big, _) = prog.object_by_name("big").unwrap();
    let mut plan = LayoutPlan::unoptimized(128);
    plan.insert(big, ObjPlan::Indirect { fields: vec![] }, "test");
    assert!(matches!(
        Layout::try_build(&prog, &plan, 2),
        Err(LayoutError::AddressSpaceOverflow { .. })
    ));
}

#[test]
fn pipeline_and_batch_surface_layout_overflow_as_errors() {
    let huge = "param NPROC = 2; shared int huge[2147483648];
         fn main() { forall p in 0 .. NPROC { huge[p] = 1; } }";

    // Single-run path.
    let err = run_pipeline(
        huge,
        &[],
        PlanSource::Unoptimized,
        &PipelineConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, PipelineError::Layout(_)), "{err}");
    assert!(err.to_string().contains("addressable space"), "{err}");

    // Batched path: the overflowing job fails alone; jobs sharing the
    // batch are unaffected.
    let jobs = vec![
        Job {
            meta: "ok",
            src: Arc::from(COUNTERS),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::default(),
        },
        Job {
            meta: "overflow",
            src: Arc::from(huge),
            params: vec![],
            plan: PlanSourceSpec::Unoptimized,
            cfg: PipelineConfig::default(),
        },
    ];
    let out = run_batch(jobs, 1);
    assert_eq!(out.len(), 2);
    for (job, res) in &out {
        match job.meta {
            "ok" => {
                let r = res.as_ref().expect("healthy job survives the batch");
                assert_eq!(r.sim.refs, 1600);
            }
            _ => {
                let e = res.as_ref().expect_err("overflow job must fail");
                assert!(matches!(e, PipelineError::Layout(_)), "{e}");
            }
        }
    }
}
