//! End-to-end pipeline assertions over the workload suite: the paper's
//! headline effects, expressed as tests.

use fsr_core::{MissKind, PipelineConfig, PlanSource};
use fsr_integration::run_version;
use fsr_workloads::Version;

#[test]
fn compiler_reduces_false_sharing_on_every_unoptimized_program() {
    for w in fsr_workloads::figure3_set() {
        let base = run_version(&w, PlanSource::Unoptimized, 8, 128);
        let opt = run_version(&w, PlanSource::Compiler, 8, 128);
        assert!(
            opt.sim.false_sharing() < base.sim.false_sharing(),
            "{}: FS not reduced ({} -> {})",
            w.name,
            base.sim.false_sharing(),
            opt.sim.false_sharing()
        );
        // The paper: reduction in false sharing always outweighed any
        // spatial-locality loss — total misses fall.
        assert!(
            opt.sim.total_misses() < base.sim.total_misses(),
            "{}: total misses grew ({} -> {})",
            w.name,
            base.sim.total_misses(),
            opt.sim.total_misses()
        );
    }
}

#[test]
fn compiler_improves_execution_time_at_moderate_scale() {
    for w in fsr_workloads::figure3_set() {
        let base = run_version(&w, PlanSource::Unoptimized, 12, 128);
        let opt = run_version(&w, PlanSource::Compiler, 12, 128);
        assert!(
            opt.exec_cycles < base.exec_cycles,
            "{}: compiler version slower at 12 procs ({} vs {})",
            w.name,
            opt.exec_cycles,
            base.exec_cycles
        );
    }
}

#[test]
fn compiler_beats_or_matches_programmer_everywhere() {
    // Table 3's qualitative claim at a representative processor count.
    for w in fsr_workloads::all() {
        if !w.has(Version::Programmer) {
            continue;
        }
        let c = run_version(&w, PlanSource::Compiler, 12, 128);
        let p = run_version(
            &w,
            PlanSource::Programmer(w.programmer_plan.unwrap()),
            12,
            128,
        );
        // Allow a small tolerance: the two coincide for programs where
        // the programmer found everything (LocusRoute).
        assert!(
            c.sim.false_sharing() <= p.sim.false_sharing() + p.sim.false_sharing() / 10 + 8,
            "{}: compiler FS ({}) worse than programmer ({})",
            w.name,
            c.sim.false_sharing(),
            p.sim.false_sharing()
        );
    }
}

#[test]
fn false_sharing_grows_with_block_size() {
    for w in fsr_workloads::figure3_set() {
        let small = run_version(&w, PlanSource::Unoptimized, 8, 16);
        let large = run_version(&w, PlanSource::Unoptimized, 8, 256);
        assert!(
            large.sim.false_sharing() >= small.sim.false_sharing(),
            "{}: FS shrank with larger blocks ({} -> {})",
            w.name,
            small.sim.false_sharing(),
            large.sim.false_sharing()
        );
    }
}

#[test]
fn four_byte_blocks_have_no_false_sharing() {
    // With one word per block, false sharing is impossible by definition.
    for w in fsr_workloads::figure3_set() {
        let r = run_version(&w, PlanSource::Unoptimized, 4, 4);
        assert_eq!(r.sim.false_sharing(), 0, "{}", w.name);
        assert_eq!(r.sim.miss_of(MissKind::FalseSharing), 0);
    }
}

#[test]
fn per_object_misses_sum_to_totals() {
    for w in ["maxflow", "pverify", "water"] {
        let w = fsr_workloads::by_name(w).unwrap();
        let r = run_version(&w, PlanSource::Unoptimized, 6, 128);
        let attributed: u64 = r.per_obj.values().map(|m| m.total()).sum();
        assert_eq!(
            attributed,
            r.sim.total_misses(),
            "{}: attribution mismatch",
            w.name
        );
        let attributed_fs: u64 = r.per_obj.values().map(|m| m.false_sharing()).sum();
        assert_eq!(attributed_fs, r.sim.false_sharing());
    }
}

#[test]
fn uniprocessor_runs_have_no_coherence_misses() {
    for w in fsr_workloads::all() {
        let r = run_version(&w, PlanSource::Unoptimized, 1, 128);
        assert_eq!(r.sim.false_sharing(), 0, "{}", w.name);
        assert_eq!(r.sim.miss_of(MissKind::TrueSharing), 0, "{}", w.name);
        assert_eq!(r.sim.invalidations, 0, "{}", w.name);
    }
}

#[test]
fn execution_time_exceeds_busy_time_only_by_stalls() {
    let w = fsr_workloads::by_name("fmm").unwrap();
    let r = run_version(&w, PlanSource::Unoptimized, 8, 128);
    for p in 0..r.nproc as usize {
        let accounted = r.timing.busy[p] + r.timing.stall[p];
        assert!(
            r.exec_cycles >= r.timing.busy[p],
            "proc {p}: finish before busy time"
        );
        // Each processor's own clock is busy + stall (+ sync jumps, which
        // only move clocks forward).
        assert!(accounted > 0);
    }
}

#[test]
fn fs_stall_fraction_is_meaningful() {
    let w = fsr_workloads::by_name("topopt").unwrap();
    let base = run_version(&w, PlanSource::Unoptimized, 12, 128);
    let opt = run_version(&w, PlanSource::Compiler, 12, 128);
    assert!(base.fs_stall_frac > 0.05, "unopt: {}", base.fs_stall_frac);
    assert!(
        opt.fs_stall_frac < base.fs_stall_frac,
        "fs stall fraction must fall"
    );
}

#[test]
fn indirection_adds_reference_overhead() {
    // The paper: indirection costs an additional memory access per
    // reference to the moved data.
    let w = fsr_workloads::by_name("pverify").unwrap();
    let base = run_version(&w, PlanSource::Unoptimized, 6, 128);
    let opt = run_version(&w, PlanSource::Compiler, 6, 128);
    assert!(
        opt.sim.refs > base.sim.refs,
        "indirection should add pointer reads ({} vs {})",
        opt.sim.refs,
        base.sim.refs
    );
}

#[test]
fn transformed_source_renders_for_all_workloads() {
    for w in fsr_workloads::all() {
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let text = fsr_transform::report::render_transformed_source(&prog, &plan, 4);
        assert!(text.contains("fn main"), "{}", w.name);
        // The rendered source must still be valid PSL.
        fsr_lang::compile_with_params(
            &text
                .lines()
                .filter(|l| !l.trim_start().starts_with("//"))
                .collect::<Vec<_>>()
                .join("\n"),
            &[("NPROC", 4)],
        )
        .unwrap_or_else(|e| panic!("{}: rendered source invalid: {e}", w.name));
    }
}

#[test]
fn pipeline_runs_at_fifty_six_processors() {
    // The full KSR2 configuration must work for every program.
    for w in fsr_workloads::all() {
        let r = run_version(&w, PlanSource::Compiler, 56, 128);
        assert_eq!(r.nproc, 56, "{}", w.name);
        assert!(r.exec_cycles > 0);
    }
}

#[test]
fn analysis_compile_cost_is_small() {
    // §7: the analyses cost ~5% of compile time. Generous bound here —
    // the point is the order of magnitude, measured on the real suite.
    // Best of three per program: concurrent test threads can inflate any
    // single wall-clock sample.
    let mut worst: f64 = 0.0;
    for w in fsr_workloads::all() {
        let best = (0..3)
            .map(|_| {
                fsr_core::cost::measure(w.source, &[("NPROC", 12)])
                    .unwrap()
                    .analysis_fraction()
            })
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best);
    }
    // Debug builds skew the ratio: the analyses are the least optimized
    // stage without optimizations. The release bound is the real claim.
    let bound = if cfg!(debug_assertions) { 0.9 } else { 0.75 };
    assert!(worst < bound, "analysis dominates compile time: {worst}");
}

#[test]
fn driver_matches_sequential_results() {
    let w = fsr_workloads::by_name("water").unwrap();
    let seq = run_version(&w, PlanSource::Compiler, 4, 128);
    let jobs = vec![fsr_core::driver::Job {
        meta: (),
        src: std::sync::Arc::from(w.source),
        params: vec![("NPROC".into(), 4), ("SCALE".into(), 1)],
        plan: fsr_core::driver::PlanSourceSpec::Compiler,
        cfg: PipelineConfig::with_block(128),
    }];
    let out = fsr_core::driver::run_jobs(jobs, 2);
    let par = out[0].1.as_ref().unwrap();
    assert_eq!(par.sim.refs, seq.sim.refs);
    assert_eq!(par.sim.misses, seq.sim.misses);
    assert_eq!(par.exec_cycles, seq.exec_cycles);
}
