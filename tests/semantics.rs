//! The reproduction's load-bearing invariant: **layout transformations
//! never change program semantics**. For every workload and every plan —
//! unoptimized, compiler, programmer, random ablations — the final
//! logical memory contents must be identical.

use fsr_interp::{compile_program, run, CountingSink, RunConfig};
use fsr_layout::Layout;
use fsr_transform::{LayoutPlan, ObjPlan};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn snapshot_under_plan(
    prog: &fsr_lang::Program,
    plan: &LayoutPlan,
    nproc: u32,
) -> std::collections::BTreeMap<u32, Vec<i32>> {
    let layout = Layout::build(prog, plan, nproc);
    let code = compile_program(prog).unwrap();
    let fin = run(
        prog,
        &layout,
        &code,
        RunConfig::default(),
        &mut CountingSink::default(),
    )
    .unwrap();
    fin.logical_snapshot(prog, &layout)
}

#[test]
fn all_workloads_preserve_semantics_under_compiler_plan() {
    for w in fsr_workloads::all() {
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)]).unwrap();
        let base = snapshot_under_plan(&prog, &LayoutPlan::unoptimized(64), 4);
        let analysis = fsr_analysis::analyze(&prog).unwrap();
        let plan =
            fsr_transform::plan_for(&prog, &analysis, &fsr_transform::PlanConfig::with_block(64));
        let opt = snapshot_under_plan(&prog, &plan, 4);
        assert_eq!(base, opt, "{}: compiler plan changed semantics", w.name);
    }
}

#[test]
fn all_workloads_preserve_semantics_under_programmer_plan() {
    for w in fsr_workloads::all() {
        let Some(pplan) = w.programmer_plan else {
            continue;
        };
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)]).unwrap();
        let base = snapshot_under_plan(&prog, &LayoutPlan::unoptimized(128), 4);
        let plan = pplan(&prog, 128);
        let opt = snapshot_under_plan(&prog, &plan, 4);
        assert_eq!(base, opt, "{}: programmer plan changed semantics", w.name);
    }
}

#[test]
fn semantics_stable_across_block_sizes() {
    let w = fsr_workloads::by_name("water").unwrap();
    let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 3)]).unwrap();
    let analysis = fsr_analysis::analyze(&prog).unwrap();
    let mut snaps = Vec::new();
    for block in [16u32, 64, 256] {
        let plan = fsr_transform::plan_for(
            &prog,
            &analysis,
            &fsr_transform::PlanConfig::with_block(block),
        );
        snaps.push(snapshot_under_plan(&prog, &plan, 3));
    }
    assert_eq!(snaps[0], snaps[1]);
    assert_eq!(snaps[1], snaps[2]);
}

#[test]
fn semantics_stable_across_process_counts_when_deterministic() {
    // A kernel whose result is independent of the process count (each
    // element written by exactly one process, commutative reductions
    // under locks): the final state must match across nproc.
    let src = "param NPROC = 2; shared int a[24]; shared int total; shared lock lk;
        fn main() { forall p in 0 .. NPROC {
            var k;
            for k in 0 .. 24 / NPROC {
                var i = k * NPROC + p;
                a[i] = i * 3 + 1;
                lock(lk); total = total + 1; unlock(lk);
            }
        } }";
    let mut totals = Vec::new();
    for nproc in [1i64, 2, 3, 4] {
        // 24 % 3 == 0, 24 % 4 == 0: full coverage for these counts.
        if 24 % nproc != 0 {
            continue;
        }
        let prog = fsr_lang::compile_with_params(src, &[("NPROC", nproc)]).unwrap();
        let snap = snapshot_under_plan(&prog, &LayoutPlan::unoptimized(64), nproc as u32);
        let (aid, _) = prog.object_by_name("a").unwrap();
        let a = snap.get(&aid.0).unwrap().clone();
        assert_eq!(a, (0..24).map(|i| i * 3 + 1).collect::<Vec<i32>>());
        let (tid, _) = prog.object_by_name("total").unwrap();
        totals.push(snap.get(&tid.0).unwrap()[0]);
    }
    assert!(totals.iter().all(|&t| t == 24));
}

/// Random plan generator over a fixed mixed-pattern program: any subset
/// of transformations, in any combination, must preserve semantics.
fn arb_plan(prog: &fsr_lang::Program, block: u32) -> impl Strategy<Value = LayoutPlan> + use<> {
    let objects: Vec<(fsr_lang::ast::ObjId, bool, bool)> = prog
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| {
            (
                fsr_lang::ast::ObjId(i as u32),
                o.kind == fsr_lang::ast::ObjectKind::Lock,
                matches!(o.elem, fsr_lang::ast::ElemTy::Struct(_)),
            )
        })
        .collect();
    let nobj = objects.len();
    proptest::collection::vec(0u8..5, nobj).prop_map(move |choices| {
        let mut plan = LayoutPlan::unoptimized(block);
        for ((oid, is_lock, is_struct), c) in objects.iter().zip(choices) {
            let directive = if *is_lock {
                match c {
                    0 | 1 => Some(ObjPlan::PadLock),
                    _ => None,
                }
            } else {
                match c {
                    1 => Some(ObjPlan::PadElems),
                    2 => Some(ObjPlan::Transpose {
                        owner: fsr_analysis::OwnerMap::Interleave { stride: 3, base: 0 },
                        group: None,
                    }),
                    3 => Some(ObjPlan::Transpose {
                        owner: fsr_analysis::OwnerMap::Chunk { chunk: 8 },
                        group: Some(0),
                    }),
                    4 => {
                        if *is_struct {
                            Some(ObjPlan::Indirect {
                                fields: vec![fsr_lang::ast::FieldId(0)],
                            })
                        } else {
                            Some(ObjPlan::Indirect { fields: vec![] })
                        }
                    }
                    _ => None,
                }
            };
            if let Some(d) = directive {
                plan.insert(*oid, d, "random");
            }
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_plans_preserve_semantics(seed in 0u64..1000) {
        let src = "param NPROC = 3;
            struct Rec { int a; int b[2]; }
            shared int flat[24];
            shared Rec recs[9];
            shared int counters[NPROC];
            shared lock lk;
            shared int total;
            fn main() { forall p in 0 .. NPROC {
                var k;
                for k in 0 .. 8 {
                    var i = k * NPROC + p;
                    flat[i] = flat[i] + i;
                    recs[i % 9].a = recs[i % 9].a + p;
                    recs[i % 9].b[i % 2] = i;
                    counters[p] = counters[p] + 1;
                    lock(lk);
                    total = total + 1;
                    unlock(lk);
                }
            } }";
        let prog = fsr_lang::compile(src).unwrap();
        let base = snapshot_under_plan(&prog, &LayoutPlan::unoptimized(64), 3);
        // Derive a deterministic "random" plan from the seed via the
        // strategy's value tree.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let plan = arb_plan(&prog, 64)
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let got = snapshot_under_plan(&prog, &plan, 3);
        prop_assert_eq!(base, got);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interpreter determinism: identical seeds give identical reference
    /// streams; different seeds still give identical *semantics-free*
    /// structural invariants (refs > 0, same program shape).
    #[test]
    fn runs_are_deterministic(seed in 0u64..u64::MAX) {
        let w = fsr_workloads::by_name("mp3d").unwrap();
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 3)]).unwrap();
        let plan = LayoutPlan::unoptimized(64);
        let layout = Layout::build(&prog, &plan, 3);
        let code = compile_program(&prog).unwrap();
        let cfg = RunConfig { seed, ..Default::default() };
        let run_once = || {
            let mut sink = CountingSink::default();
            let fin = run(&prog, &layout, &code, cfg, &mut sink).unwrap();
            (sink.refs, sink.writes, fin.stats.instructions)
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a, b);
    }
}
