//! Vendored offline mini-implementation of the slice of the `proptest`
//! API this workspace's property tests use: integer-range strategies,
//! `prop_map`, `collection::vec`, deterministic runners, value trees and
//! the `proptest!`/`prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking — a failing case reports the panic directly. Generation is
//! deterministic (fixed-seed splitmix64), so failures are reproducible
//! run-to-run, which is what the suite relies on
//! (`TestRunner::deterministic` + derived plans in `tests/semantics.rs`).

pub mod test_runner {
    /// Runner configuration; only the case count is meaningful here.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic random source (splitmix64, fixed seed).
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        pub fn deterministic() -> Self {
            TestRunner {
                state: 0x5eed_0bad_cafe_f00d,
            }
        }

        pub fn new(_cfg: ProptestConfig) -> Self {
            Self::deterministic()
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A sampled value; `current` yields it. (No shrinking.)
    pub trait ValueTree {
        type Value;
        fn current(&self) -> Self::Value;
    }

    /// The trivial value tree holding one sampled value.
    pub struct Sampled<T: Clone>(pub T);

    impl<T: Clone> ValueTree for Sampled<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    pub trait Strategy {
        type Value;

        /// Draw one value from the strategy.
        fn pick(&self, runner: &mut TestRunner) -> Self::Value;

        fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(Sampled(self.pick(runner)))
        }

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn pick(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.pick(runner))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, runner: &mut TestRunner) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy {lo}..{hi}");
                    let span = (hi - lo) as u128;
                    (lo + (runner.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.pick(runner)).collect()
        }
    }

    /// Fixed-length vector of draws from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::deterministic();
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut __runner);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = crate::test_runner::TestRunner::deterministic();
        for _ in 0..1000 {
            let v = (-50i64..50).pick(&mut r);
            assert!((-50..50).contains(&v));
            let u = (0u8..5).pick(&mut r);
            assert!(u < 5);
        }
    }

    #[test]
    fn deterministic_runner_reproduces() {
        let mut a = crate::test_runner::TestRunner::deterministic();
        let mut b = crate::test_runner::TestRunner::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn map_and_vec_compose() {
        let mut r = crate::test_runner::TestRunner::deterministic();
        let s = crate::collection::vec(0u8..5, 6).prop_map(|v| v.len());
        let t = s.new_tree(&mut r).unwrap();
        assert_eq!(t.current(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_cases(x in 0u64..10, y in -3i64..3) {
            prop_assert!(x < 10);
            prop_assert_eq!(y.signum().abs() <= 1, true);
        }
    }
}
