//! Criterion benches: raw cache-simulator and interpreter throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fsr_sim::{CacheConfig, MultiSim};
use std::hint::black_box;

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let n: u64 = 200_000;
    g.throughput(Throughput::Elements(n));
    for block in [16u32, 128] {
        g.bench_function(format!("mixed_refs/block{block}"), |b| {
            b.iter(|| {
                let mut s = MultiSim::new(CacheConfig::with_block(block, 8), 1 << 22);
                let mut x = 0x12345u64;
                for i in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let pid = (i % 8) as u8;
                    let addr = ((x >> 16) & 0x3f_ffff) as u32 & !3;
                    s.access(pid, addr, x & 7 == 0);
                }
                black_box(s.stats().total_misses())
            })
        });
        g.bench_function(format!("pingpong/block{block}"), |b| {
            b.iter(|| {
                let mut s = MultiSim::new(CacheConfig::with_block(block, 2), 1 << 16);
                for _ in 0..n / 2 {
                    s.access(0, 0x1000, true);
                    s.access(1, 0x1004, true);
                }
                black_box(s.stats().false_sharing())
            })
        });
    }
    g.finish();
}

fn interp_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    let w = fsr_workloads::by_name("water").unwrap();
    let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 8), ("SCALE", 1)]).unwrap();
    let plan = fsr_transform::LayoutPlan::unoptimized(128);
    let layout = fsr_layout::Layout::build(&prog, &plan, 8);
    let code = fsr_interp::compile_program(&prog).unwrap();
    g.bench_function("water_8p", |b| {
        b.iter(|| {
            let mut sink = fsr_interp::CountingSink::default();
            let fin = fsr_interp::run(
                black_box(&prog),
                &layout,
                &code,
                fsr_interp::RunConfig::default(),
                &mut sink,
            )
            .unwrap();
            black_box(fin.stats.instructions)
        })
    });
    g.finish();
}

criterion_group!(benches, sim_throughput, interp_throughput);
criterion_main!(benches);
