//! Criterion benches: cost of each pipeline stage on the workload suite
//! (compile/analyze/plan front end, interpretation+simulation back end).

use criterion::{criterion_group, criterion_main, Criterion};
use fsr_core::{run_pipeline, PipelineConfig, PlanSource};
use std::hint::black_box;

fn front_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("front_end");
    for name in ["pverify", "fmm"] {
        let w = fsr_workloads::by_name(name).unwrap();
        g.bench_function(format!("parse_check/{name}"), |b| {
            b.iter(|| fsr_lang::compile_with_params(black_box(w.source), &[("NPROC", 12)]).unwrap())
        });
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 12)]).unwrap();
        g.bench_function(format!("analyze/{name}"), |b| {
            b.iter(|| fsr_analysis::analyze(black_box(&prog)).unwrap())
        });
        let analysis = fsr_analysis::analyze(&prog).unwrap();
        g.bench_function(format!("plan/{name}"), |b| {
            b.iter(|| {
                fsr_transform::plan_for(
                    black_box(&prog),
                    black_box(&analysis),
                    &fsr_transform::PlanConfig::default(),
                )
            })
        });
    }
    g.finish();
}

fn full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for name in ["maxflow", "water"] {
        let w = fsr_workloads::by_name(name).unwrap();
        for (label, plan) in [
            ("unopt", PlanSource::Unoptimized),
            ("compiler", PlanSource::Compiler),
        ] {
            let p = plan.clone();
            g.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    run_pipeline(
                        black_box(w.source),
                        &[("NPROC", 8), ("SCALE", 1)],
                        p.clone(),
                        &PipelineConfig::with_block(128),
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, front_end, full_pipeline);
criterion_main!(benches);
