//! Criterion benches for the DESIGN.md ablation points: descriptor
//! limit, lock-padding policy, and the write-dominance threshold — each
//! measured as its effect on false-sharing misses (reported via
//! eprintln) while timing the run itself.

use criterion::{criterion_group, criterion_main, Criterion};
use fsr_core::{run_pipeline, PipelineConfig, PlanSource};
use fsr_transform::ObjPlan;
use std::hint::black_box;

/// Lock padding on/off on the lock-heavy radiosity kernel.
fn lock_padding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_locks");
    g.sample_size(10);
    let w = fsr_workloads::by_name("radiosity").unwrap();
    let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 8), ("SCALE", 1)]).unwrap();
    let a = fsr_analysis::analyze(&prog).unwrap();
    let full = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
    let no_locks = full.retain_kind(|p| !matches!(p, ObjPlan::PadLock));
    for (label, plan) in [("padded", full), ("coallocated", no_locks)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = run_pipeline(
                    black_box(w.source),
                    &[("NPROC", 8), ("SCALE", 1)],
                    PlanSource::Explicit(plan.clone()),
                    &PipelineConfig::with_block(128),
                )
                .unwrap();
                black_box(r.sim.false_sharing())
            })
        });
    }
    g.finish();
}

/// Full plan vs pad-only vs transpose-only on a mixed kernel.
fn transform_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_classes");
    g.sample_size(10);
    let w = fsr_workloads::by_name("topopt").unwrap();
    let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 8), ("SCALE", 1)]).unwrap();
    let a = fsr_analysis::analyze(&prog).unwrap();
    let full = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
    let cases = [
        ("full", full.clone()),
        (
            "transpose_only",
            full.retain_kind(|p| matches!(p, ObjPlan::Transpose { .. })),
        ),
        (
            "indirection_only",
            full.retain_kind(|p| matches!(p, ObjPlan::Indirect { .. })),
        ),
        ("none", fsr_transform::LayoutPlan::unoptimized(128)),
    ];
    for (label, plan) in cases {
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = run_pipeline(
                    black_box(w.source),
                    &[("NPROC", 8), ("SCALE", 1)],
                    PlanSource::Explicit(plan.clone()),
                    &PipelineConfig::with_block(128),
                )
                .unwrap();
                black_box(r.sim.false_sharing())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, lock_padding, transform_classes);
criterion_main!(benches);
