//! Criterion bench: batched (`run_batch`) vs unbatched (`run_jobs`)
//! execution of a block-size sweep — the core win of the trace-once,
//! simulate-many engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fsr_core::driver::{run_batch, run_jobs, Job, PlanSourceSpec};
use fsr_core::PipelineConfig;
use std::sync::Arc;

const BLOCKS: [u32; 6] = [8, 16, 32, 64, 128, 256];

fn sweep_jobs(src: &Arc<str>, plan: &PlanSourceSpec) -> Vec<Job<u32>> {
    BLOCKS
        .iter()
        .map(|&b| Job {
            meta: b,
            src: src.clone(),
            params: vec![("NPROC".into(), 8), ("SCALE".into(), 1)],
            plan: plan.clone(),
            cfg: PipelineConfig::with_block(b),
        })
        .collect()
}

fn block_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(BLOCKS.len() as u64));
    for name in ["maxflow", "water"] {
        let w = fsr_workloads::by_name(name).unwrap();
        let src: Arc<str> = Arc::from(w.source);
        // Unoptimized: one shared trace across all six block sizes.
        for (label, plan) in [
            ("unopt", PlanSourceSpec::Unoptimized),
            ("compiler", PlanSourceSpec::Compiler),
        ] {
            g.bench_function(format!("unbatched/{name}/{label}"), |b| {
                b.iter(|| run_jobs(sweep_jobs(&src, &plan), 1))
            });
            g.bench_function(format!("batched/{name}/{label}"), |b| {
                b.iter(|| run_batch(sweep_jobs(&src, &plan), 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, block_sweep);
criterion_main!(benches);
