//! Shared configuration and rendering for the experiment binaries.
//!
//! Every binary reads the same environment knobs:
//! - `FSR_NPROC`   — process count for miss-rate experiments (default 12)
//! - `FSR_SCALE`   — problem-size multiplier (default 2)
//! - `FSR_THREADS` — worker threads (default: available parallelism)
//!
//! Run them with `cargo run -p fsr-bench --release --bin <name>`.

use std::fmt::Write as _;

/// Environment-configurable experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Knobs {
    pub nproc: i64,
    pub scale: i64,
    pub threads: usize,
}

impl Knobs {
    pub fn from_env() -> Knobs {
        let get = |k: &str, d: i64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Knobs {
            nproc: get("FSR_NPROC", 12),
            scale: get("FSR_SCALE", 2),
            threads: get("FSR_THREADS", 0) as usize,
        }
    }
}

/// The processor counts used for the scalability sweeps (KSR2-like: up
/// to 56 processors, two rings).
pub const SWEEP_PROCS: &[u32] = &[1, 2, 4, 8, 12, 16, 20, 28, 40, 48, 56];

/// Fixed-width table renderer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..ncol {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    let _ = write!(out, "{:<w$}", cell, w = widths[c]);
                } else {
                    let _ = write!(out, "  {:>w$}", cell, w = widths[c]);
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Format a speedup pair "s (p)" like the paper's Table 3.
pub fn fmt_speedup(s: Option<(f64, u32)>) -> String {
    match s {
        Some((v, p)) => format!("{v:.1} ({p})"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2345".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn knobs_have_defaults() {
        let k = Knobs::from_env();
        assert!(k.nproc >= 1);
        assert!(k.scale >= 1);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(Some((4.25, 16))), "4.2 (16)");
        assert_eq!(fmt_speedup(None), "-");
    }
}
