//! Before/after wall-clock for the batched experiment engine.
//!
//! Regenerates Figure 3 + Table 2 + the §5 headline twice:
//! - *unbatched*: the reference path — every (program, block, version)
//!   cell runs the full pipeline by itself, and the headline re-runs its
//!   own Figure 3 column (the pre-batching behavior);
//! - *batched*: the `run_batch` generators, with the headline pooled
//!   from the already-computed Figure 3 rows.
//!
//! Asserts the two paths produce bit-identical rows, then writes the
//! measurements to `BENCH_experiments.json` (override the path with
//! `FSR_BENCH_OUT`).

use fsr_bench::Knobs;
use fsr_core::driver::{run_jobs, Job, PlanSourceSpec};
use fsr_core::experiments::{
    figure3, headline_from_rows, plan_spec, table2, Fig3Row, Headline, Table2Row, Vsn,
};
use fsr_core::{plan_of, PipelineConfig, PlanSource};
use fsr_transform::ObjPlan;
use std::sync::Arc;
use std::time::Instant;

const FIG3_BLOCKS: [u32; 2] = [16, 128];
const TABLE2_BLOCKS: [u32; 6] = [8, 16, 32, 64, 128, 256];
const HEADLINE_BLOCK: u32 = 128;

/// Figure 3 via the reference path: one full pipeline per cell.
fn fig3_unbatched(nproc: i64, scale: i64, blocks: &[u32], threads: usize) -> Vec<Fig3Row> {
    let set = fsr_workloads::figure3_set();
    let mut jobs: Vec<Job<(&'static str, u32, Vsn)>> = Vec::new();
    for w in &set {
        for &b in blocks {
            for v in [Vsn::N, Vsn::C] {
                jobs.push(Job {
                    meta: (w.name, b, v),
                    src: Arc::from(w.source),
                    params: vec![("NPROC".into(), nproc), ("SCALE".into(), scale)],
                    plan: plan_spec(w, v),
                    cfg: PipelineConfig::with_block(b),
                });
            }
        }
    }
    run_jobs(jobs, threads)
        .into_iter()
        .filter_map(|(job, r)| {
            let r = r.ok()?;
            let (program, block, version) = job.meta;
            Some(Fig3Row {
                program: program.to_string(),
                block,
                version: version.label().to_string(),
                protocol: fsr_core::ProtocolKind::Msi.name().to_string(),
                interconnect: fsr_core::InterconnectKind::Ksr2Ring.name().to_string(),
                refs: r.sim.refs,
                fs_miss_rate: r.sim.false_sharing() as f64 / r.sim.refs.max(1) as f64,
                other_miss_rate: r.sim.other_misses() as f64 / r.sim.refs.max(1) as f64,
            })
        })
        .collect()
}

/// Table 2 via the reference path: per-(program, block) job sets, each
/// cell a full pipeline.
fn table2_unbatched(nproc: i64, scale: i64, blocks: &[u32], threads: usize) -> Vec<Table2Row> {
    let set = fsr_workloads::figure3_set();
    let mut rows = Vec::new();
    for w in &set {
        let mut acc = [0.0f64; 5];
        let mut samples = 0usize;
        let mut dropped = 0usize;
        for &b in blocks {
            let cfg = PipelineConfig::with_block(b);
            let prog =
                fsr_lang::compile_with_params(w.source, &[("NPROC", nproc), ("SCALE", scale)])
                    .expect("workload compiles");
            let full = plan_of(&prog, &PlanSource::Compiler, &cfg).expect("plan");
            let cells = [
                PlanSourceSpec::Unoptimized,
                PlanSourceSpec::Explicit(full.clone()),
                PlanSourceSpec::Explicit(
                    full.retain_kind(|p| matches!(p, ObjPlan::Transpose { .. })),
                ),
                PlanSourceSpec::Explicit(
                    full.retain_kind(|p| matches!(p, ObjPlan::Indirect { .. })),
                ),
                PlanSourceSpec::Explicit(full.retain_kind(|p| matches!(p, ObjPlan::PadElems))),
                PlanSourceSpec::Explicit(full.retain_kind(|p| matches!(p, ObjPlan::PadLock))),
            ];
            let jobs: Vec<Job<usize>> = cells
                .into_iter()
                .enumerate()
                .map(|(cell, plan)| Job {
                    meta: cell,
                    src: Arc::from(w.source),
                    params: vec![("NPROC".into(), nproc), ("SCALE".into(), scale)],
                    plan,
                    cfg: cfg.clone(),
                })
                .collect();
            let out = run_jobs(jobs, threads);
            let fs_of = |cell: usize| -> Option<u64> {
                out.iter()
                    .find(|(j, _)| j.meta == cell)
                    .and_then(|(_, r)| r.as_ref().ok().map(|r| r.sim.false_sharing()))
            };
            let base = fs_of(0).unwrap_or(0);
            if base == 0 {
                dropped += 1;
                continue;
            }
            let reduction = |fs: u64| 100.0 * (base.saturating_sub(fs)) as f64 / base as f64;
            for (k, a) in acc.iter_mut().enumerate() {
                if let Some(f) = fs_of(k + 1) {
                    *a += reduction(f);
                }
            }
            samples += 1;
        }
        let n = samples.max(1) as f64;
        rows.push(Table2Row {
            program: w.name.to_string(),
            protocol: fsr_core::ProtocolKind::Msi.name().to_string(),
            interconnect: fsr_core::InterconnectKind::Ksr2Ring.name().to_string(),
            total_reduction_pct: acc[0] / n,
            transpose_pct: acc[1] / n,
            indirection_pct: acc[2] / n,
            pad_pct: acc[3] / n,
            locks_pct: acc[4] / n,
            dropped_blocks: dropped,
        });
    }
    rows
}

fn same_fig3(a: &[Fig3Row], b: &[Fig3Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.program == y.program
                && x.block == y.block
                && x.version == y.version
                && x.protocol == y.protocol
                && x.interconnect == y.interconnect
                && x.refs == y.refs
                && x.fs_miss_rate.to_bits() == y.fs_miss_rate.to_bits()
                && x.other_miss_rate.to_bits() == y.other_miss_rate.to_bits()
        })
}

fn same_table2(a: &[Table2Row], b: &[Table2Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.program == y.program
                && x.protocol == y.protocol
                && x.interconnect == y.interconnect
                && x.total_reduction_pct.to_bits() == y.total_reduction_pct.to_bits()
                && x.transpose_pct.to_bits() == y.transpose_pct.to_bits()
                && x.indirection_pct.to_bits() == y.indirection_pct.to_bits()
                && x.pad_pct.to_bits() == y.pad_pct.to_bits()
                && x.locks_pct.to_bits() == y.locks_pct.to_bits()
                && x.dropped_blocks == y.dropped_blocks
        })
}

fn same_headline(a: &Headline, b: &Headline) -> bool {
    a.block == b.block
        && a.fs_share_of_misses.to_bits() == b.fs_share_of_misses.to_bits()
        && a.fs_eliminated.to_bits() == b.fs_eliminated.to_bits()
        && a.other_miss_change.to_bits() == b.other_miss_change.to_bits()
        && a.total_miss_change.to_bits() == b.total_miss_change.to_bits()
}

fn main() {
    let k = Knobs::from_env();
    eprintln!(
        "bench_experiments: nproc={} scale={} threads={}",
        k.nproc, k.scale, k.threads
    );

    // Unbatched reference suite.
    let i0 = fsr_interp::runs_started();
    let t0 = Instant::now();
    let ref_fig3 = fig3_unbatched(k.nproc, k.scale, &FIG3_BLOCKS, k.threads);
    let ref_table2 = table2_unbatched(k.nproc, k.scale, &TABLE2_BLOCKS, k.threads);
    // Pre-batching headline: re-runs its own Figure 3 column.
    let ref_headline = headline_from_rows(
        &fig3_unbatched(k.nproc, k.scale, &[HEADLINE_BLOCK], k.threads),
        HEADLINE_BLOCK,
    );
    let unbatched = t0.elapsed();
    let unbatched_interps = fsr_interp::runs_started() - i0;

    // Batched suite.
    let i1 = fsr_interp::runs_started();
    let t1 = Instant::now();
    let new_fig3 = figure3(k.nproc, k.scale, &FIG3_BLOCKS, k.threads);
    let new_table2 =
        table2(k.nproc, k.scale, &TABLE2_BLOCKS, k.threads).expect("table2 experiment");
    let new_headline = headline_from_rows(&new_fig3, HEADLINE_BLOCK);
    let batched = t1.elapsed();
    let batched_interps = fsr_interp::runs_started() - i1;

    let identical = same_fig3(&ref_fig3, &new_fig3)
        && same_table2(&ref_table2, &new_table2)
        && same_headline(&ref_headline, &new_headline);
    assert!(identical, "batched results diverge from the reference path");

    let speedup = unbatched.as_secs_f64() / batched.as_secs_f64().max(1e-9);
    println!(
        "unbatched: {:8.1} ms  ({unbatched_interps} interpretations)",
        unbatched.as_secs_f64() * 1e3
    );
    println!(
        "batched:   {:8.1} ms  ({batched_interps} interpretations)",
        batched.as_secs_f64() * 1e3
    );
    println!("speedup:   {speedup:.2}x  (bit-identical: {identical})");

    let out = std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_experiments.json".into());
    let json = format!(
        "{{\n  \"suite\": \"fig3 + table2 + headline\",\n  \"nproc\": {},\n  \
         \"scale\": {},\n  \"threads\": {},\n  \"unbatched_ms\": {:.1},\n  \
         \"batched_ms\": {:.1},\n  \"speedup\": {:.2},\n  \
         \"unbatched_interpretations\": {},\n  \"batched_interpretations\": {},\n  \
         \"bit_identical\": {}\n}}\n",
        k.nproc,
        k.scale,
        k.threads,
        unbatched.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3,
        speedup,
        unbatched_interps,
        batched_interps,
        identical
    );
    std::fs::write(&out, json).expect("write benchmark results");
    eprintln!("wrote {out}");
}
