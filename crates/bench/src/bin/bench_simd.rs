//! Engine benchmark: the full protocol-matrix sweep replayed once per
//! simulator engine (scalar, SoA, chunked SoA), proving the engines
//! bit-identical at scale and measuring the hot-path speedup.
//!
//! Methodology — trace once, replay many. The interpreter that
//! *produces* the reference stream does identical work for every
//! engine and dominates an end-to-end wall clock, so timing whole
//! pipeline runs would bury the quantity under test (Amdahl: the sink
//! is a small fraction of a pipeline run). Instead each (workload ×
//! version) unit's trace is recorded once, untimed, via
//! `fsr_core::record_trace`; the timed region replays every (unit ×
//! protocol × interconnect) cell of the matrix through
//! `fsr_core::replay_trace` — the exact sink path `run_pipeline` uses,
//! chunked buffering included. Engines are interleaved within each
//! repetition and the fastest of `FSR_SIMD_REPS` (default 5) sweeps
//! per engine is kept, so one scheduler hiccup cannot masquerade as an
//! engine difference.
//!
//! Three layers of equivalence are asserted on every run: (1) all
//! engines' full-pipeline sweeps produce bit-identical per-cell
//! results, (2) all engines' trace replays produce bit-identical
//! `ReplayResult`s, and (3) every replay's execution time equals the
//! full pipeline's for the same cell — the replay harness measures the
//! real thing.
//!
//! Writes `BENCH_simd.json` (override with `FSR_BENCH_OUT`) with the
//! replay wall per engine, the chunked-vs-scalar speedup, and honest
//! provenance: detected core count, detected CPU vector features, the
//! kernel backend actually dispatched (`accel-avx2` only when the
//! `accel` feature is compiled in *and* the CPU has AVX2), and whether
//! the `accel` feature was compiled at all.
//!
//! With `--golden`, writes only the machine-independent per-cell digest
//! (no timings), which the tier-1 gate diffs against
//! `tests/golden/simd.json` at pinned knobs — in both feature builds,
//! so portable and accelerated kernels are held to the same bits.
//!
//! Knobs: `FSR_NPROC`, `FSR_SCALE`, `FSR_THREADS`, `FSR_SIMD_REPS`,
//! `FSR_MATRIX_WORKLOADS` as in `protocol_matrix`.

use fsr_bench::{Knobs, Table};
use fsr_core::experiments::{plan_source, protocol_matrix_cells, MatrixCell, Vsn};
use fsr_core::{
    record_trace, replay_trace, InterconnectKind, MissKind, PipelineConfig, ProtocolKind,
    RecordedTrace, ReplayResult, SimEngine,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const BLOCK: u32 = 128;
const DEFAULT_WORKLOADS: &str = "raytrace,pverify,maxflow,topopt";
const VERSIONS: [Vsn; 2] = [Vsn::N, Vsn::C];

fn sweep(names: &[&str], k: &Knobs, engine: SimEngine) -> Vec<MatrixCell> {
    protocol_matrix_cells(
        names,
        &VERSIONS,
        k.nproc,
        k.scale,
        BLOCK,
        k.threads,
        engine,
        &ProtocolKind::ALL,
        &InterconnectKind::ALL,
    )
}

/// One machine-independent line per cell: identity + the counters every
/// engine must agree on.
fn cell_digest(c: &MatrixCell) -> String {
    let mut s = format!(
        "    {{\"program\": \"{}\", \"version\": \"{}\", \"protocol\": \"{}\", \
         \"interconnect\": \"{}\", \"exec_cycles\": {}, \"refs\": {}, \"misses\": {{",
        c.program, c.version, c.protocol, c.interconnect, c.exec_cycles, c.sim.refs
    );
    for (i, kind) in MissKind::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{}\": {}",
            if i > 0 { ", " } else { "" },
            kind.name(),
            c.sim.miss_of(*kind)
        );
    }
    s.push_str("}}");
    s
}

fn main() {
    let k = Knobs::from_env();
    let golden = std::env::args().any(|a| a == "--golden");
    let reps: usize = std::env::var("FSR_SIMD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let names_env =
        std::env::var("FSR_MATRIX_WORKLOADS").unwrap_or_else(|_| DEFAULT_WORKLOADS.into());
    let names: Vec<&str> = names_env.split(',').map(str::trim).collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "bench_simd: nproc={} scale={} block={BLOCK} reps={reps} workloads={names:?} \
         backend={} detected_cores={cores}",
        k.nproc,
        k.scale,
        fsr_simdlite::active_backend()
    );

    // Untimed equivalence pass: every engine runs the identical
    // full-pipeline sweep; the per-cell results must be bit-identical.
    let mut cells_of: Vec<(SimEngine, Vec<MatrixCell>)> = Vec::new();
    for engine in SimEngine::ALL {
        let cells = sweep(&names, &k, engine);
        assert!(!cells.is_empty(), "no workloads matched {names:?}");
        cells_of.push((engine, cells));
    }
    let (_, base_cells) = &cells_of[0];
    for (engine, cells) in &cells_of[1..] {
        assert_eq!(
            cells, base_cells,
            "engine {engine} diverged from {} on the full sweep",
            cells_of[0].0
        );
    }

    if golden {
        let digests: Vec<String> = base_cells.iter().map(cell_digest).collect();
        let json = format!(
            "{{\n  \"suite\": \"bench_simd\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
             \"block\": {BLOCK},\n  \"engines\": [\"scalar\", \"soa\", \"soa-chunked\"],\n  \
             \"engines_bit_identical\": true,\n  \"cells\": [\n{}\n  ]\n}}\n",
            k.nproc,
            k.scale,
            digests.join(",\n")
        );
        let out = std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_simd.json".into());
        std::fs::write(&out, json).expect("write simd golden");
        eprintln!(
            "bench_simd: {} cells bit-identical across {} engines; wrote {out}",
            base_cells.len(),
            SimEngine::ALL.len()
        );
        return;
    }

    // Record each unit's trace once, untimed. The trace is independent
    // of protocol, interconnect, and engine.
    let mut units: Vec<(String, &'static str, RecordedTrace)> = Vec::new();
    for name in &names {
        let Some(w) = fsr_workloads::by_name(name) else {
            continue;
        };
        let prog =
            fsr_lang::compile_with_params(w.source, &[("NPROC", k.nproc), ("SCALE", k.scale)])
                .expect("workload compiles");
        for v in VERSIONS {
            let tr = record_trace(
                &prog,
                plan_source(&w, v),
                &PipelineConfig::with_block(BLOCK),
            )
            .expect("trace records");
            units.push((w.name.to_string(), v.label(), tr));
        }
    }
    let refs_per_sweep: usize = units.iter().map(|(_, _, tr)| tr.num_refs()).sum::<usize>()
        * ProtocolKind::ALL.len()
        * InterconnectKind::ALL.len();

    // Timed passes: one full-matrix replay sweep per engine per rep,
    // engines interleaved, fastest sweep kept.
    let backend_cfg = |protocol, ic, engine| {
        PipelineConfig::with_block(BLOCK)
            .with_backends(protocol, ic)
            .with_engine(engine)
    };
    let n_engines = SimEngine::ALL.len();
    let mut best = vec![f64::INFINITY; n_engines];
    let mut replays_of: Vec<Vec<ReplayResult>> = vec![Vec::new(); n_engines];
    for _rep in 0..reps {
        for (ei, engine) in SimEngine::ALL.into_iter().enumerate() {
            let t = Instant::now();
            let mut rs = Vec::with_capacity(base_cells.len());
            for (_, _, tr) in &units {
                for protocol in ProtocolKind::ALL {
                    for ic in InterconnectKind::ALL {
                        rs.push(replay_trace(tr, &backend_cfg(protocol, ic, engine)));
                    }
                }
            }
            let wall = t.elapsed().as_secs_f64();
            if wall < best[ei] {
                best[ei] = wall;
            }
            replays_of[ei] = rs;
        }
    }

    // Layer 2: the replays themselves must be bit-identical across
    // engines.
    for ei in 1..n_engines {
        assert_eq!(
            replays_of[ei],
            replays_of[0],
            "engine {} replay diverged from {}",
            SimEngine::ALL[ei],
            SimEngine::ALL[0]
        );
    }
    // Layer 3: every replay's execution time matches the full
    // pipeline's for the same cell — the harness measures the real
    // sink.
    let pipeline_cycles: BTreeMap<(&str, &str, &str, &str), u64> = base_cells
        .iter()
        .map(|c| {
            (
                (
                    c.program.as_str(),
                    c.version.as_str(),
                    c.protocol.as_str(),
                    c.interconnect.as_str(),
                ),
                c.exec_cycles,
            )
        })
        .collect();
    let mut ri = 0;
    for (prog, vsn, _) in &units {
        for protocol in ProtocolKind::ALL {
            for ic in InterconnectKind::ALL {
                let key = (prog.as_str(), *vsn, protocol.name(), ic.name());
                assert_eq!(
                    pipeline_cycles.get(&key).copied(),
                    Some(replays_of[0][ri].exec_cycles),
                    "replay disagrees with pipeline for {key:?}"
                );
                ri += 1;
            }
        }
    }

    let scalar = best[0];
    let chunked = best[SimEngine::ALL
        .iter()
        .position(|e| *e == SimEngine::SoaChunked)
        .unwrap()];
    let speedup = scalar / chunked;

    let mut t = Table::new(&["engine", "replay_ms", "ns_per_ref", "vs_scalar"]);
    for (ei, engine) in SimEngine::ALL.into_iter().enumerate() {
        t.row(vec![
            engine.name().to_string(),
            format!("{:.1}", best[ei] * 1e3),
            format!("{:.1}", best[ei] * 1e9 / refs_per_sweep as f64),
            format!("{:.2}x", scalar / best[ei]),
        ]);
    }
    println!("{}", t.render());
    eprintln!(
        "bench_simd: {} cells bit-identical across {} engines (pipeline + replay); \
         chunked replay speedup {speedup:.2}x over scalar",
        base_cells.len(),
        n_engines
    );

    let features: Vec<String> = fsr_simdlite::detected_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect();
    let rows: Vec<String> = SimEngine::ALL
        .into_iter()
        .enumerate()
        .map(|(ei, engine)| {
            format!(
                "    {{\"engine\": \"{}\", \"replay_wall_ms\": {:.3}, \"vs_scalar\": {:.3}}}",
                engine.name(),
                best[ei] * 1e3,
                scalar / best[ei]
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"suite\": \"bench_simd\",\n  \"timed_region\": \"trace_replay\",\n  \
         \"nproc\": {},\n  \"scale\": {},\n  \"block\": {BLOCK},\n  \"reps\": {reps},\n  \
         \"cells\": {},\n  \"refs_per_sweep\": {refs_per_sweep},\n  \
         \"engines_bit_identical\": true,\n  \"detected_cores\": {cores},\n  \
         \"detected_features\": [{}],\n  \"kernel_backend\": \"{}\",\n  \
         \"accel_compiled\": {},\n  \"chunked_speedup_vs_scalar\": {speedup:.3},\n  \
         \"engines\": [\n{}\n  ]\n}}\n",
        k.nproc,
        k.scale,
        base_cells.len(),
        features.join(", "),
        fsr_simdlite::active_backend(),
        cfg!(feature = "accel"),
        rows.join(",\n")
    );
    let out = std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_simd.json".into());
    std::fs::write(&out, json).expect("write simd results");
    eprintln!("wrote {out}");
}
