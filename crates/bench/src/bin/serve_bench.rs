//! Cold-vs-warm latency of the `fsr-serve` daemon.
//!
//! Boots an in-process daemon on a TCP loopback socket (port 0 — the
//! OS picks), then measures one scripted client session: the first
//! `simulate` of a workload pays the full pipeline (compile, analyze,
//! interpret, simulate); every identical repeat must be served from the
//! world's result cache with *zero* interpreter passes — asserted here
//! from the per-request `BatchStats` on the wire, not inferred from
//! wall-clock.
//!
//! Writes `BENCH_serve.json` (override with `FSR_BENCH_OUT`). Honesty
//! fields: `detected_cores` so CI timings are legible, and the
//! daemon-reported cache hit/miss counts so "warm" is evidenced rather
//! than asserted. Knobs: `FSR_NPROC`, `FSR_SCALE` as usual.

use fsr_bench::Knobs;
use fsr_serve::json::Value;
use fsr_serve::{serve_tcp_on, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const BLOCK: u32 = 128;
const WORKLOAD: &str = "water";
const WARM_REPEATS: usize = 5;

/// Send one request line; read lines until the response (the line
/// carrying an `id`), skipping streamed notifications. Returns the
/// round-trip wall time and the parsed response.
fn rpc(reader: &mut impl BufRead, writer: &mut impl Write, req: &str) -> (f64, Value) {
    let start = Instant::now();
    writeln!(writer, "{req}").expect("daemon accepts request");
    writer.flush().expect("flush request");
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("daemon responds");
        assert!(n > 0, "daemon hung up mid-request");
        let v = fsr_serve::json::parse(line.trim()).expect("daemon speaks JSON");
        if v.get("id").is_some() {
            let wall = start.elapsed().as_secs_f64();
            assert!(
                v.get("error").is_none(),
                "request failed: {line} (sent {req})"
            );
            return (wall, v);
        }
        // A notification — part of the same request's stream.
    }
}

fn stat_of(resp: &Value, key: &str) -> i64 {
    resp.get("result")
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get(key))
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("response missing stats.{key}"))
}

fn main() {
    let k = Knobs::from_env();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || {
        serve_tcp_on(Arc::new(Server::new()), listener).expect("daemon runs");
    });
    eprintln!(
        "serve_bench: daemon on {addr}, workload={WORKLOAD} nproc={} scale={} \
         block={BLOCK} detected_cores={cores}",
        k.nproc, k.scale
    );

    let conn = TcpStream::connect(addr).expect("connect to daemon");
    let mut reader = BufReader::new(conn.try_clone().expect("clone stream"));
    let mut writer = conn;

    let open = format!(
        r#"{{"id": 1, "method": "open", "params": {{"name": "w", "workload": "{WORKLOAD}"}}}}"#
    );
    rpc(&mut reader, &mut writer, &open);

    let simulate = format!(
        r#"{{"id": 2, "method": "simulate", "params": {{"name": "w", "plan": "compiler",
           "params": {{"NPROC": {}, "SCALE": {}}}, "config": {{"block": {BLOCK}}}}}}}"#,
        k.nproc, k.scale
    )
    .replace('\n', " ");

    let (cold_s, cold_resp) = rpc(&mut reader, &mut writer, &simulate);
    assert!(
        stat_of(&cold_resp, "interpretations") >= 1,
        "cold request must interpret"
    );

    let mut warm_s = Vec::with_capacity(WARM_REPEATS);
    for _ in 0..WARM_REPEATS {
        let (wall, resp) = rpc(&mut reader, &mut writer, &simulate);
        // The acceptance criterion, from the daemon's own accounting:
        // a repeated identical request is a pure result-cache hit.
        assert_eq!(stat_of(&resp, "interpretations"), 0, "warm re-interpreted");
        assert_eq!(stat_of(&resp, "front_ends"), 0, "warm recompiled");
        assert_eq!(stat_of(&resp, "result_hits"), 1, "warm missed the cache");
        assert_eq!(
            resp.get("result")
                .and_then(|r| r.get("result"))
                .map(|r| r.to_string()),
            cold_resp
                .get("result")
                .and_then(|r| r.get("result"))
                .map(|r| r.to_string()),
            "warm result must be bit-identical to cold"
        );
        warm_s.push(wall);
    }
    warm_s.sort_by(f64::total_cmp);
    let warm_median = warm_s[WARM_REPEATS / 2];

    let lint = r#"{"id": 3, "method": "lint", "params": {"name": "w"}}"#;
    let (lint_cold_s, _) = rpc(&mut reader, &mut writer, lint);
    let (lint_warm_s, lint_resp) = rpc(&mut reader, &mut writer, lint);
    assert_eq!(
        lint_resp
            .get("result")
            .and_then(|r| r.get("warm"))
            .and_then(Value::as_bool),
        Some(true),
        "second lint must be served warm"
    );

    let (_, stats_resp) = rpc(&mut reader, &mut writer, r#"{"id": 4, "method": "stats"}"#);
    let caches = stats_resp
        .get("result")
        .and_then(|r| r.get("caches"))
        .expect("stats carries cache counters")
        .clone();

    rpc(
        &mut reader,
        &mut writer,
        r#"{"id": 5, "method": "shutdown"}"#,
    );
    daemon.join().expect("daemon exits cleanly");

    println!(
        "cold {:.1} ms -> warm {:.3} ms (x{:.0}); lint {:.1} ms -> {:.3} ms",
        cold_s * 1e3,
        warm_median * 1e3,
        cold_s / warm_median,
        lint_cold_s * 1e3,
        lint_warm_s * 1e3
    );

    let json = format!(
        "{{\n  \"suite\": \"serve\",\n  \"workload\": \"{WORKLOAD}\",\n  \
         \"nproc\": {},\n  \"scale\": {},\n  \"block\": {BLOCK},\n  \
         \"detected_cores\": {cores},\n  \"cold_ms\": {:.3},\n  \
         \"warm_ms_median\": {:.3},\n  \"warm_speedup\": {:.1},\n  \
         \"warm_interpretations\": 0,\n  \"warm_result_hits\": 1,\n  \
         \"lint_cold_ms\": {:.3},\n  \"lint_warm_ms\": {:.3},\n  \
         \"caches\": {caches}\n}}\n",
        k.nproc,
        k.scale,
        cold_s * 1e3,
        warm_median * 1e3,
        cold_s / warm_median,
        lint_cold_s * 1e3,
        lint_warm_s * 1e3
    );
    let out = std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, json).expect("write serve results");
    eprintln!("wrote {out}");
}
