//! Steal-induced false sharing across the schedule axis.
//!
//! Runs every Table-1 workload under the default round-robin schedule
//! and under the seeded work-stealing schedule (several seeds), on each
//! protocol/interconnect backend pair, and reports per-cell steal
//! counts plus the false-sharing miss delta relative to round-robin.
//! Task migration moves a logical process's accesses to the thief's
//! cache lane, so blocks that were single-writer under round-robin can
//! become write-shared under stealing — this sweep measures how much.
//!
//! Two in-bin guarantees are asserted on every cell:
//! - schedule determinism: the first work-steal seed is re-run through
//!   the phase/bank-sharded engine (`ShardMode::Force(2)`) and must be
//!   bit-identical to the serial run — every statistic, not roughly;
//! - accounting closure: the interpreter's steal count equals the
//!   timing model's applied steal joins.
//!
//! Writes `BENCH_steal.json` (override with `FSR_BENCH_OUT`). With
//! `--golden`, writes only machine-independent fields (this bin has no
//! wall-clock in its rows, so golden mode just drops the timing
//! footer) for the tier-1 diff against `tests/golden/steal_sweep.json`.
//! Knobs: `FSR_NPROC`, `FSR_SCALE` as usual.

use fsr_bench::{Knobs, Table};
use fsr_core::driver::{run_batch_sharded, Job, PlanSourceSpec, ShardMode};
use fsr_core::{InterconnectKind, PipelineConfig, ProtocolKind, RunResult, Schedule};
use std::fmt::Write as _;
use std::time::Instant;

const BLOCK: u32 = 128;
const WS_SEEDS: [u64; 2] = [1, 2];

/// Each protocol on its natural interconnect (mirrors tests/shard.rs).
const BACKENDS: [(ProtocolKind, InterconnectKind); 3] = [
    (ProtocolKind::Msi, InterconnectKind::Ksr2Ring),
    (ProtocolKind::Mesi, InterconnectKind::Bus),
    (ProtocolKind::Directory, InterconnectKind::HomeDir),
];

fn cell_cfg(backend: (ProtocolKind, InterconnectKind), schedule: Schedule) -> PipelineConfig {
    let mut cfg = PipelineConfig::with_block(BLOCK).with_backends(backend.0, backend.1);
    cfg.run.schedule = schedule;
    cfg
}

fn run_cell(
    w: &fsr_workloads::Workload,
    k: &Knobs,
    backend: (ProtocolKind, InterconnectKind),
    schedule: Schedule,
    shard: ShardMode,
) -> RunResult {
    let job = Job::new(
        format!("{}/{:?}/{schedule:?}", w.name, backend.0),
        w.source,
        &[("NPROC", k.nproc), ("SCALE", k.scale)],
        PlanSourceSpec::Unoptimized,
        cell_cfg(backend, schedule),
    );
    let mut out = run_batch_sharded(vec![job], 1, shard);
    let (key, r) = out.remove(0);
    r.unwrap_or_else(|e| panic!("{}: {e:?}", key.meta))
}

struct Row {
    workload: &'static str,
    protocol: &'static str,
    rr_fs: u64,
    ws: Vec<(u64, u64, u64)>, // (seed, fs_misses, steals)
}

fn main() {
    let k = Knobs::from_env();
    let golden = std::env::args().any(|a| a == "--golden");
    eprintln!(
        "steal_sweep: nproc={} scale={} block={BLOCK} seeds={WS_SEEDS:?}",
        k.nproc, k.scale
    );
    let start = Instant::now();

    let mut rows: Vec<Row> = Vec::new();
    for w in fsr_workloads::all() {
        for backend in BACKENDS {
            let rr = run_cell(&w, &k, backend, Schedule::RoundRobin, ShardMode::Off);
            assert_eq!(
                rr.interp.steals, 0,
                "{}: round-robin must not steal",
                w.name
            );
            assert_eq!(rr.timing.steal_joins, 0, "{}: rr steal joins", w.name);
            let mut ws = Vec::new();
            for (i, &seed) in WS_SEEDS.iter().enumerate() {
                let sched = Schedule::WorkSteal { seed };
                let r = run_cell(&w, &k, backend, sched, ShardMode::Off);
                assert_eq!(
                    r.interp.steals, r.timing.steal_joins,
                    "{}/{:?}/seed {seed}: interpreter steals vs timing joins",
                    w.name, backend.0
                );
                if i == 0 {
                    // Schedule determinism: the sharded engine must
                    // reproduce the serial work-steal run exactly.
                    let sharded = run_cell(&w, &k, backend, sched, ShardMode::Force(2));
                    assert_eq!(r.sim, sharded.sim, "{}: sharded sim diverged", w.name);
                    assert_eq!(r.timing, sharded.timing, "{}: sharded timing", w.name);
                    assert_eq!(r.interp, sharded.interp, "{}: sharded interp", w.name);
                    assert_eq!(
                        r.exec_cycles, sharded.exec_cycles,
                        "{}: sharded exec cycles",
                        w.name
                    );
                }
                ws.push((seed, r.sim.false_sharing(), r.interp.steals));
            }
            rows.push(Row {
                workload: w.name,
                protocol: backend.0.name(),
                rr_fs: rr.sim.false_sharing(),
                ws,
            });
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let mut t = Table::new(&[
        "workload",
        "protocol",
        "rr_fs",
        "ws_fs(s1)",
        "steals(s1)",
        "dfs",
    ]);
    for r in &rows {
        let (_, fs, steals) = r.ws[0];
        t.row(vec![
            r.workload.to_string(),
            r.protocol.to_string(),
            r.rr_fs.to_string(),
            fs.to_string(),
            steals.to_string(),
            format!("{:+}", fs as i64 - r.rr_fs as i64),
        ]);
    }
    println!("{}", t.render());

    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        let ws: Vec<String> =
            r.ws.iter()
                .map(|(seed, fs, steals)| {
                    format!(
                        "{{\"seed\": {seed}, \"fs_misses\": {fs}, \"steals\": {steals}, \
                     \"delta_fs\": {}}}",
                        *fs as i64 - r.rr_fs as i64
                    )
                })
                .collect();
        let _ = write!(
            body,
            "{}    {{\"workload\": \"{}\", \"protocol\": \"{}\", \"rr_fs_misses\": {}, \
             \"work_steal\": [{}]}}",
            if i > 0 { ",\n" } else { "" },
            r.workload,
            r.protocol,
            r.rr_fs,
            ws.join(", ")
        );
    }
    let seeds: Vec<String> = WS_SEEDS.iter().map(|s| s.to_string()).collect();
    let footer = if golden {
        String::new()
    } else {
        format!("  \"wall_s\": {wall:.3},\n")
    };
    let json = format!(
        "{{\n  \"suite\": \"steal_sweep\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
         \"block\": {BLOCK},\n  \"seeds\": [{}],\n{footer}  \"rows\": [\n{body}\n  ]\n}}\n",
        k.nproc,
        k.scale,
        seeds.join(", ")
    );
    let out = std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_steal.json".into());
    std::fs::write(&out, json).expect("write steal results");
    eprintln!("wrote {out}");
}
