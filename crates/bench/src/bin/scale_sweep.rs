//! Strong-scaling benchmark of the phase/bank-sharded simulation
//! engine on a single large speedup-sweep cell.
//!
//! One cell = one (workload, version, nproc) point — a single job, so
//! the batch driver's unit-level parallelism cannot help; all speedup
//! must come from within-job sharding (`ShardMode::Force(t)`): phase
//! segments interpreted on a producer thread while address banks
//! simulate concurrently and per-job timing stitches replay in order.
//!
//! The cell is simulated at every thread count in `FSR_SCALE_THREADS`
//! (default `1,2,4,8`); statistics must be bit-identical across all of
//! them (asserted here, and pinned by `tests/golden/scale_sweep.json`
//! via `--golden`), while wall-clock shrinks with threads *up to the
//! machine's core count* — `detected_cores` is recorded in the output
//! so a 1-core CI box reporting flat wall-clock is legible as such.
//!
//! Writes `BENCH_scale.json` (override with `FSR_BENCH_OUT`). With
//! `--golden`, writes only the machine-independent fields, for the
//! tier-1 golden diff. Knobs: `FSR_NPROC`, `FSR_SCALE` as usual.

use fsr_bench::{Knobs, Table};
use fsr_core::driver::{run_batch_sharded_with_stats, Job, PlanSourceSpec, ShardMode};
use fsr_core::{MissKind, PipelineConfig, RunResult};
use std::fmt::Write as _;
use std::time::Instant;

const BLOCK: u32 = 128;
const WORKLOAD: &str = "water";

fn run_cell(w: &fsr_workloads::Workload, k: &Knobs, threads: usize) -> (f64, u64, RunResult) {
    let job = Job::new(
        threads as u32,
        w.source,
        &[("NPROC", k.nproc), ("SCALE", k.scale)],
        PlanSourceSpec::Unoptimized,
        PipelineConfig::with_block(BLOCK),
    );
    let start = Instant::now();
    let (mut out, stats) = run_batch_sharded_with_stats(vec![job], 1, ShardMode::Force(threads));
    let wall = start.elapsed().as_secs_f64();
    let r = out.remove(0).1.expect("scale cell runs clean");
    (wall, stats.segments, r)
}

fn main() {
    let k = Knobs::from_env();
    let golden = std::env::args().any(|a| a == "--golden");
    let thread_counts: Vec<usize> = std::env::var("FSR_SCALE_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = fsr_workloads::by_name(WORKLOAD).expect("scale workload exists");
    eprintln!(
        "scale_sweep: workload={WORKLOAD} nproc={} scale={} block={BLOCK} \
         threads={thread_counts:?} detected_cores={cores}",
        k.nproc, k.scale
    );

    let runs: Vec<(usize, f64, u64, RunResult)> = thread_counts
        .iter()
        .map(|&t| {
            let (wall, segments, r) = run_cell(&w, &k, t);
            (t, wall, segments, r)
        })
        .collect();

    // The whole point of the stitch: every thread count is bit-identical.
    let (_, _, seg1, base) = &runs[0];
    for (t, _, segments, r) in &runs[1..] {
        assert_eq!(r.sim, base.sim, "{t} threads: sim stats diverged");
        assert_eq!(
            r.exec_cycles, base.exec_cycles,
            "{t} threads: exec cycles diverged"
        );
        assert_eq!(r.timing, base.timing, "{t} threads: timing diverged");
        assert_eq!(segments, seg1, "{t} threads: segment count diverged");
    }

    let wall1 = runs[0].1;
    let mut t = Table::new(&["threads", "wall_ms", "speedup", "segments", "exec_cycles"]);
    for (thr, wall, segments, r) in &runs {
        t.row(vec![
            thr.to_string(),
            format!("{:.1}", wall * 1e3),
            format!("{:.2}", wall1 / wall),
            segments.to_string(),
            r.exec_cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
    if cores < *thread_counts.iter().max().unwrap_or(&1) {
        eprintln!(
            "note: only {cores} core(s) detected — wall-clock speedup is \
             bounded by the hardware, not the engine"
        );
    }

    let mut misses = String::new();
    for (i, kind) in MissKind::ALL.iter().enumerate() {
        let _ = write!(
            misses,
            "{}\"{}\": {}",
            if i > 0 { ", " } else { "" },
            kind.name(),
            base.sim.miss_of(*kind)
        );
    }
    let json = if golden {
        // Machine-independent fields only: what the tier-1 gate pins.
        format!(
            "{{\n  \"suite\": \"scale_sweep\",\n  \"workload\": \"{WORKLOAD}\",\n  \
             \"version\": \"unopt\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
             \"block\": {BLOCK},\n  \"exec_cycles\": {},\n  \"refs\": {},\n  \
             \"misses\": {{{misses}}},\n  \"segments_per_run\": {}\n}}\n",
            k.nproc, k.scale, base.exec_cycles, base.sim.refs, seg1
        )
    } else {
        let rows: Vec<String> = runs
            .iter()
            .map(|(thr, wall, _, _)| {
                format!(
                    "    {{\"threads\": {thr}, \"wall_ms\": {:.3}, \"speedup\": {:.3}}}",
                    wall * 1e3,
                    wall1 / wall
                )
            })
            .collect();
        format!(
            "{{\n  \"suite\": \"scale_sweep\",\n  \"workload\": \"{WORKLOAD}\",\n  \
             \"version\": \"unopt\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
             \"block\": {BLOCK},\n  \"detected_cores\": {cores},\n  \
             \"exec_cycles\": {},\n  \"refs\": {},\n  \"misses\": {{{misses}}},\n  \
             \"segments_per_run\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            k.nproc,
            k.scale,
            base.exec_cycles,
            base.sim.refs,
            seg1,
            rows.join(",\n")
        )
    };
    let out = std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    std::fs::write(&out, json).expect("write scale results");
    eprintln!("wrote {out}");
}
