//! Table 1: benchmark inventory and version availability.

use fsr_bench::Table;
use fsr_workloads::Version;

fn main() {
    let mut t = Table::new(&["Program", "Description", "Versions"]);
    for w in fsr_workloads::all() {
        let vs: String = [
            (Version::Unoptimized, "N"),
            (Version::Compiler, "C"),
            (Version::Programmer, "P"),
        ]
        .iter()
        .filter(|(v, _)| w.has(*v))
        .map(|(_, s)| *s)
        .collect::<Vec<_>>()
        .join(" ");
        t.row(vec![w.name.to_string(), w.description.to_string(), vs]);
    }
    println!("Table 1: benchmarks\n{}", t.render());
}
