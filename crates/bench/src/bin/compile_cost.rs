//! The paper's compile-cost claim: the added analyses are a small
//! fraction of total compile time (~5%).

use fsr_bench::Table;

fn main() {
    let mut t = Table::new(&["program", "front-end us", "analysis us", "analysis %"]);
    let mut frac_sum = 0.0;
    let mut n = 0;
    for w in fsr_workloads::all() {
        let c = fsr_core::cost::measure(w.source, &[("NPROC", 12)]).expect("compiles");
        frac_sum += c.analysis_fraction();
        n += 1;
        t.row(vec![
            w.name.to_string(),
            format!("{}", c.total().as_micros()),
            format!("{}", (c.analysis + c.planning).as_micros()),
            format!("{:.1}", 100.0 * c.analysis_fraction()),
        ]);
    }
    println!("Compile-time cost of the analyses\n{}", t.render());
    println!(
        "average analysis share: {:.1}%",
        100.0 * frac_sum / n as f64
    );
}
