//! Cross-backend coherence matrix: every workload × version ×
//! protocol × interconnect, with per-object coherence-event counters.
//!
//! Runs the [`fsr_core::experiments::protocol_matrix`] sweep (one
//! `run_batch` call — all backend variants of a program version share a
//! single trace interpretation), prints a summary table, and writes the
//! full matrix as structured JSON to `BENCH_protocol_matrix.json`
//! (override the path with `FSR_BENCH_OUT`).
//!
//! Knobs: `FSR_NPROC`, `FSR_SCALE`, `FSR_THREADS` as usual, plus
//! `FSR_MATRIX_WORKLOADS` (comma-separated names, default
//! `raytrace,pverify,maxflow,topopt`).

use fsr_bench::{Knobs, Table};
use fsr_core::experiments::{protocol_matrix, MatrixCell, Vsn};
use fsr_core::{CoherenceEvent, InterconnectKind, MissKind, ProtocolKind};
use std::fmt::Write as _;

const BLOCK: u32 = 128;
const DEFAULT_WORKLOADS: &str = "raytrace,pverify,maxflow,topopt";

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cell_json(c: &MatrixCell) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"program\": {}, \"version\": {}, \"protocol\": {}, \"interconnect\": {},\n     \
         \"block\": {}, \"nproc\": {}, \"exec_cycles\": {}, \"queue_stall\": {},\n     \
         \"refs\": {}, \"reads\": {}, \"writes\": {},\n     \"misses\": {{",
        json_str(&c.program),
        json_str(&c.version),
        json_str(&c.protocol),
        json_str(&c.interconnect),
        c.block,
        c.nproc,
        c.exec_cycles,
        c.queue_stall,
        c.sim.refs,
        c.sim.reads,
        c.sim.writes,
    );
    for (i, k) in MissKind::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "{}{}: {}",
            if i > 0 { ", " } else { "" },
            json_str(k.name()),
            c.sim.miss_of(*k)
        );
    }
    s.push_str("},\n     \"events\": {");
    for (i, e) in CoherenceEvent::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "{}{}: {}",
            if i > 0 { ", " } else { "" },
            json_str(e.name()),
            c.sim.event_of(*e)
        );
    }
    s.push_str("},\n     \"objects\": [");
    for (i, (name, oc)) in c.per_obj.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n      {{\"name\": {}, ",
            if i > 0 { "," } else { "" },
            json_str(name)
        );
        for e in CoherenceEvent::ALL {
            let _ = write!(s, "{}: {}, ", json_str(e.name()), oc.event_of(e));
        }
        let _ = write!(s, "\"queue_stall\": {}}}", oc.queue_stall);
    }
    if !c.per_obj.is_empty() {
        s.push_str("\n     ");
    }
    s.push_str("]}");
    s
}

fn main() {
    let k = Knobs::from_env();
    let names_env =
        std::env::var("FSR_MATRIX_WORKLOADS").unwrap_or_else(|_| DEFAULT_WORKLOADS.into());
    let names: Vec<&str> = names_env.split(',').map(str::trim).collect();
    eprintln!(
        "protocol_matrix: nproc={} scale={} block={} workloads={names:?}",
        k.nproc, k.scale, BLOCK
    );

    let cells = protocol_matrix(
        &names,
        &[Vsn::N, Vsn::C],
        k.nproc,
        k.scale,
        BLOCK,
        k.threads,
    );
    assert!(!cells.is_empty(), "no workloads matched {names:?}");

    let mut t = Table::new(&[
        "program", "version", "protocol", "net", "exec", "queue", "inval", "upgr", "intv", "excl",
    ]);
    for c in &cells {
        t.row(vec![
            c.program.clone(),
            c.version.clone(),
            c.protocol.clone(),
            c.interconnect.clone(),
            c.exec_cycles.to_string(),
            c.queue_stall.to_string(),
            c.sim.invalidations.to_string(),
            c.sim.upgrades.to_string(),
            c.sim.interventions.to_string(),
            c.sim.exclusive_hits.to_string(),
        ]);
    }
    println!("{}", t.render());

    let protos: Vec<String> = ProtocolKind::ALL
        .iter()
        .map(|p| json_str(p.name()))
        .collect();
    let nets: Vec<String> = InterconnectKind::ALL
        .iter()
        .map(|i| json_str(i.name()))
        .collect();
    let progs: Vec<String> = names.iter().map(|n| json_str(n)).collect();
    let body: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        "{{\n  \"suite\": \"protocol_matrix\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
         \"block\": {},\n  \"protocols\": [{}],\n  \"interconnects\": [{}],\n  \
         \"workloads\": [{}],\n  \"cells\": [\n{}\n  ]\n}}\n",
        k.nproc,
        k.scale,
        BLOCK,
        protos.join(", "),
        nets.join(", "),
        progs.join(", "),
        body.join(",\n")
    );
    let out =
        std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_protocol_matrix.json".into());
    std::fs::write(&out, json).expect("write matrix results");
    eprintln!("wrote {out}");
}
