//! Cross-backend coherence matrix: every workload × version ×
//! protocol × interconnect, with per-object coherence-event counters.
//!
//! Runs the [`fsr_core::experiments::protocol_matrix_cells`] sweep one
//! (protocol, interconnect) backend pair at a time — each pair is one
//! `run_batch` call whose wall-clock is measured, so the output carries
//! a per-cell timing row per backend pair — prints a summary table, and
//! writes the full matrix as structured JSON to
//! `BENCH_protocol_matrix.json` (override the path with
//! `FSR_BENCH_OUT`).
//!
//! Knobs: `FSR_NPROC`, `FSR_SCALE`, `FSR_THREADS` as usual, plus
//! `FSR_MATRIX_WORKLOADS` (comma-separated names, default
//! `raytrace,pverify,maxflow,topopt`) and the simulator engine via
//! `--engine <scalar|soa|soa-chunked>` or `FSR_ENGINE` (default: the
//! chunked SoA hot path).

use fsr_bench::{Knobs, Table};
use fsr_core::experiments::{protocol_matrix_cells, MatrixCell, Vsn};
use fsr_core::{CoherenceEvent, InterconnectKind, MissKind, ProtocolKind, SimEngine};
use std::fmt::Write as _;
use std::time::Instant;

const BLOCK: u32 = 128;
const DEFAULT_WORKLOADS: &str = "raytrace,pverify,maxflow,topopt";

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cell_json(c: &MatrixCell) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"program\": {}, \"version\": {}, \"protocol\": {}, \"interconnect\": {},\n     \
         \"block\": {}, \"nproc\": {}, \"exec_cycles\": {}, \"queue_stall\": {},\n     \
         \"refs\": {}, \"reads\": {}, \"writes\": {},\n     \"misses\": {{",
        json_str(&c.program),
        json_str(&c.version),
        json_str(&c.protocol),
        json_str(&c.interconnect),
        c.block,
        c.nproc,
        c.exec_cycles,
        c.queue_stall,
        c.sim.refs,
        c.sim.reads,
        c.sim.writes,
    );
    for (i, k) in MissKind::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "{}{}: {}",
            if i > 0 { ", " } else { "" },
            json_str(k.name()),
            c.sim.miss_of(*k)
        );
    }
    s.push_str("},\n     \"events\": {");
    for (i, e) in CoherenceEvent::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "{}{}: {}",
            if i > 0 { ", " } else { "" },
            json_str(e.name()),
            c.sim.event_of(*e)
        );
    }
    s.push_str("},\n     \"objects\": [");
    for (i, (name, oc)) in c.per_obj.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n      {{\"name\": {}, ",
            if i > 0 { "," } else { "" },
            json_str(name)
        );
        for e in CoherenceEvent::ALL {
            let _ = write!(s, "{}: {}, ", json_str(e.name()), oc.event_of(e));
        }
        let _ = write!(s, "\"queue_stall\": {}}}", oc.queue_stall);
    }
    if !c.per_obj.is_empty() {
        s.push_str("\n     ");
    }
    s.push_str("]}");
    s
}

/// The simulator engine: `--engine <name>` wins, then `FSR_ENGINE`,
/// then the library default (chunked SoA).
fn engine_from_args() -> SimEngine {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--engine" {
            let v = args.next().expect("--engine takes a value");
            return SimEngine::parse(&v)
                .unwrap_or_else(|| panic!("unknown engine `{v}` (scalar|soa|soa-chunked)"));
        }
        if let Some(v) = a.strip_prefix("--engine=") {
            return SimEngine::parse(v)
                .unwrap_or_else(|| panic!("unknown engine `{v}` (scalar|soa|soa-chunked)"));
        }
    }
    match std::env::var("FSR_ENGINE") {
        Ok(v) => SimEngine::parse(&v)
            .unwrap_or_else(|| panic!("unknown FSR_ENGINE `{v}` (scalar|soa|soa-chunked)")),
        Err(_) => SimEngine::default(),
    }
}

fn main() {
    let k = Knobs::from_env();
    let engine = engine_from_args();
    let names_env =
        std::env::var("FSR_MATRIX_WORKLOADS").unwrap_or_else(|_| DEFAULT_WORKLOADS.into());
    let names: Vec<&str> = names_env.split(',').map(str::trim).collect();
    eprintln!(
        "protocol_matrix: nproc={} scale={} block={} engine={engine} workloads={names:?}",
        k.nproc, k.scale, BLOCK
    );

    // One batch per (protocol, interconnect) backend pair so every
    // pair's wall-clock is measured on its own — the per-cell timing
    // axis of the matrix.
    let mut cells: Vec<MatrixCell> = Vec::new();
    let mut pair_walls: Vec<(ProtocolKind, InterconnectKind, f64)> = Vec::new();
    for protocol in ProtocolKind::ALL {
        for ic in InterconnectKind::ALL {
            let start = Instant::now();
            let pair_cells = protocol_matrix_cells(
                &names,
                &[Vsn::N, Vsn::C],
                k.nproc,
                k.scale,
                BLOCK,
                k.threads,
                engine,
                &[protocol],
                &[ic],
            );
            pair_walls.push((protocol, ic, start.elapsed().as_secs_f64()));
            cells.extend(pair_cells);
        }
    }
    assert!(!cells.is_empty(), "no workloads matched {names:?}");

    let mut t = Table::new(&[
        "program", "version", "protocol", "net", "exec", "queue", "inval", "upgr", "intv", "excl",
    ]);
    for c in &cells {
        t.row(vec![
            c.program.clone(),
            c.version.clone(),
            c.protocol.clone(),
            c.interconnect.clone(),
            c.exec_cycles.to_string(),
            c.queue_stall.to_string(),
            c.sim.invalidations.to_string(),
            c.sim.upgrades.to_string(),
            c.sim.interventions.to_string(),
            c.sim.exclusive_hits.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut pt = Table::new(&["protocol", "net", "wall_ms"]);
    for (p, ic, wall) in &pair_walls {
        pt.row(vec![
            p.name().to_string(),
            ic.name().to_string(),
            format!("{:.1}", wall * 1e3),
        ]);
    }
    println!("{}", pt.render());

    let protos: Vec<String> = ProtocolKind::ALL
        .iter()
        .map(|p| json_str(p.name()))
        .collect();
    let nets: Vec<String> = InterconnectKind::ALL
        .iter()
        .map(|i| json_str(i.name()))
        .collect();
    let progs: Vec<String> = names.iter().map(|n| json_str(n)).collect();
    let pairs: Vec<String> = pair_walls
        .iter()
        .map(|(p, ic, wall)| {
            format!(
                "    {{\"protocol\": {}, \"interconnect\": {}, \"wall_ms\": {:.3}}}",
                json_str(p.name()),
                json_str(ic.name()),
                wall * 1e3
            )
        })
        .collect();
    let body: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        "{{\n  \"suite\": \"protocol_matrix\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
         \"block\": {},\n  \"engine\": {},\n  \"protocols\": [{}],\n  \
         \"interconnects\": [{}],\n  \"workloads\": [{}],\n  \"pair_timings\": [\n{}\n  ],\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        k.nproc,
        k.scale,
        BLOCK,
        json_str(engine.name()),
        protos.join(", "),
        nets.join(", "),
        progs.join(", "),
        pairs.join(",\n"),
        body.join(",\n")
    );
    let out =
        std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_protocol_matrix.json".into());
    std::fs::write(&out, json).expect("write matrix results");
    eprintln!("wrote {out}");
}
