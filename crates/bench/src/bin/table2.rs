//! Table 2: false-sharing reduction broken down by transformation,
//! averaged over 8..256-byte blocks.

use fsr_bench::{Knobs, Table};
use fsr_core::experiments::table2;

fn main() {
    let k = Knobs::from_env();
    eprintln!("table2: nproc={} scale={}", k.nproc, k.scale);
    let rows =
        table2(k.nproc, k.scale, &[8, 16, 32, 64, 128, 256], k.threads).expect("table2 experiment");
    let mut t = Table::new(&[
        "program",
        "total FS reduction%",
        "g&t only%",
        "indirection only%",
        "pad only%",
        "locks only%",
        "dropped blocks",
    ]);
    for r in rows {
        t.row(vec![
            r.program,
            format!("{:.1}", r.total_reduction_pct),
            format!("{:.1}", r.transpose_pct),
            format!("{:.1}", r.indirection_pct),
            format!("{:.1}", r.pad_pct),
            format!("{:.1}", r.locks_pct),
            r.dropped_blocks.to_string(),
        ]);
    }
    println!(
        "Table 2: FS reduction by transformation (avg over 8-256B blocks)\n{}",
        t.render()
    );
}
