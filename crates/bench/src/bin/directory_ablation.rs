//! Directory-coherence ablation: how the paper's miss taxonomy and
//! false-sharing *costs* shift when the broadcast-style KSR2 substrate
//! is replaced by a home-node directory fabric.
//!
//! Runs [`fsr_core::experiments::directory_ablation`] — every workload
//! × {unopt, compiler} × [`Backend::ABLATION`] (MSI + ring, MESI +
//! ring, directory + home-dir) as one `run_batch` call — prints a
//! summary table plus the per-workload false-sharing cost deltas, and
//! writes the rows as structured JSON to
//! `BENCH_directory_ablation.json` (override with `FSR_BENCH_OUT`).
//!
//! The miss-classification columns are identical across the three
//! backends (the taxonomy is protocol-invariant; the property tests
//! prove it on random traces, this report commits it for the real
//! workloads); the cost columns are where the substrates diverge.
//!
//! Knobs: `FSR_NPROC`, `FSR_SCALE`, `FSR_THREADS` as usual, plus
//! `FSR_ABLATION_WORKLOADS` (comma-separated names, default: all ten).
//!
//! [`Backend::ABLATION`]: fsr_core::experiments::Backend::ABLATION

use fsr_bench::{Knobs, Table};
use fsr_core::experiments::{directory_ablation, AblationRow};
use fsr_core::MissKind;
use std::fmt::Write as _;

const BLOCK: u32 = 128;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn row_json(r: &AblationRow) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"program\": {}, \"version\": {}, \"protocol\": {}, \"interconnect\": {},\n     \
         \"block\": {}, \"nproc\": {}, \"misses\": {{",
        json_str(&r.program),
        json_str(&r.version),
        json_str(&r.protocol),
        json_str(&r.interconnect),
        r.block,
        r.nproc,
    );
    for (i, k) in MissKind::ALL.iter().enumerate() {
        let _ = write!(
            s,
            "{}{}: {}",
            if i > 0 { ", " } else { "" },
            json_str(k.name()),
            r.misses[*k as usize]
        );
    }
    let _ = write!(
        s,
        "}},\n     \"upgrades\": {}, \"invalidations\": {}, \"dir_txns\": {},\n     \
         \"exec_cycles\": {}, \"fs_stall\": {}, \"queue_stall\": {},\n     \
         \"two_hop\": {}, \"three_hop\": {}, \"max_channel_busy\": {}}}",
        r.upgrades,
        r.invalidations,
        r.dir_txns,
        r.exec_cycles,
        r.fs_stall,
        r.queue_stall,
        r.two_hop,
        r.three_hop,
        r.max_channel_busy,
    );
    s
}

fn main() {
    let k = Knobs::from_env();
    let names_env = std::env::var("FSR_ABLATION_WORKLOADS").unwrap_or_default();
    let names: Vec<&str> = if names_env.is_empty() {
        fsr_workloads::all().iter().map(|w| w.name).collect()
    } else {
        names_env.split(',').map(str::trim).collect()
    };
    eprintln!(
        "directory_ablation: nproc={} scale={} block={} workloads={names:?}",
        k.nproc, k.scale, BLOCK
    );

    let rows = directory_ablation(&names, k.nproc, k.scale, BLOCK, k.threads);
    assert!(!rows.is_empty(), "no workloads matched {names:?}");

    let mut t = Table::new(&[
        "program", "version", "protocol", "net", "fs_miss", "fs_stall", "exec", "dir_txn", "3hop",
        "queue", "hot_chan",
    ]);
    for r in &rows {
        t.row(vec![
            r.program.clone(),
            r.version.clone(),
            r.protocol.clone(),
            r.interconnect.clone(),
            r.misses[MissKind::FalseSharing as usize].to_string(),
            r.fs_stall.to_string(),
            r.exec_cycles.to_string(),
            r.dir_txns.to_string(),
            r.three_hop.to_string(),
            r.queue_stall.to_string(),
            r.max_channel_busy.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Per-workload false-sharing cost deltas: directory vs the two
    // snooping backends, on the unoptimized version (where the false
    // sharing lives).
    let find = |prog: &str, version: &str, protocol: &str| {
        rows.iter()
            .find(|r| r.program == prog && r.version == version && r.protocol == protocol)
    };
    println!("false-sharing stall, unopt (directory vs snooping):");
    for &name in &names {
        let (Some(msi), Some(mesi), Some(dir)) = (
            find(name, "unopt", "msi"),
            find(name, "unopt", "mesi"),
            find(name, "unopt", "directory"),
        ) else {
            continue;
        };
        let pct = |a: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                100.0 * (a as f64 - b as f64) / b as f64
            }
        };
        println!(
            "  {name:>10}: dir {:>10} vs msi {:>10} ({:+6.1}%) vs mesi {:>10} ({:+6.1}%)",
            dir.fs_stall,
            msi.fs_stall,
            pct(dir.fs_stall, msi.fs_stall),
            mesi.fs_stall,
            pct(dir.fs_stall, mesi.fs_stall),
        );
    }

    let progs: Vec<String> = names.iter().map(|n| json_str(n)).collect();
    let body: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"suite\": \"directory_ablation\",\n  \"nproc\": {},\n  \"scale\": {},\n  \
         \"block\": {},\n  \"workloads\": [{}],\n  \"rows\": [\n{}\n  ]\n}}\n",
        k.nproc,
        k.scale,
        BLOCK,
        progs.join(", "),
        body.join(",\n")
    );
    let out =
        std::env::var("FSR_BENCH_OUT").unwrap_or_else(|_| "BENCH_directory_ablation.json".into());
    std::fs::write(&out, json).expect("write ablation results");
    eprintln!("wrote {out}");
}
