//! Static race & synchronization lint over the PSL workloads.
//!
//! Modes:
//! - (default) human-readable report over the ten workloads;
//! - `--json` stable machine report (diffed against the checked-in
//!   golden by `scripts/tier1.sh`);
//! - `--mutants` checks the seeded-race suite's static verdicts against
//!   each mutant's expected diagnostic codes (exit 1 on mismatch);
//! - `--validate` replays every workload and mutant in the interpreter
//!   under the happens-before trace checker and scores the static lint
//!   against the dynamic ground truth (precision/recall JSON; exit 1 on
//!   a workload false positive, a mutant verdict mismatch, an
//!   unconfirmed seeded race, or a dirty control).
//!
//! Both dimensions are fixed at `NPROC=4, SCALE=1` so reports are
//! byte-stable.

use fsr_interp::HbChecker;
use fsr_lang::ast::{ObjectKind, Program};
use fsr_workloads as workloads;
use std::collections::BTreeSet;
use std::fmt::Write as _;

const NPROC: i64 = 4;
const SCALE: i64 = 1;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_list(items: &BTreeSet<String>) -> String {
    let inner: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", inner.join(", "))
}

fn compile(name: &str, source: &str) -> Program {
    fsr_lang::compile_with_params(source, &[("NPROC", NPROC), ("SCALE", SCALE)])
        .unwrap_or_else(|e| panic!("{name}: {}", e.render(source)))
}

/// Static lint for one program: the race report plus the racy object
/// names (W001/W002 carriers; W003 is span-only).
fn lint(name: &str, prog: &Program) -> (fsr_analysis::RaceReport, BTreeSet<String>) {
    let analysis = fsr_analysis::analyze(prog).unwrap_or_else(|e| panic!("{name}: analysis: {e}"));
    let report = fsr_analysis::detect(prog, &analysis);
    let racy = report
        .racy_objects()
        .iter()
        .map(|&o| prog.object(o).name.clone())
        .collect();
    (report, racy)
}

/// Dynamic ground truth for one program: shared-data objects with at
/// least one happens-before race in the interpreter trace. Lock words
/// and private data are filtered out via layout attribution.
fn replay(name: &str, prog: &Program) -> BTreeSet<String> {
    let plan = fsr_transform::LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(prog, &plan, NPROC as u32);
    let code = fsr_interp::compile_program(prog).unwrap();
    let mut checker = HbChecker::new(NPROC as usize);
    fsr_interp::run(
        prog,
        &layout,
        &code,
        fsr_interp::RunConfig::default(),
        &mut checker,
    )
    .unwrap_or_else(|e| panic!("{name}: run: {e}"));
    let mut racy = BTreeSet::new();
    for &word in checker.racy_words() {
        if let Some(oid) = layout.attribute(word) {
            if prog.object(oid).kind == ObjectKind::SharedData {
                racy.insert(prog.object(oid).name.clone());
            }
        }
    }
    racy
}

fn static_codes(report: &fsr_analysis::RaceReport) -> Vec<&'static str> {
    let mut got: Vec<&'static str> = report
        .diagnostics
        .iter()
        .filter_map(|d| d.code.map(|c| c.id()))
        .collect();
    got.sort_unstable();
    got.dedup();
    got
}

fn human() {
    for w in workloads::all() {
        let prog = compile(w.name, w.source);
        let (report, _) = lint(w.name, &prog);
        if report.is_clean() {
            println!(
                "{:<12} clean ({} unprovable pair group(s) suppressed)",
                w.name, report.suppressed_pairs
            );
        } else {
            println!(
                "{:<12} {} warning(s), {} unprovable pair group(s) suppressed",
                w.name,
                report.diagnostics.len(),
                report.suppressed_pairs
            );
            for line in report.diagnostics.render_all(w.source).lines() {
                println!("    {line}");
            }
        }
    }
}

fn json() {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"nproc\": {NPROC},\n  \"scale\": {SCALE},\n  \"workloads\": [\n"
    ));
    let ws = workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let prog = compile(w.name, w.source);
        let (report, _) = lint(w.name, &prog);
        let _ = write!(
            out,
            "    {{\"name\": {}, \"suppressed_pairs\": {}, \"diagnostics\": [",
            json_str(w.name),
            report.suppressed_pairs
        );
        for (j, d) in report.diagnostics.iter().enumerate() {
            let (line, col) = d.span.line_col(w.source);
            let _ = write!(
                out,
                "{}\n      {{\"code\": {}, \"line\": {line}, \"col\": {col}, \"msg\": {}}}",
                if j == 0 { "" } else { "," },
                json_str(d.code.map(|c| c.id()).unwrap_or("")),
                json_str(&d.msg)
            );
        }
        if !report.diagnostics.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str(if i + 1 == ws.len() { "]}\n" } else { "]},\n" });
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

fn mutants() -> i32 {
    let mut failed = 0;
    for m in workloads::mutants::all() {
        let prog = compile(m.name, m.source);
        let (report, _) = lint(m.name, &prog);
        let got = static_codes(&report);
        if got == m.expected {
            println!("PASS {:<28} {:?}", m.name, got);
        } else {
            println!(
                "FAIL {:<28} expected {:?}, got {:?}",
                m.name, m.expected, got
            );
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("{failed} mutant verdict(s) wrong");
        1
    } else {
        0
    }
}

fn validate() -> i32 {
    let mut out = String::new();
    let mut fail = false;
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    out.push_str(&format!(
        "{{\n  \"nproc\": {NPROC},\n  \"scale\": {SCALE},\n  \"workloads\": [\n"
    ));
    let ws = workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let prog = compile(w.name, w.source);
        let (_, stat) = lint(w.name, &prog);
        let dynr = replay(w.name, &prog);
        let wtp = stat.intersection(&dynr).count();
        let wfp = stat.difference(&dynr).count();
        let wfn = dynr.difference(&stat).count();
        tp += wtp;
        fp += wfp;
        fne += wfn;
        if wfp > 0 {
            fail = true;
            eprintln!(
                "FAIL {}: static-only (unconfirmed) races: {:?}",
                w.name,
                stat.difference(&dynr).collect::<Vec<_>>()
            );
        }
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"static\": {}, \"dynamic\": {}, \"tp\": {wtp}, \"fp\": {wfp}, \"fn\": {wfn}}}{}",
            json_str(w.name),
            json_list(&stat),
            json_list(&dynr),
            if i + 1 == ws.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n  \"mutants\": [\n");
    let ms = workloads::mutants::all();
    for (i, m) in ms.iter().enumerate() {
        let prog = compile(m.name, m.source);
        let (report, stat) = lint(m.name, &prog);
        let dynr = replay(m.name, &prog);
        let got = static_codes(&report);
        let codes_ok = got == m.expected;
        let confirmed = if m.seeded {
            // Every planted racy object must be flagged statically AND
            // race in the trace.
            m.racy_objects
                .iter()
                .all(|o| stat.contains(*o) && dynr.contains(*o))
        } else {
            // Controls must be clean on both sides.
            stat.is_empty() && dynr.is_empty()
        };
        if !codes_ok || !confirmed {
            fail = true;
            eprintln!(
                "FAIL {}: codes_ok={codes_ok} (expected {:?}, got {:?}) confirmed={confirmed} \
                 static={stat:?} dynamic={dynr:?}",
                m.name, m.expected, got
            );
        }
        let mtp = stat.intersection(&dynr).count();
        let mfp = stat.difference(&dynr).count();
        let mfn = dynr.difference(&stat).count();
        tp += mtp;
        fp += mfp;
        fne += mfn;
        let codes: Vec<String> = got.iter().map(|c| json_str(c)).collect();
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"seeded\": {}, \"codes\": [{}], \"codes_ok\": {codes_ok}, \
             \"static\": {}, \"dynamic\": {}, \"confirmed\": {confirmed}}}{}",
            json_str(m.name),
            m.seeded,
            codes.join(", "),
            json_list(&stat),
            json_list(&dynr),
            if i + 1 == ms.len() { "" } else { "," }
        );
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fne == 0 {
        1.0
    } else {
        tp as f64 / (tp + fne) as f64
    };
    let _ = write!(
        out,
        "  ],\n  \"totals\": {{\"tp\": {tp}, \"fp\": {fp}, \"fn\": {fne}, \
         \"precision\": {precision:.3}, \"recall\": {recall:.3}}}\n}}"
    );
    println!("{out}");
    i32::from(fail)
}

fn main() {
    let mode = std::env::args().nth(1);
    let code = match mode.as_deref() {
        None => {
            human();
            0
        }
        Some("--json") => {
            json();
            0
        }
        Some("--mutants") => mutants(),
        Some("--validate") => validate(),
        Some(other) => {
            eprintln!("unknown mode {other}; use --json, --mutants or --validate");
            2
        }
    };
    std::process::exit(code);
}
