//! Static race & synchronization lint over the PSL workloads.
//!
//! Modes:
//! - (default) human-readable report over the ten workloads;
//! - `--json` stable machine report (diffed against the checked-in
//!   golden by `scripts/tier1.sh`);
//! - `--refine` same report with dynamic refinement: a recorded
//!   reference trace supplies conflict witnesses that upgrade
//!   statically-unprovable suppressed pairs (`fsr-core`'s
//!   `Snapshot::lint_refined` — the analysis-as-a-service loop);
//! - `--advise` static false-sharing advisor (`FSR-W004`) validated
//!   against the simulator's per-object miss taxonomy under the
//!   unoptimized layout (exit 1 when an object with false-sharing
//!   misses is unflagged, or a flagged object lives in a block with no
//!   false sharing at all);
//! - `--mutants` checks the seeded-race suite's static verdicts against
//!   each mutant's expected diagnostic codes (exit 1 on mismatch);
//! - `--validate` replays every workload and mutant in the interpreter
//!   under the happens-before trace checker and scores the static lint
//!   against the dynamic ground truth (precision/recall JSON; exit 1 on
//!   a workload false positive, a mutant verdict mismatch, an
//!   unconfirmed seeded race, a dirty control, or totals below the
//!   precision = 1.0 / recall ≥ 0.85 floor).
//!
//! Both dimensions are fixed at `NPROC=4, SCALE=1` so reports are
//! byte-stable.

use fsr_interp::HbChecker;
use fsr_lang::ast::{ObjectKind, Program};
use fsr_workloads as workloads;
use std::collections::BTreeSet;
use std::fmt::Write as _;

const NPROC: i64 = 4;
const SCALE: i64 = 1;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_list(items: &BTreeSet<String>) -> String {
    let inner: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", inner.join(", "))
}

fn compile(name: &str, source: &str) -> Program {
    fsr_lang::compile_with_params(source, &[("NPROC", NPROC), ("SCALE", SCALE)])
        .unwrap_or_else(|e| panic!("{name}: {}", e.render(source)))
}

/// Static lint for one program: the race report plus the racy object
/// names (W001/W002 carriers; W003 is span-only).
fn lint(name: &str, prog: &Program) -> (fsr_analysis::RaceReport, BTreeSet<String>) {
    let analysis = fsr_analysis::analyze(prog).unwrap_or_else(|e| panic!("{name}: analysis: {e}"));
    let report = fsr_analysis::detect(prog, &analysis);
    let racy = report
        .racy_objects()
        .iter()
        .map(|&o| prog.object(o).name.clone())
        .collect();
    (report, racy)
}

/// Dynamic ground truth for one program: shared-data objects with at
/// least one happens-before race in the interpreter trace. Lock words
/// and private data are filtered out via layout attribution.
fn replay(name: &str, prog: &Program) -> BTreeSet<String> {
    let plan = fsr_transform::LayoutPlan::unoptimized(64);
    let layout = fsr_layout::Layout::build(prog, &plan, NPROC as u32);
    let code = fsr_interp::compile_program(prog).unwrap();
    let mut checker = HbChecker::new(NPROC as usize);
    fsr_interp::run(
        prog,
        &layout,
        &code,
        fsr_interp::RunConfig::default(),
        &mut checker,
    )
    .unwrap_or_else(|e| panic!("{name}: run: {e}"));
    let mut racy = BTreeSet::new();
    for &word in checker.racy_words() {
        if let Some(oid) = layout.attribute(word) {
            if prog.object(oid).kind == ObjectKind::SharedData {
                racy.insert(prog.object(oid).name.clone());
            }
        }
    }
    racy
}

/// `(object label, reason)` pairs for the suppressed groups, sorted.
fn suppressed_of(prog: &Program, report: &fsr_analysis::RaceReport) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = report
        .suppressed
        .iter()
        .map(|g| {
            (
                fsr_analysis::access_label(prog, g.obj, g.field),
                g.reason.to_string(),
            )
        })
        .collect();
    out.sort();
    out
}

fn suppressed_json(suppressed: &[(String, String)]) -> String {
    let inner: Vec<String> = suppressed
        .iter()
        .map(|(o, r)| {
            format!(
                "{{\"object\": {}, \"reason\": {}}}",
                json_str(o),
                json_str(r)
            )
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

fn static_codes(report: &fsr_analysis::RaceReport) -> Vec<&'static str> {
    let mut got: Vec<&'static str> = report
        .diagnostics
        .iter()
        .filter_map(|d| d.code.map(|c| c.id()))
        .collect();
    got.sort_unstable();
    got.dedup();
    got
}

fn human() {
    for w in workloads::all() {
        let prog = compile(w.name, w.source);
        let (report, _) = lint(w.name, &prog);
        if report.is_clean() {
            println!(
                "{:<12} clean ({} unprovable pair group(s) suppressed)",
                w.name, report.suppressed_pairs
            );
        } else {
            println!(
                "{:<12} {} warning(s), {} unprovable pair group(s) suppressed",
                w.name,
                report.diagnostics.len(),
                report.suppressed_pairs
            );
            for line in report.diagnostics.render_all(w.source).lines() {
                println!("    {line}");
            }
        }
    }
}

fn diagnostics_json(out: &mut String, source: &str, diagnostics: &fsr_lang::diag::Diagnostics) {
    for (j, d) in diagnostics.iter().enumerate() {
        let (line, col) = d.span.line_col(source);
        let _ = write!(
            out,
            "{}\n      {{\"code\": {}, \"line\": {line}, \"col\": {col}, \"msg\": {}}}",
            if j == 0 { "" } else { "," },
            json_str(d.code.map(|c| c.id()).unwrap_or("")),
            json_str(&d.msg)
        );
    }
    if !diagnostics.is_empty() {
        out.push_str("\n    ");
    }
}

fn json() {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"nproc\": {NPROC},\n  \"scale\": {SCALE},\n  \"workloads\": [\n"
    ));
    let ws = workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let prog = compile(w.name, w.source);
        let (report, _) = lint(w.name, &prog);
        let _ = write!(
            out,
            "    {{\"name\": {}, \"suppressed_pairs\": {}, \"suppressed\": {}, \"diagnostics\": [",
            json_str(w.name),
            report.suppressed_pairs,
            suppressed_json(&suppressed_of(&prog, &report))
        );
        diagnostics_json(&mut out, w.source, &report.diagnostics);
        out.push_str(if i + 1 == ws.len() { "]}\n" } else { "]},\n" });
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

/// `--refine`: the `--json` report recomputed through `fsr-core`'s
/// world snapshot with trace-backed refinement. Suppressed pairs whose
/// conflict is witnessed in the recorded reference trace are upgraded
/// to reported races (locusroute's partition array `grid` is the
/// motivating case: its index ranges come from run-time partition
/// values the static domain cannot bound).
fn refine() -> i32 {
    let world = fsr_core::World::new();
    let snap = world.snapshot();
    let params: Vec<(String, i64)> = vec![("NPROC".into(), NPROC), ("SCALE".into(), SCALE)];
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"nproc\": {NPROC},\n  \"scale\": {SCALE},\n  \"refined\": true,\n  \"workloads\": [\n"
    ));
    let ws = workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let src: std::sync::Arc<str> = std::sync::Arc::from(w.source);
        let (summary, _warm) = snap
            .lint_refined(&src, &params)
            .unwrap_or_else(|e| panic!("{}: refine: {e:?}", w.name));
        let racy: BTreeSet<String> = summary.racy.iter().cloned().collect();
        let _ = write!(
            out,
            "    {{\"name\": {}, \"racy\": {}, \"suppressed_pairs\": {}, \"suppressed\": {}, \"diagnostics\": [",
            json_str(w.name),
            json_list(&racy),
            summary.suppressed_pairs,
            suppressed_json(&summary.suppressed)
        );
        diagnostics_json(&mut out, w.source, &summary.diagnostics);
        out.push_str(if i + 1 == ws.len() { "]}\n" } else { "]},\n" });
    }
    out.push_str("  ]\n}");
    println!("{out}");
    0
}

/// `--advise`: run the static false-sharing advisor, then validate it
/// against the simulator's per-object miss taxonomy under the
/// unoptimized layout. The agreement contract (see `fsr-transform`'s
/// `advise` docs): every object with false-sharing misses must be
/// flagged (completeness, per object); every flagged object must share
/// an unoptimized block with measured false sharing (soundness, per
/// block — within a block, miss attribution is interleaving noise).
fn advise() -> i32 {
    use fsr_lang::ast::ObjId;
    let mut fail = false;
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"nproc\": {NPROC},\n  \"scale\": {SCALE},\n  \"workloads\": [\n"
    ));
    let cfg = fsr_core::PipelineConfig::default();
    let plan_cfg = fsr_transform::PlanConfig::with_block(cfg.block_bytes);
    let ws = workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let prog = compile(w.name, w.source);
        let analysis =
            fsr_analysis::analyze(&prog).unwrap_or_else(|e| panic!("{}: analysis: {e}", w.name));
        let plan = fsr_transform::LayoutPlan::unoptimized(cfg.block_bytes);
        let layout = fsr_layout::Layout::build(&prog, &plan, NPROC as u32);
        let regions: Vec<(ObjId, u32, u32)> = layout
            .regions()
            .iter()
            .map(|r| {
                (
                    r.obj,
                    r.start_word * fsr_lang::ast::WORD_BYTES,
                    r.end_word * fsr_lang::ast::WORD_BYTES,
                )
            })
            .collect();
        let advice = fsr_transform::advise(&prog, &analysis, &plan_cfg, &regions);
        let diags = fsr_transform::advise_diagnostics(&prog, &analysis, &plan_cfg, &regions);
        let res = fsr_core::run_pipeline(
            w.source,
            &[("NPROC", NPROC), ("SCALE", SCALE)],
            fsr_core::PlanSource::Unoptimized,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{}: pipeline: {e:?}", w.name));
        let fs_of = |name: &str| {
            res.per_obj
                .get(name)
                .map(|m| m.false_sharing())
                .unwrap_or(0)
        };
        let block = |b: u32| b / cfg.block_bytes;
        let shares_block = |a: ObjId, b: ObjId| {
            regions.iter().filter(|r| r.0 == a).any(|&(_, s1, e1)| {
                regions.iter().filter(|r| r.0 == b).any(|&(_, s2, e2)| {
                    block(e1.saturating_sub(1)) >= block(s2)
                        && block(s1) <= block(e2.saturating_sub(1))
                })
            })
        };
        let mut rows = String::new();
        let mut agree = true;
        for (j, obj) in prog.objects.iter().enumerate() {
            let oid = ObjId(j as u32);
            if !matches!(obj.kind, ObjectKind::SharedData | ObjectKind::Lock) {
                continue;
            }
            let fs = fs_of(&obj.name);
            let rec = advice
                .iter()
                .find(|a| a.obj == oid)
                .map(|a| a.recommendation);
            // Completeness: measured false sharing must be flagged.
            if fs > 0 && rec.is_none() {
                agree = false;
                eprintln!(
                    "FAIL {}: `{}` has {fs} false-sharing misses but no advice",
                    w.name, obj.name
                );
            }
            // Soundness: advice must point at a block that false-shares.
            if let Some(r) = rec {
                let block_fs = prog
                    .objects
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| shares_block(oid, ObjId(*k as u32)))
                    .map(|(_, o)| fs_of(&o.name))
                    .sum::<u64>();
                if block_fs == 0 {
                    agree = false;
                    eprintln!(
                        "FAIL {}: `{}` advised ({r}) but its blocks have no false sharing",
                        w.name, obj.name
                    );
                }
            }
            let _ = write!(
                rows,
                "{}\n      {{\"object\": {}, \"fs_misses\": {fs}, \"flagged\": {}, \"recommendation\": {}}}",
                if rows.is_empty() { "" } else { "," },
                json_str(&obj.name),
                rec.is_some(),
                rec.map(json_str).unwrap_or_else(|| "null".into())
            );
        }
        fail |= !agree;
        let _ = write!(
            out,
            "    {{\"name\": {}, \"agree\": {agree}, \"objects\": [{rows}\n    ], \"diagnostics\": [",
            json_str(w.name)
        );
        diagnostics_json(&mut out, w.source, &diags);
        out.push_str(if i + 1 == ws.len() { "]}\n" } else { "]},\n" });
    }
    out.push_str("  ]\n}");
    println!("{out}");
    i32::from(fail)
}

fn mutants() -> i32 {
    let mut failed = 0;
    for m in workloads::mutants::all() {
        let prog = compile(m.name, m.source);
        let (report, _) = lint(m.name, &prog);
        let got = static_codes(&report);
        if got == m.expected {
            println!("PASS {:<28} {:?}", m.name, got);
        } else {
            println!(
                "FAIL {:<28} expected {:?}, got {:?}",
                m.name, m.expected, got
            );
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("{failed} mutant verdict(s) wrong");
        1
    } else {
        0
    }
}

fn validate() -> i32 {
    let mut out = String::new();
    let mut fail = false;
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    out.push_str(&format!(
        "{{\n  \"nproc\": {NPROC},\n  \"scale\": {SCALE},\n  \"workloads\": [\n"
    ));
    let ws = workloads::all();
    for (i, w) in ws.iter().enumerate() {
        let prog = compile(w.name, w.source);
        let (_, stat) = lint(w.name, &prog);
        let dynr = replay(w.name, &prog);
        let wtp = stat.intersection(&dynr).count();
        let wfp = stat.difference(&dynr).count();
        let wfn = dynr.difference(&stat).count();
        tp += wtp;
        fp += wfp;
        fne += wfn;
        if wfp > 0 {
            fail = true;
            eprintln!(
                "FAIL {}: static-only (unconfirmed) races: {:?}",
                w.name,
                stat.difference(&dynr).collect::<Vec<_>>()
            );
        }
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"static\": {}, \"dynamic\": {}, \"tp\": {wtp}, \"fp\": {wfp}, \"fn\": {wfn}}}{}",
            json_str(w.name),
            json_list(&stat),
            json_list(&dynr),
            if i + 1 == ws.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n  \"mutants\": [\n");
    let ms = workloads::mutants::all();
    for (i, m) in ms.iter().enumerate() {
        let prog = compile(m.name, m.source);
        let (report, stat) = lint(m.name, &prog);
        let dynr = replay(m.name, &prog);
        let got = static_codes(&report);
        let codes_ok = got == m.expected;
        let confirmed = if m.seeded {
            // Every planted racy object must be flagged statically AND
            // race in the trace.
            m.racy_objects
                .iter()
                .all(|o| stat.contains(*o) && dynr.contains(*o))
        } else {
            // Controls must be clean on both sides.
            stat.is_empty() && dynr.is_empty()
        };
        if !codes_ok || !confirmed {
            fail = true;
            eprintln!(
                "FAIL {}: codes_ok={codes_ok} (expected {:?}, got {:?}) confirmed={confirmed} \
                 static={stat:?} dynamic={dynr:?}",
                m.name, m.expected, got
            );
        }
        let mtp = stat.intersection(&dynr).count();
        let mfp = stat.difference(&dynr).count();
        let mfn = dynr.difference(&stat).count();
        tp += mtp;
        fp += mfp;
        fne += mfn;
        let codes: Vec<String> = got.iter().map(|c| json_str(c)).collect();
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"seeded\": {}, \"codes\": [{}], \"codes_ok\": {codes_ok}, \
             \"static\": {}, \"dynamic\": {}, \"confirmed\": {confirmed}}}{}",
            json_str(m.name),
            m.seeded,
            codes.join(", "),
            json_list(&stat),
            json_list(&dynr),
            if i + 1 == ms.len() { "" } else { "," }
        );
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fne == 0 {
        1.0
    } else {
        tp as f64 / (tp + fne) as f64
    };
    let _ = write!(
        out,
        "  ],\n  \"totals\": {{\"tp\": {tp}, \"fp\": {fp}, \"fn\": {fne}, \
         \"precision\": {precision:.3}, \"recall\": {recall:.3}}}\n}}"
    );
    println!("{out}");
    // The headline floor `scripts/tier1.sh` gates on: no unconfirmed
    // static report anywhere, and at least 85% of the dynamically
    // confirmed races recovered statically.
    if precision < 1.0 {
        eprintln!("FAIL precision {precision:.3} < 1.000");
        fail = true;
    }
    if recall < 0.85 {
        eprintln!("FAIL recall {recall:.3} < 0.850");
        fail = true;
    }
    i32::from(fail)
}

fn main() {
    let mode = std::env::args().nth(1);
    let code = match mode.as_deref() {
        None => {
            human();
            0
        }
        Some("--json") => {
            json();
            0
        }
        Some("--refine") => refine(),
        Some("--advise") => advise(),
        Some("--mutants") => mutants(),
        Some("--validate") => validate(),
        Some(other) => {
            eprintln!(
                "unknown mode {other}; use --json, --refine, --advise, --mutants or --validate"
            );
            2
        }
    };
    std::process::exit(code);
}
