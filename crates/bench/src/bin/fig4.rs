//! Figure 4: speedup vs processor count for the three representative
//! programs (Raytrace, Fmm, Pverify), all available versions.

use fsr_bench::{Knobs, Table, SWEEP_PROCS};
use fsr_core::experiments::{speedup_sweep, t1_unoptimized, Vsn};
use fsr_workloads::Version;

fn main() {
    let k = Knobs::from_env();
    let block = 128;
    for name in ["raytrace", "fmm", "pverify"] {
        let w = fsr_workloads::by_name(name).unwrap();
        let t1 = t1_unoptimized(&w, k.scale, block).expect("t1");
        let mut t = Table::new(&["procs", "unopt", "compiler", "programmer"]);
        let curves: Vec<(Vsn, _)> = [Vsn::N, Vsn::C, Vsn::P]
            .iter()
            .filter(|v| match v {
                Vsn::P => w.has(Version::Programmer),
                _ => true,
            })
            .map(|&v| {
                (
                    v,
                    speedup_sweep(&w, v, SWEEP_PROCS, k.scale, block, k.threads),
                )
            })
            .collect();
        for (i, &p) in SWEEP_PROCS.iter().enumerate() {
            let cell = |v: Vsn| -> String {
                curves
                    .iter()
                    .find(|(cv, _)| *cv == v)
                    .map(|(_, c)| format!("{:.2}", c.speedups(t1)[i].1))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![
                p.to_string(),
                cell(Vsn::N),
                cell(Vsn::C),
                cell(Vsn::P),
            ]);
        }
        println!(
            "Figure 4: {name} speedups (scale={})\n{}",
            k.scale,
            t.render()
        );
    }
}
