//! Table 3: maximum speedups for original, compiler- and
//! programmer-optimized versions, with the processor count at which each
//! occurs.

use fsr_bench::{fmt_speedup, Knobs, Table, SWEEP_PROCS};
use fsr_core::experiments::table3;

fn main() {
    let k = Knobs::from_env();
    eprintln!("table3: scale={} (sweep {:?})", k.scale, SWEEP_PROCS);
    let rows = table3(SWEEP_PROCS, k.scale, 128, k.threads);
    let mut t = Table::new(&["program", "original", "compiler", "programmer"]);
    for r in rows {
        t.row(vec![
            r.program,
            fmt_speedup(r.original),
            fmt_speedup(Some(r.compiler)),
            fmt_speedup(r.programmer),
        ]);
    }
    println!("Table 3: maximum speedups (block=128B)\n{}", t.render());
}
