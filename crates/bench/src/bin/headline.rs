//! §5 headline numbers: at 128-byte blocks, the share of misses due to
//! false sharing, how much of it the transformations eliminate, and the
//! cost in other misses. (Paper: ~70% / ~80% / +19%, total roughly
//! halved.)

use fsr_bench::Knobs;
use fsr_core::experiments::headline;

fn main() {
    let k = Knobs::from_env();
    let h = headline(k.nproc, k.scale, 128, k.threads);
    println!("§5 headline (block={}B, {} processors):", h.block, k.nproc);
    println!(
        "  false sharing share of all misses (unoptimized): {:.1}%",
        100.0 * h.fs_share_of_misses
    );
    println!(
        "  false-sharing misses eliminated by the compiler: {:.1}%",
        100.0 * h.fs_eliminated
    );
    println!(
        "  change in other misses:                          {:+.1}%",
        100.0 * h.other_miss_change
    );
    println!(
        "  change in total misses:                          {:+.1}%",
        100.0 * h.total_miss_change
    );
}
