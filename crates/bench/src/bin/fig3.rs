//! Figure 3: total miss rates for unoptimized vs compiler-transformed
//! versions at 16- and 128-byte blocks, split into false-sharing and
//! other misses.

use fsr_bench::{Knobs, Table};
use fsr_core::experiments::figure3;

fn main() {
    let k = Knobs::from_env();
    if std::env::args().any(|a| a == "--smoke") {
        // Quick end-to-end sanity pass for CI: small config, shape checks
        // only. Used by scripts/tier1.sh.
        let rows = figure3(4, 1, &[16, 128], k.threads);
        assert_eq!(rows.len(), 24, "6 programs x 2 blocks x 2 versions");
        assert!(rows
            .iter()
            .all(|r| r.fs_miss_rate.is_finite() && r.other_miss_rate.is_finite()));
        assert!(
            rows.iter().any(|r| r.fs_miss_rate > 0.0),
            "some unoptimized version must false-share"
        );
        println!("fig3 --smoke OK ({} rows)", rows.len());
        return;
    }
    eprintln!("fig3: nproc={} scale={}", k.nproc, k.scale);
    let rows = figure3(k.nproc, k.scale, &[16, 128], k.threads);
    for block in [16u32, 128] {
        let mut t = Table::new(&[
            "program",
            "version",
            "refs",
            "fs miss%",
            "other miss%",
            "total miss%",
        ]);
        for r in rows.iter().filter(|r| r.block == block) {
            t.row(vec![
                r.program.clone(),
                r.version.clone(),
                r.refs.to_string(),
                format!("{:.3}", 100.0 * r.fs_miss_rate),
                format!("{:.3}", 100.0 * r.other_miss_rate),
                format!("{:.3}", 100.0 * (r.fs_miss_rate + r.other_miss_rate)),
            ]);
        }
        println!(
            "Figure 3 ({}B blocks, {} processors)\n{}",
            block,
            k.nproc,
            t.render()
        );
    }
}
