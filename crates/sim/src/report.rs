//! Per-data-structure miss attribution reports.

use crate::{MissKind, MultiSim};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Miss counts for one attributed data structure.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObjMisses {
    pub misses: [u64; 4],
}

impl ObjMisses {
    pub fn total(&self) -> u64 {
        self.misses.iter().sum()
    }

    pub fn false_sharing(&self) -> u64 {
        self.misses[MissKind::FalseSharing as usize]
    }
}

/// Aggregate the simulator's per-block miss counts into per-object counts
/// using an address→name attribution function.
pub fn attribute_misses(
    sim: &MultiSim,
    mut name_of: impl FnMut(u32) -> Option<String>,
) -> BTreeMap<String, ObjMisses> {
    let mut out: BTreeMap<String, ObjMisses> = BTreeMap::new();
    let bb = sim.block_bytes();
    for (b, counts) in sim.per_block_misses().iter().enumerate() {
        if counts.iter().all(|&c| c == 0) {
            continue;
        }
        let addr = (b as u32) * bb;
        let name = name_of(addr).unwrap_or_else(|| "<unattributed>".to_string());
        let e = out.entry(name).or_default();
        for k in 0..4 {
            e.misses[k] += counts[k] as u64;
        }
    }
    out
}

/// Render an attribution table sorted by false-sharing misses.
pub fn render_attribution(misses: &BTreeMap<String, ObjMisses>) -> String {
    let mut rows: Vec<(&String, &ObjMisses)> = misses.iter().collect();
    rows.sort_by_key(|(_, m)| std::cmp::Reverse(m.false_sharing()));
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "data structure", "total", "cold", "repl", "true", "false"
    )
    .unwrap();
    for (name, m) in rows {
        writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
            name, m.total(), m.misses[0], m.misses[1], m.misses[2], m.misses[3]
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    #[test]
    fn attribution_groups_blocks_by_name() {
        let mut s = MultiSim::new(CacheConfig::with_block(64, 2), 1 << 16);
        s.access(0, 0x100, false);
        s.access(1, 0x108, true);
        s.access(0, 0x100, false); // false sharing
        s.access(0, 0x4000, false); // cold in another "object"
        let table = attribute_misses(&s, |addr| {
            Some(if addr < 0x2000 { "hot" } else { "cold_obj" }.to_string())
        });
        assert_eq!(table["hot"].false_sharing(), 1);
        assert_eq!(table["cold_obj"].total(), 1);
        let text = render_attribution(&table);
        assert!(text.contains("hot"));
        assert!(text.contains("cold_obj"));
    }
}
