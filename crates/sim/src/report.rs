//! Per-data-structure miss and coherence-event attribution reports.

use crate::{BankedSim, CoherenceEvent, MissKind, MultiSim};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Miss counts for one attributed data structure.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObjMisses {
    pub misses: [u64; MissKind::COUNT],
}

impl ObjMisses {
    pub fn total(&self) -> u64 {
        self.misses.iter().sum()
    }

    pub fn false_sharing(&self) -> u64 {
        self.misses[MissKind::FalseSharing as usize]
    }
}

/// Coherence-event counts for one attributed data structure. The event
/// classes come from the simulator; `queue_stall` is filled in by the
/// timing layer (interconnect queueing cycles spent on this object's
/// blocks) and is 0 straight out of the simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ObjCoherence {
    pub events: [u64; CoherenceEvent::COUNT],
    pub queue_stall: u64,
}

impl ObjCoherence {
    pub fn event_of(&self, e: CoherenceEvent) -> u64 {
        self.events[e as usize]
    }

    pub fn invalidations(&self) -> u64 {
        self.event_of(CoherenceEvent::Invalidation)
    }
}

/// Fold globally-indexed per-block count rows into per-object totals.
fn fold_counts<'a, const N: usize>(
    block_bytes: u32,
    rows: impl Iterator<Item = (usize, &'a [u32; N])>,
    mut name_of: impl FnMut(u32) -> Option<String>,
) -> BTreeMap<String, [u64; N]> {
    let mut out: BTreeMap<String, [u64; N]> = BTreeMap::new();
    for (b, counts) in rows {
        if counts.iter().all(|&c| c == 0) {
            continue;
        }
        let addr = (b as u32) * block_bytes;
        let name = name_of(addr).unwrap_or_else(|| "<unattributed>".to_string());
        let e = out.entry(name).or_insert([0; N]);
        for (acc, &c) in e.iter_mut().zip(counts) {
            *acc += c as u64;
        }
    }
    out
}

/// Aggregate the simulator's per-block miss counts into per-object counts
/// using an address→name attribution function. The simulator must be
/// unbanked (its block indices global); banked simulators attribute via
/// [`attribute_misses_banked`].
pub fn attribute_misses(
    sim: &MultiSim,
    name_of: impl FnMut(u32) -> Option<String>,
) -> BTreeMap<String, ObjMisses> {
    assert_eq!(sim.num_banks(), 1, "banked sims attribute via BankedSim");
    fold_counts(
        sim.block_bytes(),
        sim.per_block_misses().iter().enumerate(),
        name_of,
    )
    .into_iter()
    .map(|(k, misses)| (k, ObjMisses { misses }))
    .collect()
}

/// [`attribute_misses`] over a banked simulator: banks interleave back
/// to global block indices, so attribution is bit-identical to the
/// unbanked run's.
pub fn attribute_misses_banked(
    sim: &BankedSim,
    name_of: impl FnMut(u32) -> Option<String>,
) -> BTreeMap<String, ObjMisses> {
    let rows = sim.per_block_misses();
    fold_counts(sim.block_bytes(), rows.iter().enumerate(), name_of)
        .into_iter()
        .map(|(k, misses)| (k, ObjMisses { misses }))
        .collect()
}

/// Aggregate the simulator's per-block coherence-event counts into
/// per-object counts using an address→name attribution function.
/// `queue_stall` is left 0 — see [`ObjCoherence`].
pub fn attribute_coherence(
    sim: &MultiSim,
    name_of: impl FnMut(u32) -> Option<String>,
) -> BTreeMap<String, ObjCoherence> {
    assert_eq!(sim.num_banks(), 1, "banked sims attribute via BankedSim");
    fold_counts(
        sim.block_bytes(),
        sim.per_block_events().iter().enumerate(),
        name_of,
    )
    .into_iter()
    .map(|(k, events)| {
        (
            k,
            ObjCoherence {
                events,
                queue_stall: 0,
            },
        )
    })
    .collect()
}

/// [`attribute_coherence`] over a banked simulator.
pub fn attribute_coherence_banked(
    sim: &BankedSim,
    name_of: impl FnMut(u32) -> Option<String>,
) -> BTreeMap<String, ObjCoherence> {
    let rows = sim.per_block_events();
    fold_counts(sim.block_bytes(), rows.iter().enumerate(), name_of)
        .into_iter()
        .map(|(k, events)| {
            (
                k,
                ObjCoherence {
                    events,
                    queue_stall: 0,
                },
            )
        })
        .collect()
}

/// Render an attribution table sorted by false-sharing misses.
pub fn render_attribution(misses: &BTreeMap<String, ObjMisses>) -> String {
    let mut rows: Vec<(&String, &ObjMisses)> = misses.iter().collect();
    rows.sort_by_key(|(_, m)| std::cmp::Reverse(m.false_sharing()));
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "data structure", "total", "cold", "repl", "true", "false"
    )
    .unwrap();
    for (name, m) in rows {
        writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
            name,
            m.total(),
            m.misses[0],
            m.misses[1],
            m.misses[2],
            m.misses[3]
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    #[test]
    fn attribution_groups_blocks_by_name() {
        let mut s = MultiSim::new(CacheConfig::with_block(64, 2), 1 << 16);
        s.access(0, 0x100, false);
        s.access(1, 0x108, true);
        s.access(0, 0x100, false); // false sharing
        s.access(0, 0x4000, false); // cold in another "object"
        let table = attribute_misses(&s, |addr| {
            Some(if addr < 0x2000 { "hot" } else { "cold_obj" }.to_string())
        });
        assert_eq!(table["hot"].false_sharing(), 1);
        assert_eq!(table["cold_obj"].total(), 1);
        let text = render_attribution(&table);
        assert!(text.contains("hot"));
        assert!(text.contains("cold_obj"));
    }

    #[test]
    fn coherence_attribution_groups_events_by_name() {
        let mut s = MultiSim::new(CacheConfig::with_block(64, 2), 1 << 16);
        s.access(0, 0x100, false);
        s.access(1, 0x100, false);
        s.access(0, 0x100, true); // upgrade + invalidation on "hot"
        let table = attribute_coherence(&s, |addr| {
            Some(if addr < 0x2000 { "hot" } else { "cold_obj" }.to_string())
        });
        assert_eq!(table["hot"].event_of(CoherenceEvent::Upgrade), 1);
        assert_eq!(table["hot"].invalidations(), 1);
        assert!(!table.contains_key("cold_obj"));
    }
}
