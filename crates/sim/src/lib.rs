//! Write-invalidate multiprocessor cache simulator with false-sharing
//! miss classification.
//!
//! Models the paper's simulation substrate: per-processor set-associative
//! first-level caches kept coherent by a write-invalidate protocol, with
//! an infinite second level (every miss is eventually satisfied; only L1
//! behaviour is classified). Block sizes from 4 to 256 bytes are
//! supported.
//!
//! The line-state machine is pluggable behind the [`CoherenceProtocol`]
//! trait: the paper's substrate is [`Msi`] (the default), [`Mesi`] adds
//! an Exclusive state that makes write hits on private data silent (no
//! invalidating upgrade transaction), and [`Directory`] is a home-node
//! directory protocol (DASH-style: MSI cache states, but every miss and
//! upgrade is a transaction at the block's home directory, counted in
//! [`SimStats::dir_txns`] and routed with 2/3-hop costs by the
//! `fsr-machine` home-node interconnect). Miss *classification* is a
//! protocol hook with a shared default — all three protocols classify
//! every reference identically; only the coherence traffic they
//! generate and its cost differ (see `tests/coherence_props.rs` for the
//! property tests).
//!
//! The per-block sharer bitmask and owner the simulator keeps for
//! snooping bookkeeping double as the directory's presence bits and
//! Shared/Exclusive/Uncached state ([`MultiSim::dir_state`]); they are
//! maintained exactly (evictions and invalidations both clear presence
//! bits), which the invariant proptests assert against the simulated
//! sharer set.
//!
//! ## Miss classification
//!
//! Following the classification used by Eggers/Jeremiassen and Torrellas
//! et al., every miss is attributed to exactly one cause:
//!
//! - **cold** — the processor never cached the block before;
//! - **replacement** — the block was last lost to eviction
//!   (capacity/conflict);
//! - **true sharing** — the block was lost to an invalidation and the
//!   *word now referenced* was modified by another processor since;
//! - **false sharing** — the block was lost to an invalidation but the
//!   referenced word was *not* modified since: only coherence at block
//!   granularity forced the miss.
//!
//! The implementation keeps a global per-word last-write clock and a
//! per-processor record of when and why each block was lost; the
//! comparison is exact, not sampled.

use std::fmt;

pub mod report;

/// Which coherence protocol a simulator runs. A plain selector enum so
/// configurations stay `Copy + Eq + Hash` (the batched driver groups
/// jobs by config); resolved to a `&'static dyn CoherenceProtocol` at
/// simulator construction.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ProtocolKind {
    #[default]
    /// Write-invalidate MSI — the paper's simulated substrate.
    Msi,
    /// MESI: an Exclusive state suppresses the upgrade transaction on
    /// write hits to private (unshared) data.
    Mesi,
    /// Home-node directory protocol: MSI cache states, with every miss
    /// and upgrade mediated by the block's home directory (counted in
    /// [`SimStats::dir_txns`]). Pair with the `home-dir` interconnect
    /// for 2/3-hop routing and per-home occupancy.
    Directory,
}

impl ProtocolKind {
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::Msi,
        ProtocolKind::Mesi,
        ProtocolKind::Directory,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Msi => "msi",
            ProtocolKind::Mesi => "mesi",
            ProtocolKind::Directory => "directory",
        }
    }

    /// The trait instance this selector names.
    pub fn protocol(self) -> &'static dyn CoherenceProtocol {
        match self {
            ProtocolKind::Msi => &Msi,
            ProtocolKind::Mesi => &Mesi,
            ProtocolKind::Directory => &Directory,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    pub nproc: u32,
    /// Coherence block size in bytes (power of two, 4..=256 typical).
    pub block_bytes: u32,
    /// Per-processor first-level cache capacity.
    pub cache_bytes: u32,
    /// Set associativity.
    pub assoc: u32,
    /// Line-state machine the caches run.
    pub protocol: ProtocolKind,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            nproc: 12,
            block_bytes: 128,
            cache_bytes: 32 * 1024,
            assoc: 4,
            protocol: ProtocolKind::Msi,
        }
    }
}

impl CacheConfig {
    pub fn with_block(block_bytes: u32, nproc: u32) -> CacheConfig {
        CacheConfig {
            nproc,
            block_bytes,
            ..Default::default()
        }
    }

    pub fn num_sets(&self) -> u32 {
        (self.cache_bytes / self.block_bytes / self.assoc).max(1)
    }
}

/// Miss cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MissKind {
    Cold = 0,
    Replacement = 1,
    TrueSharing = 2,
    FalseSharing = 3,
}

impl MissKind {
    /// Number of miss classes — the one authority for sizing per-kind
    /// count arrays.
    pub const COUNT: usize = 4;

    pub const ALL: [MissKind; MissKind::COUNT] = [
        MissKind::Cold,
        MissKind::Replacement,
        MissKind::TrueSharing,
        MissKind::FalseSharing,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MissKind::Cold => "cold",
            MissKind::Replacement => "replacement",
            MissKind::TrueSharing => "true-sharing",
            MissKind::FalseSharing => "false-sharing",
        }
    }
}

/// Coherence event class, for per-object observability. These count
/// protocol *transactions and their consequences*, not misses: one
/// upgrade may cause several invalidations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CoherenceEvent {
    /// A remote copy was invalidated (by an upgrade or a write miss).
    Invalidation = 0,
    /// Write hit on a Shared line: an invalidating upgrade transaction.
    Upgrade = 1,
    /// A dirty or exclusive remote copy was downgraded to service a read.
    Intervention = 2,
    /// Write hit on an Exclusive line: silent upgrade, no transaction
    /// (MESI only — the traffic MSI would have paid).
    ExclusiveHit = 3,
}

impl CoherenceEvent {
    pub const COUNT: usize = 4;

    pub const ALL: [CoherenceEvent; CoherenceEvent::COUNT] = [
        CoherenceEvent::Invalidation,
        CoherenceEvent::Upgrade,
        CoherenceEvent::Intervention,
        CoherenceEvent::ExclusiveHit,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CoherenceEvent::Invalidation => "invalidations",
            CoherenceEvent::Upgrade => "upgrades",
            CoherenceEvent::Intervention => "interventions",
            CoherenceEvent::ExclusiveHit => "exclusive_hits",
        }
    }
}

/// Result of one access, consumed by the timing model. `Default` is an
/// inert placeholder (a hit with no coherence side effects) used to
/// pre-size chunk outcome buffers before the simulator fills them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcome {
    pub miss: Option<MissKind>,
    /// Block index of the referenced address — home-node interconnects
    /// derive the block's home from it (address-interleaved).
    pub block: u32,
    /// For misses: the processor that held the block modified or
    /// exclusive (the remote supplier), when any. `None` = served by
    /// memory/L2.
    pub supplier: Option<u8>,
    /// Write hit on a Shared line: an invalidating upgrade transaction.
    pub upgrade: bool,
    /// Number of remote caches this access invalidated (coherence
    /// traffic the interconnect must carry).
    pub invalidations: u8,
}

impl Outcome {
    pub fn hit(&self) -> bool {
        self.miss.is_none() && !self.upgrade
    }
}

/// Aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimStats {
    pub refs: u64,
    pub reads: u64,
    pub writes: u64,
    pub misses: [u64; MissKind::COUNT],
    pub upgrades: u64,
    pub invalidations: u64,
    /// Dirty/exclusive remote copies downgraded to service reads.
    pub interventions: u64,
    /// Silent Exclusive→Modified write hits (MESI; always 0 under MSI).
    pub exclusive_hits: u64,
    /// Home-directory transactions: every miss and every upgrade visits
    /// the block's home node under a directory protocol
    /// (`dir_txns == total_misses() + upgrades` there; always 0 under
    /// the snooping protocols).
    pub dir_txns: u64,
}

impl SimStats {
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    pub fn miss_of(&self, k: MissKind) -> u64 {
        self.misses[k as usize]
    }

    pub fn false_sharing(&self) -> u64 {
        self.miss_of(MissKind::FalseSharing)
    }

    /// Misses per reference.
    pub fn miss_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.total_misses() as f64 / self.refs as f64
        }
    }

    /// Non-false-sharing misses ("other" in Figure 3).
    pub fn other_misses(&self) -> u64 {
        self.total_misses() - self.false_sharing()
    }

    pub fn event_of(&self, e: CoherenceEvent) -> u64 {
        match e {
            CoherenceEvent::Invalidation => self.invalidations,
            CoherenceEvent::Upgrade => self.upgrades,
            CoherenceEvent::Intervention => self.interventions,
            CoherenceEvent::ExclusiveHit => self.exclusive_hits,
        }
    }

    /// Accumulate another simulator's counters into this one. Every
    /// field is additive, so merging the per-bank statistics of a
    /// [`BankedSim`] reproduces the unbanked totals exactly.
    pub fn merge(&mut self, other: &SimStats) {
        self.refs += other.refs;
        self.reads += other.reads;
        self.writes += other.writes;
        for (m, o) in self.misses.iter_mut().zip(&other.misses) {
            *m += o;
        }
        self.upgrades += other.upgrades;
        self.invalidations += other.invalidations;
        self.interventions += other.interventions;
        self.exclusive_hits += other.exclusive_hits;
        self.dir_txns += other.dir_txns;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs {} misses {} (cold {} repl {} true {} false {}) upgrades {}",
            self.refs,
            self.total_misses(),
            self.misses[0],
            self.misses[1],
            self.misses[2],
            self.misses[3],
            self.upgrades
        )
    }
}

/// Cache-line state. The union of the states any supported protocol
/// uses; MSI never installs `Exclusive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    Invalid,
    Shared,
    /// Clean and private: the only cached copy (MESI).
    Exclusive,
    Modified,
}

/// Why a processor last lost a block (input to miss classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LostReason {
    None,
    Eviction,
    Invalidation,
}

/// The line-state machine of a write-invalidate protocol: which state a
/// read miss installs, and how a miss is classified from the loss
/// record. The block-granularity bookkeeping (directory, word clocks,
/// LRU, loss records) is shared by all protocols and lives in
/// [`MultiSim`].
pub trait CoherenceProtocol: Sync {
    fn kind(&self) -> ProtocolKind;

    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// State installed by a read miss, given whether any other cache
    /// holds a copy of the block.
    fn read_fill_state(&self, other_copies: bool) -> LineState;

    /// Whether a home-node directory mediates this protocol's coherence
    /// transactions. When true, every miss and every upgrade counts one
    /// directory transaction at the block's home
    /// ([`SimStats::dir_txns`]); the snooping protocols leave it false.
    fn uses_home_directory(&self) -> bool {
        false
    }

    /// Classify a miss from the loss record and the referenced word's
    /// last-write clock. The default is the paper's exact rule; both MSI
    /// and MESI use it, which is what makes their classifications
    /// provably identical.
    fn classify_miss(&self, reason: LostReason, lost_time: u64, word_write_time: u64) -> MissKind {
        match reason {
            LostReason::None => MissKind::Cold,
            LostReason::Eviction => MissKind::Replacement,
            LostReason::Invalidation => {
                // `>=`: an invalidation at time t is always caused by a
                // write at that same timestamp, and timestamps are unique
                // per access — equality means "the invalidating write hit
                // this very word".
                if word_write_time >= lost_time {
                    MissKind::TrueSharing
                } else {
                    MissKind::FalseSharing
                }
            }
        }
    }
}

/// The paper's protocol: every read fill installs Shared, so the first
/// write to any block pays an upgrade transaction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Msi;

impl CoherenceProtocol for Msi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Msi
    }

    fn read_fill_state(&self, _other_copies: bool) -> LineState {
        LineState::Shared
    }
}

/// MESI: a read miss with no other cached copy installs Exclusive, and
/// the subsequent write hit upgrades silently — private data generates
/// no invalidation traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mesi;

impl CoherenceProtocol for Mesi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mesi
    }

    fn read_fill_state(&self, other_copies: bool) -> LineState {
        if other_copies {
            LineState::Shared
        } else {
            LineState::Exclusive
        }
    }
}

/// Home-node directory protocol (DASH-style Dir-N). Cache-side states
/// are MSI — the home grants read-only copies, so even a sole reader
/// fills Shared and the first write pays an explicit upgrade at the
/// directory (keeping presence bits authoritative; the DASH
/// exclusive-on-read optimization is deliberately omitted so the
/// directory ablation isolates *cost* effects from state-machine
/// effects). What differs from [`Msi`] is that every miss and upgrade
/// is a transaction at the block's home node: the simulator counts them
/// ([`SimStats::dir_txns`]) and the `home-dir` interconnect charges
/// 2-hop (home supplies) vs 3-hop (home forwards to a dirty owner)
/// latency plus per-home channel occupancy, including one invalidation
/// message per presence bit on writes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Directory;

impl CoherenceProtocol for Directory {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Directory
    }

    fn read_fill_state(&self, _other_copies: bool) -> LineState {
        LineState::Shared
    }

    fn uses_home_directory(&self) -> bool {
        true
    }
}

/// Directory (home-node) state of one block, derived from the presence
/// bitmask and owner the simulator maintains exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the block.
    Uncached,
    /// One or more clean copies; home memory is up to date.
    Shared,
    /// A single cache holds the block modified (or MESI-exclusive); the
    /// directory forwards requests to it.
    Exclusive,
}

/// How a simulator replays its reference stream. All three engines
/// drive the *same* struct-of-arrays state through the *same*
/// transition body ([`MultiSim::step`]), so results are bit-identical
/// by construction; they differ only in how much per-reference work
/// they amortize.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum SimEngine {
    /// One reference at a time through the full transition match — the
    /// pre-vectorization baseline path.
    Scalar,
    /// One reference at a time, but probe-first over the SoA planes:
    /// the dominant hit cases (read hits, Modified/Exclusive write
    /// hits) are applied without entering the transition match.
    Soa,
    /// Buffer references into fixed-width chunks ([`CHUNK_LANES`]),
    /// decode all lanes with `fsr-simdlite` array kernels, resolve
    /// block/set conflicts, apply independent hit lanes in a single
    /// probe pass with chunk-aggregated counters, and replay the rest
    /// through [`MultiSim::step`] in lane order. The default engine.
    #[default]
    SoaChunked,
}

impl SimEngine {
    pub const ALL: [SimEngine; 3] = [SimEngine::Scalar, SimEngine::Soa, SimEngine::SoaChunked];

    pub fn name(self) -> &'static str {
        match self {
            SimEngine::Scalar => "scalar",
            SimEngine::Soa => "soa",
            SimEngine::SoaChunked => "soa-chunked",
        }
    }

    /// Parse a CLI/env spelling of an engine name.
    pub fn parse(s: &str) -> Option<SimEngine> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimEngine::Scalar),
            "soa" => Some(SimEngine::Soa),
            "soa-chunked" | "soa_chunked" | "chunked" => Some(SimEngine::SoaChunked),
            _ => None,
        }
    }

    /// Whether this engine replays through the chunked batch path (and
    /// therefore wants chunk-friendly bank counts — see
    /// [`BankedSim::negotiate_banks`]).
    pub fn chunked(self) -> bool {
        matches!(self, SimEngine::SoaChunked)
    }
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Width of one replay chunk: one lane per bit of a `u64` mask, so
/// write flags, independence masks, and sharer ballots all fit machine
/// words.
pub const CHUNK_LANES: usize = 64;

/// Engine-aware bank negotiation failed: no bank count > 1 satisfies
/// both the banking invariant (`nbanks` divides `num_sets`) and the
/// engine's chunk-friendliness constraint within the requested cap.
/// Returned by [`BankedSim::negotiate_banks`] so callers that *forced*
/// sharding fail loudly instead of silently degrading to one bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankPlanError {
    pub engine: SimEngine,
    pub num_sets: u32,
    pub cap: usize,
}

impl fmt::Display for BankPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no usable bank split: engine `{}` needs a bank count that divides num_sets={}{} \
             and no such count in 2..={} exists (only 1 bank fits; widen the cap, change the \
             cache geometry, or accept unbanked replay)",
            self.engine,
            self.num_sets,
            if self.engine.chunked() {
                " and is a power of two (chunk lanes route to banks by mask)"
            } else {
                ""
            },
            self.cap,
        )
    }
}

impl std::error::Error for BankPlanError {}

const NEVER: u64 = 0;

/// One processor's cache (or, for a banked simulator, the slice of it
/// whose sets belong to the bank — see [`MultiSim::new_bank`]).
///
/// Line state is struct-of-arrays: three parallel per-way planes
/// (`tag`, `state`, `lru`), indexed `set * assoc + way`. Probing a set
/// then touches `assoc` contiguous lanes of each plane the probe
/// actually needs — a tag match reads only `tag`/`state`, never the
/// 8-byte LRU stamps — which is what makes the chunked replay's probe
/// pass cache-friendly. A lane whose `state` is [`LineState::Invalid`]
/// is empty; its `tag` is left in place on invalidation (see
/// [`Cache::lose`]), which the chunked engine's conflict argument
/// relies on: a stale tag never matches a *different* block, so an
/// invalidation in one lane cannot change another block's probe.
struct Cache {
    /// Per way: block index cached in the way (`u32::MAX` = never used).
    tag: Vec<u32>,
    /// Per way: MSI/MESI line state.
    state: Vec<LineState>,
    /// Per way: bank time of last touch, for LRU victim selection.
    lru: Vec<u64>,
    /// Sets of the *full* cache; the bank holds `num_sets / nbanks`.
    num_sets: u32,
    assoc: u32,
    nbanks: u32,
    /// Per owned block (bank-local slot): when and why this processor
    /// last lost it.
    lost_time: Vec<u64>,
    lost_reason: Vec<LostReason>,
}

impl Cache {
    fn new(cfg: &CacheConfig, nblocks_local: u32, nbanks: u32) -> Cache {
        let ways = (cfg.num_sets() / nbanks * cfg.assoc) as usize;
        Cache {
            tag: vec![u32::MAX; ways],
            state: vec![LineState::Invalid; ways],
            lru: vec![0; ways],
            num_sets: cfg.num_sets(),
            assoc: cfg.assoc,
            nbanks,
            lost_time: vec![NEVER; nblocks_local as usize],
            lost_reason: vec![LostReason::None; nblocks_local as usize],
        }
    }

    fn set_range(&self, block: u32) -> std::ops::Range<usize> {
        // Blocks owned by a bank satisfy `block % nbanks == bank`, and
        // `nbanks` divides `num_sets`, so `block % num_sets` is congruent
        // to the bank index mod `nbanks`; dividing by `nbanks` maps the
        // bank's sets bijectively onto its local storage.
        let set = ((block % self.num_sets) / self.nbanks) as usize;
        set * self.assoc as usize..(set + 1) * self.assoc as usize
    }

    fn find(&self, block: u32) -> Option<usize> {
        self.set_range(block)
            .find(|&i| self.state[i] != LineState::Invalid && self.tag[i] == block)
    }

    /// Choose a victim way in the block's set (an invalid way if any,
    /// else LRU).
    fn victim(&self, block: u32) -> usize {
        let range = self.set_range(block);
        let mut best = range.start;
        let mut best_lru = u64::MAX;
        for i in range {
            if self.state[i] == LineState::Invalid {
                return i;
            }
            if self.lru[i] < best_lru {
                best_lru = self.lru[i];
                best = i;
            }
        }
        best
    }

    fn lose(&mut self, way: usize, time: u64, reason: LostReason) {
        let b = (self.tag[way] / self.nbanks) as usize;
        self.lost_time[b] = time;
        self.lost_reason[b] = reason;
        self.state[way] = LineState::Invalid;
    }
}

/// The multiprocessor simulator — either the whole address space
/// (`nbanks == 1`, the default) or one address bank of it (see
/// [`MultiSim::new_bank`] and [`BankedSim`]).
pub struct MultiSim {
    cfg: CacheConfig,
    protocol: &'static dyn CoherenceProtocol,
    caches: Vec<Cache>,
    /// Directory: per owned block (bank-local slot), bitmask of sharers
    /// and the modified or exclusive owner.
    sharers: Vec<u64>,
    owner: Vec<u8>,
    /// Per word of owned blocks: bank time of last write.
    word_write_time: Vec<u64>,
    /// Per owned block per kind: miss counts (for per-object attribution).
    per_block_misses: Vec<[u32; MissKind::COUNT]>,
    /// Per owned block per event class: coherence-event counts.
    per_block_events: Vec<[u32; CoherenceEvent::COUNT]>,
    /// Per owned block: total references (hits and misses alike) —
    /// protocol choice cannot change these, which the cross-backend
    /// equivalence tests assert.
    per_block_refs: Vec<u64>,
    /// Cached `protocol.uses_home_directory()`: count home transactions.
    track_dir: bool,
    /// Bank-local clock: advances once per access *routed to this bank*.
    /// Every comparison the simulator makes (word clock vs. loss record,
    /// LRU within a set) is between accesses of the same bank, so the
    /// bank clock is order-isomorphic to the global clock and outcomes
    /// are bit-identical to an unbanked run.
    time: u64,
    stats: SimStats,
    block_shift: u32,
    /// Which residue class of block indices this simulator owns.
    bank: u32,
    nbanks: u32,
    /// Words per coherence block (`block_bytes / 4`).
    wpb: u32,
    /// Blocks across the whole address space (all banks together).
    nblocks_global: u32,
}

const NO_OWNER: u8 = u8::MAX;

impl MultiSim {
    /// `addr_space_bytes` bounds the addresses that will be accessed.
    pub fn new(cfg: CacheConfig, addr_space_bytes: u32) -> MultiSim {
        MultiSim::new_bank(cfg, addr_space_bytes, 0, 1)
    }

    /// Build bank `bank` of an `nbanks`-way address-banked simulator.
    ///
    /// The bank owns every block with `block % nbanks == bank` and must
    /// receive exactly the accesses to those blocks, in program order.
    /// `nbanks` must divide `cfg.num_sets()`: a cache set then maps
    /// entirely into one bank, so eviction coupling (LRU, victim
    /// selection) never crosses banks, and the per-bank clock preserves
    /// every order/equality comparison the simulator makes. Driving all
    /// banks of a [`BankedSim`] therefore yields outcomes and counters
    /// bit-identical to one [`MultiSim::new`] over the same stream.
    pub fn new_bank(cfg: CacheConfig, addr_space_bytes: u32, bank: u32, nbanks: u32) -> MultiSim {
        assert!(cfg.block_bytes.is_power_of_two() && cfg.block_bytes >= 4);
        assert!(cfg.nproc >= 1 && cfg.nproc <= 64);
        assert!(nbanks >= 1 && bank < nbanks);
        assert!(
            cfg.num_sets().is_multiple_of(nbanks),
            "nbanks {nbanks} must divide num_sets {}",
            cfg.num_sets()
        );
        let nblocks_global = addr_space_bytes.div_ceil(cfg.block_bytes) + 1;
        let nblocks = nblocks_global.div_ceil(nbanks);
        let wpb = cfg.block_bytes / 4;
        let protocol = cfg.protocol.protocol();
        MultiSim {
            protocol,
            caches: (0..cfg.nproc)
                .map(|_| Cache::new(&cfg, nblocks, nbanks))
                .collect(),
            sharers: vec![0; nblocks as usize],
            owner: vec![NO_OWNER; nblocks as usize],
            word_write_time: vec![NEVER; (nblocks * wpb) as usize],
            per_block_misses: vec![[0; MissKind::COUNT]; nblocks as usize],
            per_block_events: vec![[0; CoherenceEvent::COUNT]; nblocks as usize],
            per_block_refs: vec![0; nblocks as usize],
            track_dir: protocol.uses_home_directory(),
            time: 1,
            stats: SimStats::default(),
            block_shift: cfg.block_bytes.trailing_zeros(),
            bank,
            nbanks,
            wpb,
            nblocks_global,
            cfg,
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Which residue class of block indices this simulator owns.
    pub fn bank_index(&self) -> u32 {
        self.bank
    }

    pub fn num_banks(&self) -> u32 {
        self.nbanks
    }

    /// Whether an access to `block` must be routed to this bank.
    pub fn owns_block(&self, block: u32) -> bool {
        block % self.nbanks == self.bank
    }

    /// Bank-local storage slot of an owned block.
    fn slot(&self, block: u32) -> usize {
        debug_assert!(self.owns_block(block));
        (block / self.nbanks) as usize
    }

    pub fn protocol(&self) -> &'static dyn CoherenceProtocol {
        self.protocol
    }

    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-block miss counts, indexed `[block][MissKind]` — callers map
    /// block indices to data structures via the layout. For a bank
    /// (`nbanks > 1`) the index is the bank-local slot `block / nbanks`;
    /// [`BankedSim::per_block_misses`] interleaves banks back to global
    /// block indices.
    pub fn per_block_misses(&self) -> &[[u32; MissKind::COUNT]] {
        &self.per_block_misses
    }

    /// Per-block coherence-event counts, indexed `[block][CoherenceEvent]`
    /// (bank-local slots when `nbanks > 1`, like
    /// [`Self::per_block_misses`]).
    pub fn per_block_events(&self) -> &[[u32; CoherenceEvent::COUNT]] {
        &self.per_block_events
    }

    /// Per-block reference counts (hits and misses alike), indexed by
    /// block (bank-local slots when `nbanks > 1`). Purely a function of
    /// the trace and the block size — the cross-backend equivalence
    /// tests assert these are bit-identical across protocols.
    pub fn per_block_refs(&self) -> &[u64] {
        &self.per_block_refs
    }

    /// Directory presence bitmask for `block` (a global block index this
    /// bank owns): bit `p` set iff processor `p` holds a valid copy.
    /// Maintained exactly (evictions and invalidations both clear bits),
    /// so under the [`Directory`] protocol this *is* the home node's
    /// presence vector.
    pub fn sharers_of(&self, block: u32) -> u64 {
        self.sharers[self.slot(block)]
    }

    /// The processor holding `block` Modified or Exclusive, if any.
    pub fn owner_of(&self, block: u32) -> Option<u8> {
        let o = self.owner[self.slot(block)];
        if o == NO_OWNER {
            None
        } else {
            Some(o)
        }
    }

    /// Cache-side state of `block` in processor `pid`'s cache
    /// ([`LineState::Invalid`] when not resident).
    pub fn line_state(&self, pid: u8, block: u32) -> LineState {
        match self.caches[pid as usize].find(block) {
            Some(way) => self.caches[pid as usize].state[way],
            None => LineState::Invalid,
        }
    }

    /// Home-directory state of `block`, derived from the owner and the
    /// presence bitmask (meaningful under every protocol; authoritative
    /// under [`Directory`]).
    pub fn dir_state(&self, block: u32) -> DirState {
        let s = self.slot(block);
        if self.owner[s] != NO_OWNER {
            DirState::Exclusive
        } else if self.sharers[s] != 0 {
            DirState::Shared
        } else {
            DirState::Uncached
        }
    }

    /// Number of blocks in the simulated address space (the valid range
    /// for [`Self::dir_state`] and friends spans all banks; this bank
    /// stores state only for its own residue class).
    pub fn num_blocks(&self) -> u32 {
        self.nblocks_global
    }

    pub fn block_bytes(&self) -> u32 {
        self.cfg.block_bytes
    }

    /// Simulate one reference (the address must fall in this bank when
    /// `nbanks > 1`). This is the [`SimEngine::Scalar`] replay path:
    /// advance the clock, then take the full transition.
    pub fn access(&mut self, pid: u8, addr: u32, write: bool) -> Outcome {
        self.time += 1;
        self.step(pid, addr, write)
    }

    /// The transition body every engine funnels through: simulate one
    /// reference at the already-advanced clock `self.time`. The scalar
    /// engine calls it per reference; the SoA engine only for
    /// references its probe-first fast path cannot apply; the chunked
    /// engine for each dependent ("slow") lane, with the clock pinned
    /// to the lane's serial timestamp. Keeping one body is what makes
    /// the engines bit-identical — and is the single copy that replaced
    /// the formerly duplicated `MultiSim::access`/`BankedSim::access`
    /// match trees.
    fn step(&mut self, pid: u8, addr: u32, write: bool) -> Outcome {
        let p = pid as usize;
        debug_assert!(p < self.caches.len());
        self.stats.refs += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let block = addr >> self.block_shift;
        let bs = self.slot(block);
        let word = bs * self.wpb as usize + ((addr / 4) % self.wpb) as usize;
        self.per_block_refs[bs] += 1;

        let outcome = match self.caches[p].find(block) {
            Some(way) => {
                self.caches[p].lru[way] = self.time;
                match (self.caches[p].state[way], write) {
                    (LineState::Modified, _)
                    | (LineState::Shared, false)
                    | (LineState::Exclusive, false) => Outcome {
                        miss: None,
                        block,
                        supplier: None,
                        upgrade: false,
                        invalidations: 0,
                    },
                    (LineState::Exclusive, true) => {
                        // Silent upgrade: the only copy, no transaction.
                        self.caches[p].state[way] = LineState::Modified;
                        self.stats.exclusive_hits += 1;
                        self.per_block_events[bs][CoherenceEvent::ExclusiveHit as usize] += 1;
                        Outcome {
                            miss: None,
                            block,
                            supplier: None,
                            upgrade: false,
                            invalidations: 0,
                        }
                    }
                    (LineState::Shared, true) => {
                        // Upgrade: invalidate all other sharers.
                        let inv = self.invalidate_others(block, pid);
                        self.caches[p].state[way] = LineState::Modified;
                        self.owner[bs] = pid;
                        self.stats.upgrades += 1;
                        self.per_block_events[bs][CoherenceEvent::Upgrade as usize] += 1;
                        if self.track_dir {
                            self.stats.dir_txns += 1;
                        }
                        Outcome {
                            miss: None,
                            block,
                            supplier: None,
                            upgrade: true,
                            invalidations: inv,
                        }
                    }
                    (LineState::Invalid, _) => unreachable!("find returns valid lines"),
                }
            }
            None => {
                // Miss: classify, then fill.
                let kind = self.classify(p, bs, word);
                self.stats.misses[kind as usize] += 1;
                self.per_block_misses[bs][kind as usize] += 1;
                if self.track_dir {
                    self.stats.dir_txns += 1;
                }
                let supplier = {
                    let o = self.owner[bs];
                    if o != NO_OWNER && o != pid {
                        Some(o)
                    } else {
                        None
                    }
                };
                let mut invalidations = 0;
                if write {
                    invalidations = self.invalidate_others(block, pid);
                    self.install(p, block, LineState::Modified);
                    self.owner[bs] = pid;
                    self.sharers[bs] = 1 << pid;
                } else {
                    // Downgrade a modified or exclusive owner to Shared
                    // (an intervention: its copy services the read).
                    let o = self.owner[bs];
                    if o != NO_OWNER && o != pid {
                        let oc = &mut self.caches[o as usize];
                        if let Some(oway) = oc.find(block) {
                            oc.state[oway] = LineState::Shared;
                            self.stats.interventions += 1;
                            self.per_block_events[bs][CoherenceEvent::Intervention as usize] += 1;
                        }
                    }
                    // Sharer bits are exact (evictions and invalidations
                    // both clear them), and the missing processor's own
                    // bit is never set here.
                    let other_copies = self.sharers[bs] != 0;
                    let fill = self.protocol.read_fill_state(other_copies);
                    self.owner[bs] = if fill == LineState::Exclusive {
                        pid
                    } else {
                        NO_OWNER
                    };
                    self.install(p, block, fill);
                    self.sharers[bs] |= 1 << pid;
                }
                Outcome {
                    miss: Some(kind),
                    block,
                    supplier,
                    upgrade: false,
                    invalidations,
                }
            }
        };
        if write {
            self.word_write_time[word] = self.time;
        }
        outcome
    }

    fn classify(&self, p: usize, bs: usize, word: usize) -> MissKind {
        let c = &self.caches[p];
        self.protocol.classify_miss(
            c.lost_reason[bs],
            c.lost_time[bs],
            self.word_write_time[word],
        )
    }

    fn invalidate_others(&mut self, block: u32, keeper: u8) -> u8 {
        let bs = self.slot(block);
        let mask = self.sharers[bs] & !(1u64 << keeper);
        if mask == 0 {
            self.sharers[bs] &= 1u64 << keeper;
            return 0;
        }
        let mut count = 0u8;
        for q in 0..self.cfg.nproc {
            if mask & (1 << q) == 0 {
                continue;
            }
            let qc = &mut self.caches[q as usize];
            if let Some(way) = qc.find(block) {
                qc.lose(way, self.time, LostReason::Invalidation);
                self.stats.invalidations += 1;
                self.per_block_events[bs][CoherenceEvent::Invalidation as usize] += 1;
                count += 1;
            }
        }
        self.sharers[bs] &= 1u64 << keeper;
        if self.owner[bs] != keeper {
            self.owner[bs] = NO_OWNER;
        }
        count
    }

    fn install(&mut self, p: usize, block: u32, state: LineState) {
        let way = self.caches[p].victim(block);
        if self.caches[p].state[way] != LineState::Invalid {
            let obs = (self.caches[p].tag[way] / self.nbanks) as usize;
            self.caches[p].lose(way, self.time, LostReason::Eviction);
            self.sharers[obs] &= !(1u64 << p);
            if self.owner[obs] == p as u8 {
                self.owner[obs] = NO_OWNER;
            }
        }
        let c = &mut self.caches[p];
        c.tag[way] = block;
        c.state[way] = state;
        c.lru[way] = self.time;
    }

    /// Simulate one reference on the [`SimEngine::Soa`] path: probe the
    /// SoA planes first and apply the dominant hit cases — read hits in
    /// any valid state, write hits on Modified, and the silent
    /// Exclusive→Modified upgrade — without entering the transition
    /// match. Everything else (misses, Shared-write upgrades) falls
    /// through to [`Self::step`]. Bit-identical to [`Self::access`].
    pub fn access_soa(&mut self, pid: u8, addr: u32, write: bool) -> Outcome {
        self.time += 1;
        let p = pid as usize;
        let block = addr >> self.block_shift;
        if let Some(way) = self.caches[p].find(block) {
            let st = self.caches[p].state[way];
            if !write || st == LineState::Modified || st == LineState::Exclusive {
                let bs = self.slot(block);
                self.stats.refs += 1;
                self.per_block_refs[bs] += 1;
                self.caches[p].lru[way] = self.time;
                if write {
                    self.stats.writes += 1;
                    if st == LineState::Exclusive {
                        // Silent upgrade: the only copy, no transaction.
                        self.caches[p].state[way] = LineState::Modified;
                        self.stats.exclusive_hits += 1;
                        self.per_block_events[bs][CoherenceEvent::ExclusiveHit as usize] += 1;
                    }
                    let word = bs * self.wpb as usize + ((addr / 4) % self.wpb) as usize;
                    self.word_write_time[word] = self.time;
                } else {
                    self.stats.reads += 1;
                }
                return Outcome {
                    miss: None,
                    block,
                    supplier: None,
                    upgrade: false,
                    invalidations: 0,
                };
            }
        }
        self.step(pid, addr, write)
    }

    /// Simulate one reference on the engine's per-reference path —
    /// the routing shim the chunked sinks use for leftovers and that
    /// [`BankedSim::access_with`] forwards to.
    pub fn access_with(&mut self, engine: SimEngine, pid: u8, addr: u32, write: bool) -> Outcome {
        match engine {
            SimEngine::Scalar => self.access(pid, addr, write),
            // The chunked engine's per-reference fallback *is* the SoA
            // path (chunking only changes how references are batched).
            SimEngine::Soa | SimEngine::SoaChunked => self.access_soa(pid, addr, write),
        }
    }

    /// Replay one chunk of up to [`CHUNK_LANES`] references
    /// lane-parallel ([`SimEngine::SoaChunked`]). Lane `i` carries
    /// `(pids[i], addrs[i], write_mask bit i)`; `outs[i]` receives its
    /// outcome. Equivalent to calling [`Self::access`] per lane in lane
    /// order, bit-for-bit (asserted by the equivalence proptests).
    ///
    /// Strategy: decode all lanes with `fsr-simdlite` array kernels
    /// (block index, bank-local set, word offset — strength-reduced to
    /// shifts and masks, since geometry is power-of-two on the
    /// negotiated chunked path), then run one fused in-order pass with
    /// a set-granular taint rule: a lane is applied fast iff it probes
    /// as a read hit, Modified-write hit, or Exclusive-write hit AND no
    /// earlier *slow* lane of this chunk touched its cache set. Slow
    /// lanes — misses, Shared-write upgrades, and tainted lanes — are
    /// deferred and replayed through [`Self::step`] in lane order with
    /// the clock pinned to their serial timestamp `base + lane + 1`.
    /// Hits never taint, so the common trace shape — a run of
    /// consecutive references to one hot block — stays on the fast
    /// path. The taint state is a single `u64` bitmap indexed by
    /// `set & 63` held in a register: exact for the default geometry
    /// (64 sets per bank or fewer), conservatively aliased — never
    /// unsound — beyond it.
    ///
    /// Why set tainting is sufficient: every mutation a slow lane can
    /// make lands in its own block's set — tag-matched ways of that
    /// block in *any* cache (invalidations, downgrades; [`Cache::lose`]
    /// never clears tags), victim selection and install in its own
    /// `(pid, set)` (the victim, by construction, maps to the same
    /// set), and that block's word clock, sharers, and per-block
    /// counters. A fast lane reads and writes only its own way's
    /// `lru`/`state` plane lanes (state only the silent
    /// Exclusive→Modified flip, which no probe distinguishes from
    /// Modified), its own block's word clock, and commutative counters
    /// — all within its own set. Demoting every later lane whose set an
    /// earlier slow lane touched therefore leaves no read or write
    /// overlap between fast applications and deferred slow transitions.
    pub fn access_chunk(
        &mut self,
        pids: &[u8],
        addrs: &[u32],
        write_mask: u64,
        outs: &mut [Outcome],
    ) {
        let n = addrs.len();
        debug_assert!(n <= CHUNK_LANES);
        debug_assert_eq!(pids.len(), n);
        debug_assert_eq!(outs.len(), n);
        if n == 0 {
            return;
        }
        let num_sets = self.caches[0].num_sets;
        // The decode below strength-reduces to shifts and masks, which
        // needs power-of-two geometry — guaranteed on the negotiated
        // chunked path ([`BankedSim::negotiate_banks`]); any other
        // caller replays per reference, bit-identically.
        if !num_sets.is_power_of_two() || !self.nbanks.is_power_of_two() {
            for i in 0..n {
                outs[i] = self.access_soa(pids[i], addrs[i], write_mask >> i & 1 == 1);
            }
            return;
        }
        let base = self.time;
        let bank_shift = self.nbanks.trailing_zeros();
        let wpb_shift = self.wpb.trailing_zeros();
        let assoc = self.caches[0].assoc as usize;

        // Lane decode, whole chunk at once: block index, bank-local
        // set, word offset within the block.
        let mut block = [0u32; CHUNK_LANES];
        let mut lset = [0u32; CHUNK_LANES];
        let mut woff = [0u32; CHUNK_LANES];
        fsr_simdlite::shr(&mut block[..n], addrs, self.block_shift);
        {
            let mut setq = [0u32; CHUNK_LANES];
            fsr_simdlite::and(&mut setq[..n], &block[..n], num_sets - 1);
            fsr_simdlite::shr(&mut lset[..n], &setq[..n], bank_shift);
        }
        {
            let mut w4 = [0u32; CHUNK_LANES];
            fsr_simdlite::shr(&mut w4[..n], addrs, 2);
            fsr_simdlite::and(&mut woff[..n], &w4[..n], self.wpb - 1);
        }

        // Fused in-order pass: probe, apply hits fast with chunk-local
        // counter accumulation, taint and defer everything else. The
        // taint bitmap lives in a register; within one bank every block
        // with the same bank-local set has the same set, so `lset` is
        // the exact key (aliased through `& 63` only for geometries
        // with more than 64 sets per bank).
        let mut taint: u64 = 0;
        let mut slow = [0u8; CHUNK_LANES];
        let mut nslow = 0usize;
        let mut fast_reads = 0u64;
        let mut fast_writes = 0u64;
        let mut fast_ex = 0u64;
        for i in 0..n {
            let b = block[i];
            let bs = (b >> bank_shift) as usize;
            let p = pids[i] as usize;
            let write = write_mask >> i & 1 == 1;
            if taint & (1u64 << (lset[i] & 63)) == 0 {
                let w0 = lset[i] as usize * assoc;
                let c = &self.caches[p];
                // First *valid* tag match, exactly as [`Cache::find`]
                // (a stale tag can linger in an Invalid way).
                let mut way = usize::MAX;
                for w in w0..w0 + assoc {
                    if c.tag[w] == b && c.state[w] != LineState::Invalid {
                        way = w;
                        break;
                    }
                }
                if way != usize::MAX {
                    let st = self.caches[p].state[way];
                    if !write || st != LineState::Shared {
                        let t = base + i as u64 + 1;
                        self.caches[p].lru[way] = t;
                        if write {
                            if st == LineState::Exclusive {
                                self.caches[p].state[way] = LineState::Modified;
                                fast_ex += 1;
                                self.per_block_events[bs][CoherenceEvent::ExclusiveHit as usize] +=
                                    1;
                            }
                            self.word_write_time[(bs << wpb_shift) + woff[i] as usize] = t;
                            fast_writes += 1;
                        } else {
                            fast_reads += 1;
                        }
                        self.per_block_refs[bs] += 1;
                        outs[i] = Outcome {
                            miss: None,
                            block: b,
                            supplier: None,
                            upgrade: false,
                            invalidations: 0,
                        };
                        continue;
                    }
                }
            }
            taint |= 1u64 << (lset[i] & 63);
            slow[nslow] = i as u8;
            nslow += 1;
        }
        self.stats.refs += fast_reads + fast_writes;
        self.stats.reads += fast_reads;
        self.stats.writes += fast_writes;
        self.stats.exclusive_hits += fast_ex;

        // Slow pass: tainted lanes and non-trivial transitions, in lane
        // order at their serial timestamps.
        for &li in &slow[..nslow] {
            let i = li as usize;
            self.time = base + i as u64 + 1;
            outs[i] = self.step(pids[i], addrs[i], write_mask >> i & 1 == 1);
        }
        self.time = base + n as u64;
    }
}

/// Global coherence state of a simulator at one instant: aggregate
/// counters plus, per global block, the presence bitmask, modified or
/// exclusive owner, and home-directory state. Bank-independent by
/// construction — the phase-stitch equivalence tests compare snapshots
/// of banked and unbanked runs at barrier boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceSnapshot {
    pub stats: SimStats,
    pub sharers: Vec<u64>,
    pub owner: Vec<Option<u8>>,
    pub dir: Vec<DirState>,
}

/// An address-banked multiprocessor simulator: `nbanks` [`MultiSim`]
/// banks, bank `b` owning every block in the residue class
/// `block % nbanks == b`.
///
/// Because `nbanks` divides the set count, a cache set maps entirely
/// into one bank (eviction and LRU coupling never cross banks), and
/// every timestamp comparison the simulator makes is between accesses
/// of one bank — so each bank's local clock is order-isomorphic to the
/// global clock and driving the banks (in program order per bank, in
/// any interleaving across banks) yields outcomes and counters
/// bit-identical to a single [`MultiSim`] over the same stream. That
/// is what lets the batch driver simulate banks on separate worker
/// threads and [`BankedSim::from_banks`] reassemble the result.
pub struct BankedSim {
    banks: Vec<MultiSim>,
    nbanks: u32,
    block_shift: u32,
}

impl BankedSim {
    /// A banked simulator over `addr_space_bytes` of address space.
    /// `nbanks` must divide `cfg.num_sets()` (see
    /// [`BankedSim::auto_banks`]); `nbanks == 1` is exactly
    /// [`MultiSim::new`].
    pub fn new(cfg: CacheConfig, addr_space_bytes: u32, nbanks: u32) -> BankedSim {
        let banks = (0..nbanks)
            .map(|b| MultiSim::new_bank(cfg, addr_space_bytes, b, nbanks))
            .collect();
        BankedSim {
            banks,
            nbanks,
            block_shift: cfg.block_bytes.trailing_zeros(),
        }
    }

    /// Largest bank count that is at most `cap` and divides the
    /// configuration's set count — the invariant [`MultiSim::new_bank`]
    /// requires. Always at least 1.
    ///
    /// Engine-oblivious and infallible; callers that know the replay
    /// engine (and want a loud failure instead of a silent degrade to
    /// one bank) should use [`BankedSim::negotiate_banks`].
    pub fn auto_banks(cfg: &CacheConfig, cap: usize) -> u32 {
        let sets = cfg.num_sets();
        let mut k = (cap.min(u32::MAX as usize) as u32).clamp(1, sets);
        while !sets.is_multiple_of(k) {
            k -= 1;
        }
        k
    }

    /// Engine-aware bank negotiation: the largest bank count at most
    /// `cap` that (a) divides the configuration's set count — the
    /// correctness invariant banking rests on — and (b) is
    /// chunk-friendly for the engine: the chunked engine routes lanes
    /// to banks with mask/shift arithmetic, so its bank counts must be
    /// powers of two.
    ///
    /// Unlike [`BankedSim::auto_banks`], asking for parallelism the
    /// geometry cannot deliver is an *error*: if `cap > 1` and the
    /// cache has more than one set but no admissible count above 1
    /// exists, this returns [`BankPlanError`] instead of silently
    /// planning a single bank. A `cap` of 1 (or a single-set cache) is
    /// an explicit request for unbanked replay and stays `Ok(1)`.
    pub fn negotiate_banks(
        cfg: &CacheConfig,
        engine: SimEngine,
        cap: usize,
    ) -> Result<u32, BankPlanError> {
        let sets = cfg.num_sets();
        let cap32 = (cap.min(u32::MAX as usize) as u32).min(sets);
        let mut best = 1u32;
        for k in 1..=cap32 {
            if !sets.is_multiple_of(k) {
                continue;
            }
            if engine.chunked() && !k.is_power_of_two() {
                continue;
            }
            best = k;
        }
        if best == 1 && cap > 1 && sets > 1 {
            return Err(BankPlanError {
                engine,
                num_sets: sets,
                cap,
            });
        }
        Ok(best)
    }

    /// One banked simulator per configuration, each over the same
    /// address-space bound, with its bank count auto-fitted to
    /// `bank_cap` — the batch driver's unit layout, where many job
    /// configurations consume one shared trace.
    pub fn for_configs(
        cfgs: &[CacheConfig],
        addr_space_bytes: u32,
        bank_cap: usize,
    ) -> Vec<BankedSim> {
        cfgs.iter()
            .map(|cfg| BankedSim::new(*cfg, addr_space_bytes, BankedSim::auto_banks(cfg, bank_cap)))
            .collect()
    }

    /// Reassemble a banked simulator from banks that were driven
    /// independently (e.g. on a worker pool). The banks must belong to
    /// one logical simulator: bank `i` of `banks.len()` at position `i`.
    pub fn from_banks(banks: Vec<MultiSim>) -> BankedSim {
        assert!(!banks.is_empty(), "a BankedSim needs at least one bank");
        let nbanks = banks.len() as u32;
        for (i, b) in banks.iter().enumerate() {
            assert_eq!(b.num_banks(), nbanks, "bank {i}: wrong bank count");
            assert_eq!(b.bank_index(), i as u32, "bank {i}: out of order");
        }
        let block_shift = banks[0].block_shift;
        BankedSim {
            banks,
            nbanks,
            block_shift,
        }
    }

    pub fn config(&self) -> &CacheConfig {
        self.banks[0].config()
    }

    pub fn num_banks(&self) -> u32 {
        self.nbanks
    }

    pub fn banks(&self) -> &[MultiSim] {
        &self.banks
    }

    pub fn banks_mut(&mut self) -> &mut [MultiSim] {
        &mut self.banks
    }

    pub fn into_banks(self) -> Vec<MultiSim> {
        self.banks
    }

    pub fn block_bytes(&self) -> u32 {
        self.banks[0].block_bytes()
    }

    /// Number of blocks in the simulated address space (global, across
    /// all banks).
    pub fn num_blocks(&self) -> u32 {
        self.banks[0].num_blocks()
    }

    /// Which bank owns `block`.
    pub fn bank_of_block(&self, block: u32) -> usize {
        (block % self.nbanks) as usize
    }

    /// Which bank owns the block containing `addr`.
    pub fn bank_of_addr(&self, addr: u32) -> usize {
        self.bank_of_block(addr >> self.block_shift)
    }

    /// Simulate one reference, routed to the owning bank.
    pub fn access(&mut self, pid: u8, addr: u32, write: bool) -> Outcome {
        let b = self.bank_of_addr(addr);
        self.banks[b].access(pid, addr, write)
    }

    /// Simulate one reference on the chosen engine's per-reference
    /// path, routed to the owning bank.
    pub fn access_with(&mut self, engine: SimEngine, pid: u8, addr: u32, write: bool) -> Outcome {
        let b = self.bank_of_addr(addr);
        self.banks[b].access_with(engine, pid, addr, write)
    }

    /// Replay one chunk of up to [`CHUNK_LANES`] references
    /// lane-parallel, routed per bank: lanes are partitioned by owning
    /// bank (order-preserving, so each bank sees its sub-stream in
    /// program order — exactly what the banking equivalence argument
    /// requires), each bank replays its sub-chunk via
    /// [`MultiSim::access_chunk`], and outcomes are scattered back to
    /// lane positions. Bit-identical to per-reference routed replay.
    pub fn access_chunk(
        &mut self,
        pids: &[u8],
        addrs: &[u32],
        write_mask: u64,
        outs: &mut [Outcome],
    ) {
        if self.nbanks == 1 {
            return self.banks[0].access_chunk(pids, addrs, write_mask, outs);
        }
        let n = addrs.len();
        debug_assert!(n <= CHUNK_LANES);
        let mut sub_pid = [0u8; CHUNK_LANES];
        let mut sub_addr = [0u32; CHUNK_LANES];
        let mut sub_lane = [0u8; CHUNK_LANES];
        let mut sub_out = [Outcome {
            miss: None,
            block: 0,
            supplier: None,
            upgrade: false,
            invalidations: 0,
        }; CHUNK_LANES];
        for b in 0..self.nbanks as usize {
            let mut m = 0usize;
            let mut sub_writes = 0u64;
            for i in 0..n {
                if self.bank_of_addr(addrs[i]) == b {
                    sub_pid[m] = pids[i];
                    sub_addr[m] = addrs[i];
                    sub_writes |= (write_mask >> i & 1) << m;
                    sub_lane[m] = i as u8;
                    m += 1;
                }
            }
            if m == 0 {
                continue;
            }
            self.banks[b].access_chunk(
                &sub_pid[..m],
                &sub_addr[..m],
                sub_writes,
                &mut sub_out[..m],
            );
            for j in 0..m {
                outs[sub_lane[j] as usize] = sub_out[j];
            }
        }
    }

    /// Aggregate statistics, merged across banks — bit-identical to an
    /// unbanked run's [`MultiSim::stats`].
    pub fn stats(&self) -> SimStats {
        let mut out = SimStats::default();
        for b in &self.banks {
            out.merge(b.stats());
        }
        out
    }

    /// Interleave per-bank slot-indexed counters back to global block
    /// indices: global block `g` lives in bank `g % nbanks` at slot
    /// `g / nbanks`.
    fn interleave<T: Copy + Default>(&self, per_bank: impl Fn(&MultiSim) -> &[T]) -> Vec<T> {
        let n = self.num_blocks() as usize;
        let mut out = vec![T::default(); n];
        for (bi, bank) in self.banks.iter().enumerate() {
            for (slot, v) in per_bank(bank).iter().enumerate() {
                let g = slot * self.nbanks as usize + bi;
                if g < n {
                    out[g] = *v;
                }
            }
        }
        out
    }

    /// Per-block miss counts at global block indices (cf.
    /// [`MultiSim::per_block_misses`], which is slot-indexed per bank).
    pub fn per_block_misses(&self) -> Vec<[u32; MissKind::COUNT]> {
        self.interleave(|b| b.per_block_misses())
    }

    /// Per-block coherence-event counts at global block indices.
    pub fn per_block_events(&self) -> Vec<[u32; CoherenceEvent::COUNT]> {
        self.interleave(|b| b.per_block_events())
    }

    /// Per-block reference counts at global block indices.
    pub fn per_block_refs(&self) -> Vec<u64> {
        self.interleave(|b| b.per_block_refs())
    }

    pub fn sharers_of(&self, block: u32) -> u64 {
        self.banks[self.bank_of_block(block)].sharers_of(block)
    }

    pub fn owner_of(&self, block: u32) -> Option<u8> {
        self.banks[self.bank_of_block(block)].owner_of(block)
    }

    pub fn dir_state(&self, block: u32) -> DirState {
        self.banks[self.bank_of_block(block)].dir_state(block)
    }

    pub fn line_state(&self, pid: u8, block: u32) -> LineState {
        self.banks[self.bank_of_block(block)].line_state(pid, block)
    }

    /// Capture the global coherence state (counters, presence bitmasks,
    /// owners, directory states) in bank-independent form.
    pub fn snapshot(&self) -> CoherenceSnapshot {
        let n = self.num_blocks();
        CoherenceSnapshot {
            stats: self.stats(),
            sharers: (0..n).map(|b| self.sharers_of(b)).collect(),
            owner: (0..n).map(|b| self.owner_of(b)).collect(),
            dir: (0..n).map(|b| self.dir_state(b)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(nproc: u32, block: u32) -> MultiSim {
        sim_with(ProtocolKind::Msi, nproc, block)
    }

    fn sim_with(protocol: ProtocolKind, nproc: u32, block: u32) -> MultiSim {
        MultiSim::new(
            CacheConfig {
                nproc,
                block_bytes: block,
                cache_bytes: 1024,
                assoc: 2,
                protocol,
            },
            1 << 20,
        )
    }

    #[test]
    fn first_access_is_cold() {
        let mut s = sim(2, 64);
        let o = s.access(0, 0x100, false);
        assert_eq!(o.miss, Some(MissKind::Cold));
        // Second access hits.
        let o = s.access(0, 0x104, false);
        assert!(o.hit());
    }

    #[test]
    fn write_invalidate_then_reread_same_word_is_true_sharing() {
        let mut s = sim(2, 64);
        s.access(0, 0x100, false); // P0 caches block
        s.access(1, 0x100, true); // P1 writes same word -> invalidates P0
        let o = s.access(0, 0x100, false); // P0 rereads the written word
        assert_eq!(o.miss, Some(MissKind::TrueSharing));
    }

    #[test]
    fn write_invalidate_then_reread_other_word_is_false_sharing() {
        let mut s = sim(2, 64);
        s.access(0, 0x100, false); // P0 caches block (word 0x100)
        s.access(1, 0x13c, true); // P1 writes a *different* word, same block
        let o = s.access(0, 0x100, false); // P0 rereads its own word
        assert_eq!(o.miss, Some(MissKind::FalseSharing));
    }

    #[test]
    fn upgrade_on_shared_write() {
        let mut s = sim(2, 64);
        s.access(0, 0x100, false);
        s.access(1, 0x100, false);
        let o = s.access(0, 0x100, true);
        assert!(o.upgrade);
        assert_eq!(o.miss, None);
        assert_eq!(s.stats().upgrades, 1);
        assert_eq!(s.stats().invalidations, 1);
        // P1's reread of the written word: true sharing.
        let o = s.access(1, 0x100, false);
        assert_eq!(o.miss, Some(MissKind::TrueSharing));
    }

    #[test]
    fn eviction_makes_replacement_miss() {
        // cache 1024B, 64B blocks, assoc 2 -> 8 sets; blocks spaced by
        // 8*64 = 512 bytes map to the same set.
        let mut s = sim(1, 64);
        s.access(0, 0x0, false);
        s.access(0, 0x200, false);
        s.access(0, 0x400, false); // evicts 0x0 (LRU)
        let o = s.access(0, 0x0, false);
        assert_eq!(o.miss, Some(MissKind::Replacement));
    }

    #[test]
    fn supplier_reported_for_dirty_remote_block() {
        let mut s = sim(2, 64);
        s.access(1, 0x100, true); // P1 owns modified
        let o = s.access(0, 0x100, false);
        assert_eq!(o.supplier, Some(1));
        // After the downgrade both share; P1 hits.
        assert!(s.access(1, 0x100, false).hit());
    }

    #[test]
    fn write_miss_invalidates_sharers() {
        let mut s = sim(3, 64);
        s.access(0, 0x100, false);
        s.access(1, 0x100, false);
        s.access(2, 0x108, true); // write miss, invalidates P0 and P1
        assert_eq!(s.stats().invalidations, 2);
        // P0 rereads its word (not written): false sharing.
        assert_eq!(s.access(0, 0x100, false).miss, Some(MissKind::FalseSharing));
        // P1 reads the written word: true sharing.
        assert_eq!(s.access(1, 0x108, false).miss, Some(MissKind::TrueSharing));
    }

    #[test]
    fn ping_pong_counts_false_sharing_on_both_sides() {
        let mut s = sim(2, 128);
        // P0 writes word A, P1 writes word B in the same block, repeatedly.
        s.access(0, 0x1000, true);
        s.access(1, 0x1040, true); // cold (never cached) but invalidates P0
        let mut fs = 0;
        for _ in 0..10 {
            if s.access(0, 0x1000, true).miss == Some(MissKind::FalseSharing) {
                fs += 1;
            }
            if s.access(1, 0x1040, true).miss == Some(MissKind::FalseSharing) {
                fs += 1;
            }
        }
        assert_eq!(fs, 20, "every miss in the ping-pong is false sharing");
    }

    #[test]
    fn small_blocks_eliminate_false_sharing() {
        let mut s = sim(2, 4);
        s.access(0, 0x1000, true);
        s.access(1, 0x1040, true);
        for _ in 0..10 {
            assert!(s.access(0, 0x1000, true).hit());
            assert!(s.access(1, 0x1040, true).hit());
        }
        assert_eq!(s.stats().false_sharing(), 0);
    }

    #[test]
    fn per_block_attribution_accumulates() {
        let mut s = sim(2, 64);
        s.access(0, 0x100, false);
        s.access(1, 0x108, true);
        s.access(0, 0x100, false); // false sharing on block 4
        let b = (0x100u32 >> s.block_bytes().trailing_zeros()) as usize;
        assert_eq!(s.per_block_misses()[b][MissKind::FalseSharing as usize], 1);
    }

    #[test]
    fn per_block_events_accumulate() {
        let mut s = sim(2, 64);
        s.access(0, 0x100, false);
        s.access(1, 0x100, false);
        s.access(0, 0x100, true); // upgrade, invalidates P1
        let b = (0x100u32 >> s.block_bytes().trailing_zeros()) as usize;
        let ev = s.per_block_events()[b];
        assert_eq!(ev[CoherenceEvent::Upgrade as usize], 1);
        assert_eq!(ev[CoherenceEvent::Invalidation as usize], 1);
    }

    #[test]
    fn stats_counts_are_consistent() {
        let mut s = sim(4, 64);
        for i in 0..100u32 {
            s.access((i % 4) as u8, 0x1000 + (i * 12) % 512, i % 3 == 0);
        }
        let st = s.stats();
        assert_eq!(st.refs, 100);
        assert_eq!(st.reads + st.writes, 100);
        assert!(st.total_misses() <= st.refs);
        assert!(st.miss_rate() <= 1.0);
    }

    #[test]
    fn larger_blocks_increase_false_sharing() {
        // Two procs write adjacent words in a loop: false sharing exists
        // at 64B but not at 4B.
        let run = |block: u32| {
            let mut s = sim(2, block);
            for _ in 0..50 {
                s.access(0, 0x1000, true);
                s.access(1, 0x1004, true);
            }
            s.stats().false_sharing()
        };
        assert_eq!(run(4), 0);
        assert!(run(64) > 50);
    }

    #[test]
    fn outcome_reports_invalidation_counts() {
        let mut s = sim(4, 64);
        for p in 0..4u8 {
            s.access(p, 0x100, false);
        }
        // Upgrade invalidates the other three sharers.
        let o = s.access(0, 0x100, true);
        assert!(o.upgrade);
        assert_eq!(o.invalidations, 3);
        // A write miss by another proc invalidates the single owner.
        let o = s.access(1, 0x104, true);
        assert_eq!(o.miss, Some(MissKind::FalseSharing));
        assert_eq!(o.invalidations, 1);
        // Hits invalidate nobody.
        let o = s.access(1, 0x108, true);
        assert!(o.hit());
        assert_eq!(o.invalidations, 0);
    }

    #[test]
    fn read_only_sharing_has_no_coherence_misses() {
        let mut s = sim(4, 64);
        for p in 0..4u8 {
            s.access(p, 0x2000, false);
        }
        for _ in 0..10 {
            for p in 0..4u8 {
                assert!(s.access(p, 0x2000, false).hit());
            }
        }
        assert_eq!(s.stats().false_sharing(), 0);
        assert_eq!(s.stats().miss_of(MissKind::TrueSharing), 0);
        assert_eq!(s.stats().total_misses(), 4); // cold only
    }

    #[test]
    fn msi_never_installs_exclusive() {
        let mut s = sim(2, 64);
        s.access(0, 0x100, false); // sole reader still fills Shared
        let o = s.access(0, 0x100, true);
        assert!(o.upgrade, "MSI pays an upgrade even on private data");
        assert_eq!(s.stats().exclusive_hits, 0);
    }

    #[test]
    fn mesi_private_write_after_read_is_silent() {
        let mut s = sim_with(ProtocolKind::Mesi, 2, 64);
        s.access(0, 0x100, false); // sole reader fills Exclusive
        let o = s.access(0, 0x100, true);
        assert!(o.hit(), "E->M upgrade is silent");
        assert!(!o.upgrade);
        assert_eq!(s.stats().upgrades, 0);
        assert_eq!(s.stats().exclusive_hits, 1);
    }

    #[test]
    fn mesi_shared_data_still_pays_upgrades() {
        let mut s = sim_with(ProtocolKind::Mesi, 2, 64);
        s.access(0, 0x100, false); // Exclusive at P0
        s.access(1, 0x100, false); // second reader: both Shared, intervention
        assert_eq!(s.stats().interventions, 1);
        let o = s.access(0, 0x100, true);
        assert!(o.upgrade, "shared line upgrades like MSI");
        assert_eq!(o.invalidations, 1);
    }

    #[test]
    fn mesi_exclusive_holder_is_supplier() {
        let mut s = sim_with(ProtocolKind::Mesi, 2, 64);
        s.access(1, 0x100, false); // P1 Exclusive
        let o = s.access(0, 0x100, false);
        assert_eq!(o.supplier, Some(1), "cache-to-cache from the E holder");
    }

    #[test]
    fn mesi_and_msi_classify_identically_on_a_ping_pong() {
        let mut a = sim_with(ProtocolKind::Msi, 2, 128);
        let mut b = sim_with(ProtocolKind::Mesi, 2, 128);
        for i in 0..100u32 {
            let pid = (i % 2) as u8;
            let addr = 0x1000 + (i % 2) * 4;
            let write = i % 3 != 2;
            let oa = a.access(pid, addr, write);
            let ob = b.access(pid, addr, write);
            assert_eq!(oa.miss, ob.miss, "ref {i}");
        }
        assert_eq!(a.stats().misses, b.stats().misses);
    }

    #[test]
    fn directory_matches_msi_outcomes_exactly() {
        // MSI cache states at the home: every access outcome (not just
        // the classification) is identical to snooping MSI.
        let mut a = sim_with(ProtocolKind::Msi, 4, 64);
        let mut b = sim_with(ProtocolKind::Directory, 4, 64);
        for i in 0..400u32 {
            let pid = (i % 4) as u8;
            let addr = 0x1000 + (i * 20) % 768;
            let write = i % 5 < 2;
            let oa = a.access(pid, addr, write);
            let ob = b.access(pid, addr, write);
            assert_eq!(oa, ob, "ref {i}");
        }
        assert_eq!(a.stats().misses, b.stats().misses);
        assert_eq!(a.stats().upgrades, b.stats().upgrades);
    }

    #[test]
    fn dir_txns_count_misses_and_upgrades() {
        let mut s = sim_with(ProtocolKind::Directory, 2, 64);
        s.access(0, 0x100, false); // miss
        s.access(1, 0x100, false); // miss
        s.access(0, 0x100, true); // upgrade
        s.access(0, 0x104, true); // hit (Modified)
        let st = s.stats();
        assert_eq!(st.dir_txns, st.total_misses() + st.upgrades);
        assert_eq!(st.dir_txns, 3);
    }

    #[test]
    fn snooping_protocols_never_count_dir_txns() {
        for kind in [ProtocolKind::Msi, ProtocolKind::Mesi] {
            let mut s = sim_with(kind, 2, 64);
            s.access(0, 0x100, false);
            s.access(1, 0x100, true);
            assert_eq!(s.stats().dir_txns, 0, "{}", kind.name());
        }
    }

    #[test]
    fn dir_state_tracks_presence_and_owner() {
        let mut s = sim_with(ProtocolKind::Directory, 3, 64);
        let block = 0x100 >> s.block_bytes().trailing_zeros();
        assert_eq!(s.dir_state(block), DirState::Uncached);
        s.access(0, 0x100, false);
        s.access(1, 0x100, false);
        assert_eq!(s.dir_state(block), DirState::Shared);
        assert_eq!(s.sharers_of(block), 0b11);
        assert_eq!(s.owner_of(block), None);
        s.access(2, 0x104, true);
        assert_eq!(s.dir_state(block), DirState::Exclusive);
        assert_eq!(s.sharers_of(block), 0b100);
        assert_eq!(s.owner_of(block), Some(2));
        assert_eq!(s.line_state(2, block), LineState::Modified);
        assert_eq!(s.line_state(0, block), LineState::Invalid);
    }

    #[test]
    fn per_block_refs_are_protocol_invariant() {
        let mut sims: Vec<MultiSim> = ProtocolKind::ALL
            .iter()
            .map(|&k| sim_with(k, 4, 64))
            .collect();
        for i in 0..300u32 {
            for s in &mut sims {
                s.access((i % 4) as u8, 0x2000 + (i * 28) % 1024, i % 7 == 0);
            }
        }
        for s in &sims[1..] {
            assert_eq!(s.per_block_refs(), sims[0].per_block_refs());
        }
    }

    /// A deterministic mixed read/write stream with enough set pressure
    /// to force evictions (cache 1024B, assoc 2) and enough block
    /// sharing to exercise every coherence path.
    fn stress_stream(nproc: u32) -> Vec<(u8, u32, bool)> {
        let mut refs = Vec::new();
        let mut x: u32 = 0x1234_5678;
        for i in 0..4000u32 {
            // xorshift: deterministic, no RNG dependency.
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let pid = (x % nproc) as u8;
            let addr = (x >> 3) % (1 << 14);
            refs.push((pid, addr & !3, i.is_multiple_of(3)));
        }
        refs
    }

    #[test]
    fn banked_outcomes_match_serial_for_every_protocol() {
        for &kind in &ProtocolKind::ALL {
            let cfg = CacheConfig {
                nproc: 4,
                block_bytes: 64,
                cache_bytes: 1024,
                assoc: 2,
                protocol: kind,
            };
            for nbanks in [2u32, 4, 8] {
                let mut serial = MultiSim::new(cfg, 1 << 14);
                let mut banked = BankedSim::new(cfg, 1 << 14, nbanks);
                for &(pid, addr, write) in &stress_stream(4) {
                    let want = serial.access(pid, addr, write);
                    let got = banked.access(pid, addr, write);
                    assert_eq!(want, got, "{} nbanks={nbanks}", kind.name());
                }
                assert_eq!(*serial.stats(), banked.stats(), "{}", kind.name());
                assert_eq!(serial.per_block_misses(), banked.per_block_misses());
                assert_eq!(serial.per_block_events(), banked.per_block_events());
                assert_eq!(serial.per_block_refs(), banked.per_block_refs());
                let unbanked = BankedSim::from_banks(vec![serial]);
                assert_eq!(unbanked.snapshot(), banked.snapshot());
            }
        }
    }

    #[test]
    fn banks_driven_independently_reassemble_exactly() {
        // Drive each bank on its own filtered stream (what the sharded
        // driver does on worker threads), then reassemble.
        let cfg = CacheConfig {
            nproc: 4,
            block_bytes: 64,
            cache_bytes: 1024,
            assoc: 2,
            protocol: ProtocolKind::Mesi,
        };
        let nbanks = 4u32;
        let shift = cfg.block_bytes.trailing_zeros();
        let stream = stress_stream(4);
        let mut whole = BankedSim::new(cfg, 1 << 14, nbanks);
        let mut parts: Vec<MultiSim> = (0..nbanks)
            .map(|b| MultiSim::new_bank(cfg, 1 << 14, b, nbanks))
            .collect();
        for &(pid, addr, write) in &stream {
            whole.access(pid, addr, write);
            let bank = ((addr >> shift) % nbanks) as usize;
            parts[bank].access(pid, addr, write);
        }
        let reassembled = BankedSim::from_banks(parts);
        assert_eq!(whole.snapshot(), reassembled.snapshot());
        assert_eq!(whole.per_block_misses(), reassembled.per_block_misses());
    }

    #[test]
    fn auto_banks_divides_num_sets() {
        for (cache, block, assoc) in [(1024u32, 64u32, 2u32), (32 * 1024, 128, 4), (4096, 4, 1)] {
            let cfg = CacheConfig {
                nproc: 2,
                block_bytes: block,
                cache_bytes: cache,
                assoc,
                protocol: ProtocolKind::Msi,
            };
            for cap in 1..=16usize {
                let k = BankedSim::auto_banks(&cfg, cap);
                assert!(k >= 1 && k <= cap as u32);
                assert_eq!(cfg.num_sets() % k, 0, "cap {cap}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide num_sets")]
    fn new_bank_rejects_bank_counts_that_split_sets() {
        // 1024B cache / 64B blocks / assoc 2 = 8 sets; 3 doesn't divide.
        let cfg = CacheConfig {
            nproc: 2,
            block_bytes: 64,
            cache_bytes: 1024,
            assoc: 2,
            protocol: ProtocolKind::Msi,
        };
        MultiSim::new_bank(cfg, 1 << 14, 0, 3);
    }

    /// Replay `stream` on each engine (per-reference for Scalar/Soa,
    /// chunked with the given chunk sizes for SoaChunked) and assert
    /// outcomes and every observable counter are bit-identical.
    fn assert_engines_equivalent(kind: ProtocolKind, nbanks: u32, chunk_sizes: &[usize]) {
        let cfg = CacheConfig {
            nproc: 4,
            block_bytes: 64,
            cache_bytes: 1024,
            assoc: 2,
            protocol: kind,
        };
        let stream = stress_stream(4);
        let mut scalar = BankedSim::new(cfg, 1 << 14, nbanks);
        let mut soa = BankedSim::new(cfg, 1 << 14, nbanks);
        let mut chunked = BankedSim::new(cfg, 1 << 14, nbanks);
        let scalar_outs: Vec<Outcome> = stream
            .iter()
            .map(|&(pid, addr, w)| scalar.access(pid, addr, w))
            .collect();
        let soa_outs: Vec<Outcome> = stream
            .iter()
            .map(|&(pid, addr, w)| soa.access_with(SimEngine::Soa, pid, addr, w))
            .collect();
        assert_eq!(scalar_outs, soa_outs, "{} soa", kind.name());
        let mut chunk_outs = vec![
            Outcome {
                miss: None,
                block: 0,
                supplier: None,
                upgrade: false,
                invalidations: 0,
            };
            stream.len()
        ];
        let mut at = 0usize;
        let mut csz = chunk_sizes.iter().cycle();
        while at < stream.len() {
            let n = (*csz.next().unwrap()).min(stream.len() - at).max(1);
            let pids: Vec<u8> = stream[at..at + n].iter().map(|r| r.0).collect();
            let addrs: Vec<u32> = stream[at..at + n].iter().map(|r| r.1).collect();
            let mut wmask = 0u64;
            for (i, r) in stream[at..at + n].iter().enumerate() {
                wmask |= (r.2 as u64) << i;
            }
            chunked.access_chunk(&pids, &addrs, wmask, &mut chunk_outs[at..at + n]);
            at += n;
        }
        assert_eq!(scalar_outs, chunk_outs, "{} chunked", kind.name());
        assert_eq!(scalar.snapshot(), soa.snapshot(), "{}", kind.name());
        assert_eq!(scalar.snapshot(), chunked.snapshot(), "{}", kind.name());
        assert_eq!(scalar.per_block_misses(), chunked.per_block_misses());
        assert_eq!(scalar.per_block_events(), chunked.per_block_events());
        assert_eq!(scalar.per_block_refs(), chunked.per_block_refs());
    }

    #[test]
    fn engines_are_bit_identical_for_every_protocol() {
        for &kind in &ProtocolKind::ALL {
            assert_engines_equivalent(kind, 1, &[CHUNK_LANES]);
        }
    }

    #[test]
    fn engines_are_bit_identical_with_ragged_chunks() {
        for &kind in &ProtocolKind::ALL {
            assert_engines_equivalent(kind, 1, &[1, 7, 64, 3, 33]);
        }
    }

    #[test]
    fn engines_are_bit_identical_under_banking() {
        for &kind in &ProtocolKind::ALL {
            for nbanks in [2u32, 4, 8] {
                assert_engines_equivalent(kind, nbanks, &[CHUNK_LANES, 13]);
            }
        }
    }

    #[test]
    fn chunk_timestamps_continue_the_scalar_clock() {
        // A chunked replay must leave the bank clock exactly where a
        // scalar replay would, so mixing entry points mid-stream (the
        // sinks flush partial chunks at sync boundaries) stays exact.
        let cfg = CacheConfig {
            nproc: 2,
            block_bytes: 64,
            cache_bytes: 1024,
            assoc: 2,
            protocol: ProtocolKind::Msi,
        };
        let stream = stress_stream(2);
        let mut a = MultiSim::new(cfg, 1 << 14);
        let mut b = MultiSim::new(cfg, 1 << 14);
        let mut outs = [Outcome {
            miss: None,
            block: 0,
            supplier: None,
            upgrade: false,
            invalidations: 0,
        }; CHUNK_LANES];
        for (i, &(pid, addr, w)) in stream.iter().enumerate() {
            let want = a.access(pid, addr, w);
            // Alternate chunk-of-one and scalar calls.
            let got = if i % 2 == 0 {
                b.access_chunk(&[pid], &[addr], w as u64, &mut outs[..1]);
                outs[0]
            } else {
                b.access(pid, addr, w)
            };
            assert_eq!(want, got, "ref {i}");
        }
        assert_eq!(a.time, b.time);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn negotiate_banks_respects_engine_constraints() {
        // 1024B / 64B / assoc 2 -> 8 sets.
        let cfg = CacheConfig {
            nproc: 2,
            block_bytes: 64,
            cache_bytes: 1024,
            assoc: 2,
            protocol: ProtocolKind::Msi,
        };
        for engine in SimEngine::ALL {
            let k = BankedSim::negotiate_banks(&cfg, engine, 8).unwrap();
            assert_eq!(k, 8, "{engine}");
            assert_eq!(BankedSim::negotiate_banks(&cfg, engine, 1).unwrap(), 1);
        }
        // 4096B / 64B / assoc 1 -> 64 sets; cap 6: scalar may take 4
        // (largest divisor <= 6 that is... 4), chunked also 4.
        let cfg64 = CacheConfig {
            nproc: 2,
            block_bytes: 64,
            cache_bytes: 4096,
            assoc: 1,
            protocol: ProtocolKind::Msi,
        };
        assert_eq!(
            BankedSim::negotiate_banks(&cfg64, SimEngine::SoaChunked, 6).unwrap(),
            4
        );
    }

    #[test]
    fn negotiate_banks_errors_instead_of_silently_degrading() {
        // 1152B / 64B / assoc 2 -> 9 sets: divisors are {1, 3, 9}, none
        // a power of two, so the chunked engine cannot bank at all.
        let cfg = CacheConfig {
            nproc: 2,
            block_bytes: 64,
            cache_bytes: 1152,
            assoc: 2,
            protocol: ProtocolKind::Msi,
        };
        assert_eq!(cfg.num_sets(), 9);
        let err = BankedSim::negotiate_banks(&cfg, SimEngine::SoaChunked, 2).unwrap_err();
        assert_eq!(err.num_sets, 9);
        assert!(err.to_string().contains("power of two"), "{err}");
        // The scalar engine can still take 3 banks within a cap of 4...
        assert_eq!(
            BankedSim::negotiate_banks(&cfg, SimEngine::Scalar, 4).unwrap(),
            3
        );
        // ...but a cap of 2 admits nothing above 1 for any engine.
        assert!(BankedSim::negotiate_banks(&cfg, SimEngine::Scalar, 2).is_err());
        // auto_banks keeps its engine-oblivious quiet-degrade contract.
        assert_eq!(BankedSim::auto_banks(&cfg, 2), 1);
    }

    #[test]
    fn sim_engine_parse_round_trips() {
        for engine in SimEngine::ALL {
            assert_eq!(SimEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(SimEngine::parse("chunked"), Some(SimEngine::SoaChunked));
        assert_eq!(SimEngine::parse("AVX-512"), None);
        assert_eq!(SimEngine::default(), SimEngine::SoaChunked);
    }

    #[test]
    fn merged_stats_are_additive() {
        let mut a = SimStats::default();
        let mut b = SimStats::default();
        a.refs = 3;
        a.misses[MissKind::Cold as usize] = 2;
        b.refs = 5;
        b.misses[MissKind::Cold as usize] = 1;
        b.dir_txns = 7;
        a.merge(&b);
        assert_eq!(a.refs, 8);
        assert_eq!(a.misses[MissKind::Cold as usize], 3);
        assert_eq!(a.dir_txns, 7);
    }
}
