//! Static false-sharing advisor (`FSR-W004`).
//!
//! Predicts, before any simulation, which objects will suffer false
//! sharing under the *unoptimized* layout and names the compile-time
//! transformation that removes it. False sharing is a property of the
//! coherence **block**, not of a single word: a block false-shares when
//! two processes concurrently access different words of it and at least
//! one writes. Which of the block's resident objects the resulting
//! misses are *attributed* to is an accident of interleaving — so the
//! advisor reasons about blocks and flags every meaningfully-accessed
//! object resident in a prone block.
//!
//! Three rules build the flag set:
//!
//! 1. **Planned objects** ([`crate::plan_for`] directives): anything the
//!    §3.3 heuristics would transform is by construction false-sharing
//!    prone; the recommendation is the directive itself. Locks are
//!    always prone (spin words packed with neighbours) — recommend
//!    alignment to a private block.
//! 2. **Write-shared residue**: classes with shared writes and enough
//!    estimated frequency where the §3.3 pad rule backed off only
//!    because of the footprint cap or because unit-stride writes looked
//!    spatially local. Data-dependent write-shared arrays false-share on
//!    whatever block two processes happen to hit (recommend pad &
//!    align); unit-stride write-shared arrays spanning several blocks
//!    false-share at partition boundaries (recommend alignment of the
//!    per-process regions).
//! 3. **Block victims**: objects with no dangerous access pattern of
//!    their own that are packed into the same unoptimized block as a
//!    flagged object. Their reads ping-pong with the neighbour's writes
//!    (the classic "innocent bystander" of false sharing); the cure is
//!    alignment away from the hot neighbour.
//!
//! `fsr-lint --advise` validates the flag set against the simulator's
//! per-object miss taxonomy: every object with false-sharing misses must
//! be flagged (completeness), and every flagged object must live in a
//! block that measurably false-shares (soundness at block granularity).

use crate::heuristics::{plan_for, PlanConfig};
use crate::plan::ObjPlan;
use fsr_analysis::{Analysis, Pattern};
use fsr_lang::ast::{ObjId, ObjectKind, Program, WORD_BYTES};
use fsr_lang::diag::{Code, Diagnostic, Diagnostics};
use std::collections::BTreeMap;

/// One piece of advice: an object predicted to false-share under the
/// unoptimized layout, with the recommended transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Advice {
    pub obj: ObjId,
    /// One of `"group & transpose"`, `"transpose"`, `"indirection"`,
    /// `"pad & align"`, `"align"`.
    pub recommendation: &'static str,
    /// Why the object is considered prone (for the diagnostic message).
    pub why: String,
}

fn rec_of(plan: &ObjPlan) -> &'static str {
    match plan {
        ObjPlan::Transpose { group: Some(_), .. } => "group & transpose",
        ObjPlan::Transpose { group: None, .. } => "transpose",
        ObjPlan::Indirect { .. } => "indirection",
        ObjPlan::PadElems => "pad & align",
        ObjPlan::PadLock => "align",
    }
}

/// Compute the advice set. `regions` are the object byte ranges of the
/// **unoptimized** layout (`fsr-layout` regions; several per object are
/// fine) — the advisor only uses them for block co-residency, so the
/// caller decides the block size via `cfg.block_bytes`.
pub fn advise(
    prog: &Program,
    analysis: &Analysis,
    cfg: &PlanConfig,
    regions: &[(ObjId, u32, u32)],
) -> Vec<Advice> {
    let plan = plan_for(prog, analysis, cfg);
    let mut out: BTreeMap<ObjId, Advice> = BTreeMap::new();

    // Rule 1: planned objects and locks.
    for (i, obj) in prog.objects.iter().enumerate() {
        let oid = ObjId(i as u32);
        if obj.kind == ObjectKind::Lock {
            out.insert(
                oid,
                Advice {
                    obj: oid,
                    recommendation: "align",
                    why: "lock words packed with neighbours ping-pong on every \
                          acquire; give each lock its own block"
                        .into(),
                },
            );
            continue;
        }
        if obj.kind != ObjectKind::SharedData {
            continue;
        }
        if let Some(p) = plan.get(oid) {
            let why = plan
                .reasons
                .get(&oid)
                .cloned()
                .unwrap_or_else(|| "planned transformation".into());
            out.insert(
                oid,
                Advice {
                    obj: oid,
                    recommendation: rec_of(p),
                    why,
                },
            );
        }
    }

    // Rule 2: write-shared residue the pad rule backed off from.
    for c in &analysis.classes {
        let obj = prog.object(c.obj);
        if obj.kind != ObjectKind::SharedData || out.contains_key(&c.obj) {
            continue;
        }
        if c.write.pattern != Pattern::Shared {
            continue;
        }
        if c.total_weight() < cfg.pad_weight_frac * analysis.total_weight {
            continue;
        }
        let bytes = obj.elem_count() * prog.elem_words(obj.elem) as u64 * WORD_BYTES as u64;
        if !c.write.has_spatial_locality() {
            out.insert(
                c.obj,
                Advice {
                    obj: c.obj,
                    recommendation: "pad & align",
                    why: "frequent shared writes with no spatial locality land two \
                          processes on different words of the same block"
                        .into(),
                },
            );
        } else if bytes > cfg.block_bytes as u64 {
            out.insert(
                c.obj,
                Advice {
                    obj: c.obj,
                    recommendation: "align",
                    why: "unit-stride shared writes over a multi-block array \
                          false-share at region boundaries; align each process's \
                          region to a block"
                        .into(),
                },
            );
        }
    }

    // Rule 3: block victims — one sweep, seeded by rules 1 and 2.
    let seeded: Vec<ObjId> = out.keys().copied().collect();
    let block = |b: u32| b / cfg.block_bytes;
    let shares_block = |a: ObjId, b: ObjId| {
        regions.iter().filter(|r| r.0 == a).any(|(_, s1, e1)| {
            regions.iter().filter(|r| r.0 == b).any(|(_, s2, e2)| {
                block(e1.saturating_sub(1)) >= block(*s2)
                    && block(*s1) <= block(e2.saturating_sub(1))
            })
        })
    };
    for c in &analysis.classes {
        let obj = prog.object(c.obj);
        if obj.kind != ObjectKind::SharedData || out.contains_key(&c.obj) {
            continue;
        }
        if c.total_weight() < cfg.pad_weight_frac * analysis.total_weight {
            continue;
        }
        if seeded.iter().any(|&s| s != c.obj && shares_block(c.obj, s)) {
            out.insert(
                c.obj,
                Advice {
                    obj: c.obj,
                    recommendation: "align",
                    why: "shares an unoptimized block with a false-sharing-prone \
                          neighbour; its accesses absorb the ping-pong"
                        .into(),
                },
            );
        }
    }

    out.into_values().collect()
}

/// Render the advice set as `FSR-W004` diagnostics anchored at the
/// object declarations.
pub fn advise_diagnostics(
    prog: &Program,
    analysis: &Analysis,
    cfg: &PlanConfig,
    regions: &[(ObjId, u32, u32)],
) -> Diagnostics {
    let mut ds = Diagnostics::default();
    for a in advise(prog, analysis, cfg, regions) {
        let obj = prog.object(a.obj);
        ds.push(Diagnostic::warning(
            Code::FalseSharingProne,
            format!(
                "`{}` is false-sharing prone: {}; recommend {}",
                obj.name, a.why, a.recommendation
            ),
            obj.span,
        ));
    }
    ds.sort();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsr_analysis::analyze;

    fn advise_names(src: &str) -> Vec<(String, &'static str)> {
        let prog = fsr_lang::compile(src).unwrap();
        let a = analyze(&prog).unwrap();
        let plan = crate::LayoutPlan::unoptimized(128);
        // Sequentially pack objects, mirroring the unoptimized layout.
        let mut regions = Vec::new();
        let mut at = 0u32;
        for (i, o) in prog.objects.iter().enumerate() {
            let bytes =
                (o.elem_count() * prog.elem_words(o.elem) as u64 * WORD_BYTES as u64) as u32;
            regions.push((ObjId(i as u32), at, at + bytes));
            at += bytes;
        }
        let _ = plan;
        advise(&prog, &a, &PlanConfig::default(), &regions)
            .into_iter()
            .map(|ad| (prog.object(ad.obj).name.clone(), ad.recommendation))
            .collect()
    }

    #[test]
    fn planned_objects_carry_plan_recommendation() {
        let advice = advise_names(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 100 {
                 c[p] = c[p] + 1; } } }",
        );
        assert_eq!(advice, vec![("c".into(), "group & transpose")]);
    }

    #[test]
    fn data_dependent_write_shared_array_padded() {
        // Too big for the §3.3 pad rule's footprint cap, but still prone.
        let advice = advise_names(
            "param NPROC = 4; shared int a[256];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 200 {
                 a[prand(i * NPROC + p) % 256] = a[prand(i + p) % 256] + 1; } } }",
        );
        assert_eq!(advice, vec![("a".into(), "pad & align")]);
    }

    #[test]
    fn locks_always_advised_aligned() {
        let advice = advise_names(
            "param NPROC = 2; shared lock lk[8]; shared int x;
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 50 {
                 lock(lk[p]); x = x + 1; unlock(lk[p]); } } }",
        );
        assert!(advice.contains(&("lk".into(), "align")));
        // The busy scalar next to the locks is prone too.
        assert!(advice.iter().any(|(n, _)| n == "x"));
    }

    #[test]
    fn victim_next_to_hot_counter_advised_aligned() {
        // `status` is read-mostly and harmless on its own, but shares the
        // scalar block with a padded hot counter.
        let advice = advise_names(
            "param NPROC = 4; shared int hot; shared int status;
             fn main() { forall p in 0 .. NPROC { var i; var s = 0;
                 for i in 0 .. 1000 { hot = hot + 1; s = s + status; }
             } }",
        );
        assert!(advice.contains(&("hot".into(), "pad & align")));
        assert!(advice.contains(&("status".into(), "align")));
    }

    #[test]
    fn cold_isolated_objects_not_advised() {
        // Written once by one process in the setup phase, then read
        // shared: never concurrently write-shared, and resident in its
        // own blocks — no advice.
        let advice = advise_names(
            "param NPROC = 4; shared int big[256]; shared int table[64];
             fn main() { forall p in 0 .. NPROC {
                 var i;
                 if (p == 0) { for i in 0 .. 64 { table[i] = i; } }
                 barrier;
                 var s = 0;
                 for i in 0 .. 200 {
                     big[prand(i * NPROC + p) % 256] = s;
                     s = s + table[i % 64];
                 }
             } }",
        );
        assert!(advice.iter().any(|(n, _)| n == "big"));
        assert!(!advice.iter().any(|(n, _)| n == "table"));
    }
}
