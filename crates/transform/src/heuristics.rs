//! The §3.3 transformation heuristics.
//!
//! The decision factors are the *type* (read/write, shared/per-process),
//! *stride* (known/unknown) and *frequency* of access:
//!
//! - group & transpose / indirection require per-process writes and reads
//!   that are per-process, read-shared without spatial or processor
//!   locality, or dominated by writes (≥ 10×);
//! - pad & align requires both reads and writes to be shared without
//!   processor or spatial locality, and enough estimated frequency to
//!   matter (this frequency threshold is the mechanism by which static
//!   profiling can *underestimate* busy scalars — the paper's residual
//!   false sharing in Maxflow and Raytrace);
//! - locks are always padded.

use crate::plan::{LayoutPlan, ObjPlan};
use fsr_analysis::{AccessClass, Analysis, Pattern};
use fsr_lang::ast::{ObjectKind, Program, WORD_BYTES};

/// Tunable heuristic thresholds.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Coherence-block size the layout targets.
    pub block_bytes: u32,
    /// Write weight must exceed read weight by this factor to transform
    /// data whose reads are shared *with* locality.
    pub write_dominance: f64,
    /// Minimum fraction of the program's total access weight a shared
    /// structure needs before pad & align is applied.
    pub pad_weight_frac: f64,
    /// When set, run the race lint (`fsr_analysis::races`) and refuse
    /// pad & align / indirection on objects with reported races: their
    /// access summaries describe unsynchronized behaviour the program may
    /// depend on timing for, so restructuring them is not trustworthy.
    /// Off by default — the paper's compiler transforms racy counters
    /// too, and the reproduction keeps that behaviour unless asked.
    pub refuse_racy: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            block_bytes: 128,
            write_dominance: 10.0,
            pad_weight_frac: 0.01,
            refuse_racy: false,
        }
    }
}

impl PlanConfig {
    pub fn with_block(block_bytes: u32) -> PlanConfig {
        PlanConfig {
            block_bytes,
            ..Default::default()
        }
    }
}

/// Do the reads permit restructuring for processor locality?
fn reads_allow_restructure(c: &AccessClass, cfg: &PlanConfig) -> bool {
    match c.read.pattern {
        Pattern::None | Pattern::PerProcess | Pattern::OneProc => true,
        Pattern::Shared => {
            // Read-shared without locality: restructuring costs nothing.
            if !c.read.has_spatial_locality() {
                true
            } else {
                // Read-shared with locality: only when writes dominate.
                c.write.weight >= cfg.write_dominance * c.read.weight
            }
        }
    }
}

/// Compute the transformation plan for a program from its analysis.
pub fn plan_for(prog: &Program, analysis: &Analysis, cfg: &PlanConfig) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(cfg.block_bytes);

    // Objects the race lint flags as genuinely racy (only computed when
    // the config opts in).
    let racy: std::collections::BTreeSet<fsr_lang::ast::ObjId> = if cfg.refuse_racy {
        fsr_analysis::races::detect(prog, analysis).racy_objects()
    } else {
        Default::default()
    };

    // Locks are always padded (§3.2 "Locks").
    for (oid, obj) in prog
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| (fsr_lang::ast::ObjId(i as u32), o))
    {
        if obj.kind == ObjectKind::Lock {
            plan.insert(oid, ObjPlan::PadLock, "locks are always padded");
        }
    }

    // Group id allocation for gathered per-process vectors: all
    // transposed objects whose per-process region is smaller than a block
    // share group 0, so their per-process slices co-locate.
    let small_group: u32 = 0;

    // Field-level indirection candidates are gathered per object.
    let mut indirect_fields: std::collections::BTreeMap<fsr_lang::ast::ObjId, Vec<_>> =
        std::collections::BTreeMap::new();

    for c in &analysis.classes {
        let obj = prog.object(c.obj);
        if !matches!(obj.kind, ObjectKind::SharedData) {
            continue;
        }
        if c.write.pattern == Pattern::PerProcess && reads_allow_restructure(c, cfg) {
            match (c.field, c.owner_map) {
                (None, Some(owner)) => {
                    // Statically transposable: group & transpose. Gathering
                    // several objects' per-process slices into one block is
                    // only safe when the object is *accessed* per-process
                    // on both sides — co-locating read-shared data with
                    // another object's per-process writes would create the
                    // very false sharing we are removing.
                    let per_proc_elems = obj.elem_count() / (analysis.nproc.max(1) as u64);
                    let per_proc_bytes =
                        per_proc_elems * (prog.elem_words(obj.elem) as u64) * WORD_BYTES as u64;
                    let private_reads = matches!(
                        c.read.pattern,
                        Pattern::None | Pattern::PerProcess | Pattern::OneProc
                    );
                    let group = if per_proc_bytes < cfg.block_bytes as u64 && private_reads {
                        Some(small_group)
                    } else {
                        None
                    };
                    plan.insert(
                        c.obj,
                        ObjPlan::Transpose { owner, group },
                        format!(
                            "per-process writes (owner {:?}); reads {:?}",
                            owner, c.read.pattern
                        ),
                    );
                }
                (Some(f), _) => {
                    // Per-process field of an aggregate that cannot be
                    // statically regrouped: indirection.
                    indirect_fields.entry(c.obj).or_default().push(f);
                }
                (None, None) => {
                    // Per-process but not statically transposable (e.g.
                    // run-time partition arrays): indirection of whole
                    // elements.
                    if !racy.contains(&c.obj) {
                        plan.insert(
                            c.obj,
                            ObjPlan::Indirect { fields: vec![] },
                            "per-process writes with run-time partition; \
                             elements moved to per-process arenas",
                        );
                    }
                }
            }
            continue;
        }

        // Pad & align: shared on both sides, no processor or spatial
        // locality, and frequent enough to matter.
        let both_shared = c.write.pattern == Pattern::Shared
            && matches!(c.read.pattern, Pattern::Shared | Pattern::None);
        let no_locality = !c.write.has_spatial_locality() && !c.read.has_spatial_locality();
        let frequent = c.total_weight() >= cfg.pad_weight_frac * analysis.total_weight;
        if both_shared && no_locality && frequent && !racy.contains(&c.obj) {
            // Padding is only useful when elements are currently smaller
            // than a block (otherwise layout is unchanged).
            let elem_bytes = prog.elem_words(obj.elem) * WORD_BYTES;
            if elem_bytes < cfg.block_bytes {
                // Never pad huge arrays: the paper pads records and busy
                // scalars. Cap the padded footprint growth at 64 blocks.
                if obj.elem_count() <= 64 {
                    plan.insert(
                        c.obj,
                        ObjPlan::PadElems,
                        "write-shared without processor or spatial locality",
                    );
                }
            }
        }
    }

    // Merge field-level indirection decisions. If a struct object was
    // already planned (e.g. transposed as a whole), field indirection is
    // unnecessary.
    for (oid, mut fields) in indirect_fields {
        if plan.get(oid).is_some() || racy.contains(&oid) {
            continue;
        }
        fields.sort();
        fields.dedup();
        plan.insert(
            oid,
            ObjPlan::Indirect { fields },
            "per-process fields embedded in a shared aggregate",
        );
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsr_analysis::{analyze, OwnerMap};

    fn make_plan(src: &str) -> (fsr_lang::Program, LayoutPlan) {
        let prog = fsr_lang::compile(src).unwrap();
        let a = analyze(&prog).unwrap();
        let plan = plan_for(&prog, &a, &PlanConfig::default());
        (prog, plan)
    }

    fn directive<'a>(
        prog: &fsr_lang::Program,
        plan: &'a LayoutPlan,
        name: &str,
    ) -> Option<&'a ObjPlan> {
        let (oid, _) = prog.object_by_name(name)?;
        plan.get(oid)
    }

    #[test]
    fn per_proc_counter_vector_transposed_and_grouped() {
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 100 {
                 c[p] = c[p] + 1; } } }",
        );
        match directive(&p, &plan, "c") {
            Some(ObjPlan::Transpose { owner, group }) => {
                assert_eq!(*owner, OwnerMap::Dim { dim: 0 });
                assert_eq!(*group, Some(0)); // 4 bytes/proc < 128B block
            }
            other => panic!("expected transpose, got {other:?}"),
        }
    }

    #[test]
    fn big_per_proc_rows_not_grouped() {
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int m[64][NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 64 {
                 m[i][p] = m[i][p] + 1; } } }",
        );
        match directive(&p, &plan, "m") {
            // 64 elems * 4B = 256B per proc >= 128B block: own region.
            Some(ObjPlan::Transpose { group, .. }) => assert_eq!(*group, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locks_always_padded() {
        let (p, plan) = make_plan(
            "param NPROC = 2; shared lock lk[8]; shared int x;
             fn main() { forall p in 0 .. NPROC { lock(lk[p]); x = x + 1; unlock(lk[p]); } }",
        );
        assert_eq!(directive(&p, &plan, "lk"), Some(&ObjPlan::PadLock));
    }

    #[test]
    fn busy_shared_scalar_padded() {
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int hot; shared int other;
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 1000 { hot = hot + 1; }
                 other = other + 1;
             } }",
        );
        assert_eq!(directive(&p, &plan, "hot"), Some(&ObjPlan::PadElems));
        // `other` is infrequent: below the pad threshold.
        assert_eq!(directive(&p, &plan, "other"), None);
    }

    #[test]
    fn underestimated_scalar_missed() {
        // Accesses inside a `while` loop (static trip estimate 8) behind
        // nested data-dependent branches (0.5^k) get a tiny static weight
        // even when they are dynamically hot — the paper's
        // Maxflow/Raytrace residual-false-sharing mechanism.
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int busy; shared int work[4096];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 1024 {
                     work[i * NPROC + p] = work[i * NPROC + p] + 1;
                 }
                 var going = 1;
                 while (going > 0) {
                     if (prand(going) % 2 == 0) { if (prand(going + 1) % 2 == 0) {
                         if (prand(going + 2) % 2 == 0) {
                             busy = busy + 1;
                         }
                     } }
                     going = going - 1;
                 }
             } }",
        );
        assert_eq!(directive(&p, &plan, "busy"), None);
    }

    #[test]
    fn refuse_racy_skips_pad_on_racy_scalar() {
        // Same program as `busy_shared_scalar_padded`: `hot` genuinely
        // races (unsynchronized read-modify-write by all processes). With
        // refuse_racy on, pad & align backs off; a lock-guarded variant
        // is still padded.
        let src = "param NPROC = 4; shared int hot; shared int other;
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 1000 { hot = hot + 1; }
                 other = other + 1;
             } }";
        let prog = fsr_lang::compile(src).unwrap();
        let a = analyze(&prog).unwrap();
        let cfg = PlanConfig {
            refuse_racy: true,
            ..Default::default()
        };
        let plan = plan_for(&prog, &a, &cfg);
        assert_eq!(directive(&prog, &plan, "hot"), None);

        let guarded = "param NPROC = 4; shared int hot; shared lock lk;
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 1000 { lock(lk); hot = hot + 1; unlock(lk); }
             } }";
        let prog = fsr_lang::compile(guarded).unwrap();
        let a = analyze(&prog).unwrap();
        let plan = plan_for(&prog, &a, &cfg);
        assert_eq!(directive(&prog, &plan, "hot"), Some(&ObjPlan::PadElems));
    }

    #[test]
    fn sequentially_scanned_array_not_padded() {
        // Shared, but unit-stride scans: spatial locality wins.
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int seq[64];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 64 { seq[i] = seq[i] + 1; } } }",
        );
        assert_eq!(directive(&p, &plan, "seq"), None);
    }

    #[test]
    fn partitioned_via_runtime_partition_gets_indirection() {
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 var q;
                 for q in 0 .. NPROC + 1 { first[q] = q * 64; }
                 forall p in 0 .. NPROC {
                     var i; var t;
                     for t in 0 .. 50 {
                     for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; }
                     }
                 }
             }",
        );
        match directive(&p, &plan, "d") {
            Some(ObjPlan::Indirect { fields }) => assert!(fields.is_empty()),
            other => panic!("expected indirection, got {other:?}"),
        }
    }

    #[test]
    fn per_proc_struct_field_gets_field_indirection() {
        let (p, plan) = make_plan(
            "param NPROC = 4; struct Node { int key; int acc; }
             shared Node nodes[64];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 16 {
                     // key: read-shared scan; acc: per-process writes at
                     // data-dependent nodes — detected per-process via the
                     // interleave and thus field-indirected.
                     nodes[i * NPROC + p].acc = nodes[i * NPROC + p].acc + 1;
                 }
             } }",
        );
        match directive(&p, &plan, "nodes") {
            Some(ObjPlan::Indirect { fields }) => {
                assert_eq!(fields.len(), 1); // the `acc` field
            }
            other => panic!("expected field indirection, got {other:?}"),
        }
    }

    #[test]
    fn read_dominated_shared_reads_blocks_transform() {
        // Per-process writes but heavy shared unit-stride reads: the
        // spatial locality of the readers wins (no transform without
        // write dominance).
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int v[NPROC];
             fn main() { forall p in 0 .. NPROC {
                 var t; var i; var s;
                 s = 0;
                 v[p] = p;
                 for t in 0 .. 1000 {
                     for i in 0 .. NPROC { s = s + v[i]; }
                 }
             } }",
        );
        assert_eq!(directive(&p, &plan, "v"), None);
    }

    #[test]
    fn write_dominance_overrides_read_locality() {
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int v[NPROC];
             fn main() { forall p in 0 .. NPROC {
                 var i; var s;
                 s = 0;
                 for i in 0 .. 2000 { v[p] = v[p] + 1; }
                 for i in 0 .. 4 { s = s + v[i % NPROC]; }
             } }",
        );
        assert!(matches!(
            directive(&p, &plan, "v"),
            Some(ObjPlan::Transpose { .. })
        ));
    }

    #[test]
    fn revolving_partition_left_alone() {
        // Topopt pattern: partition recomputed each phase — analysis
        // cannot prove disjointness; unit-stride writes look spatially
        // local, so pad & align does not fire either.
        let (p, plan) = make_plan(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 forall p in 0 .. NPROC {
                     var t; var i;
                     for t in 0 .. 10 {
                         if (p == 0) {
                             var q;
                             for q in 0 .. NPROC + 1 { first[q] = (q * 64 + t * 4) % 256; }
                         }
                         barrier;
                         for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; }
                         barrier;
                     }
                 }
             }",
        );
        assert_eq!(directive(&p, &plan, "d"), None);
    }
}
