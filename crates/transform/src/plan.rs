//! Layout plan data model.

use fsr_analysis::OwnerMap;
use fsr_lang::ast::{FieldId, ObjId};
use std::collections::BTreeMap;

/// The transformation chosen for one object.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ObjPlan {
    /// Group & transpose: elements regrouped by owning process; each
    /// process's region is padded to a cache-block multiple. Objects
    /// sharing a `group` id have their per-process regions co-located
    /// (the *grouping* of several small per-process vectors).
    Transpose { owner: OwnerMap, group: Option<u32> },
    /// Indirection: listed struct fields (or, for int arrays, the whole
    /// element when `fields` is empty) move into per-process arenas; the
    /// original storage holds a pointer, dereferenced on every access.
    Indirect { fields: Vec<FieldId> },
    /// Pad & align every element to a cache-block boundary.
    PadElems,
    /// One cache block per lock.
    PadLock,
}

/// A complete layout plan for a program at a given coherence-block size.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct LayoutPlan {
    pub block_bytes: u32,
    pub directives: BTreeMap<ObjId, ObjPlan>,
    /// Human-readable reasons, for reports (object id -> reason).
    pub reasons: BTreeMap<ObjId, String>,
}

impl LayoutPlan {
    /// The identity plan: original layout, nothing transformed.
    pub fn unoptimized(block_bytes: u32) -> LayoutPlan {
        LayoutPlan {
            block_bytes,
            directives: BTreeMap::new(),
            reasons: BTreeMap::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    pub fn get(&self, obj: ObjId) -> Option<&ObjPlan> {
        self.directives.get(&obj)
    }

    pub fn insert(&mut self, obj: ObjId, plan: ObjPlan, reason: impl Into<String>) {
        self.directives.insert(obj, plan);
        self.reasons.insert(obj, reason.into());
    }

    /// Remove directives of a given kind — used by the ablation benches to
    /// measure each transformation's isolated contribution.
    pub fn retain_kind(&self, keep: impl Fn(&ObjPlan) -> bool) -> LayoutPlan {
        let mut out = LayoutPlan::unoptimized(self.block_bytes);
        for (obj, p) in &self.directives {
            if keep(p) {
                out.directives.insert(*obj, p.clone());
                if let Some(r) = self.reasons.get(obj) {
                    out.reasons.insert(*obj, r.clone());
                }
            }
        }
        out
    }

    /// Count directives by kind: (transpose, indirect, pad, locks).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for p in self.directives.values() {
            match p {
                ObjPlan::Transpose { .. } => t.0 += 1,
                ObjPlan::Indirect { .. } => t.1 += 1,
                ObjPlan::PadElems => t.2 += 1,
                ObjPlan::PadLock => t.3 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unoptimized_plan_is_empty() {
        let p = LayoutPlan::unoptimized(128);
        assert!(p.is_empty());
        assert_eq!(p.block_bytes, 128);
        assert_eq!(p.counts(), (0, 0, 0, 0));
    }

    #[test]
    fn insert_and_get() {
        let mut p = LayoutPlan::unoptimized(64);
        p.insert(ObjId(3), ObjPlan::PadElems, "busy shared scalar");
        assert_eq!(p.get(ObjId(3)), Some(&ObjPlan::PadElems));
        assert!(p.reasons[&ObjId(3)].contains("busy"));
    }

    #[test]
    fn retain_kind_filters() {
        let mut p = LayoutPlan::unoptimized(64);
        p.insert(ObjId(0), ObjPlan::PadLock, "lock");
        p.insert(ObjId(1), ObjPlan::PadElems, "scalar");
        p.insert(
            ObjId(2),
            ObjPlan::Transpose {
                owner: OwnerMap::Dim { dim: 0 },
                group: None,
            },
            "per-proc",
        );
        let only_locks = p.retain_kind(|d| matches!(d, ObjPlan::PadLock));
        assert_eq!(only_locks.counts(), (0, 0, 0, 1));
        assert_eq!(p.counts(), (1, 0, 1, 1));
    }
}
