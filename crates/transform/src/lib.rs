//! Transformation heuristics and layout plans.
//!
//! Implements §3.3 of Jeremiassen & Eggers (PPoPP'95): given the
//! per-data-structure sharing classification from `fsr-analysis`, decide
//! which of the four shared-data transformations to apply to each
//! structure:
//!
//! - **group & transpose** — per-process written data whose element→owner
//!   map is statically known is regrouped so each process's elements are
//!   contiguous and padded to cache-block boundaries; small per-process
//!   vectors are gathered into one per-process block (*grouping*).
//! - **indirection** — per-process written data embedded where a static
//!   regrouping is impossible (struct fields of dynamically-partitioned
//!   aggregates, or arrays partitioned through run-time partition arrays)
//!   is moved into per-process arenas behind a pointer.
//! - **pad & align** — write-shared data with no processor or spatial
//!   locality gets one cache block per element.
//! - **lock padding** — locks always get their own cache block.
//!
//! The output is a [`LayoutPlan`]: a set of per-object directives that
//! `fsr-layout` turns into concrete addresses. Applying transformations at
//! the layout level keeps program *semantics* bit-identical (testable as a
//! property) while changing the address stream — exactly what a
//! source-to-source restructurer effects through declarations.

pub mod advise;
pub mod heuristics;
pub mod plan;
pub mod report;

pub use advise::{advise, advise_diagnostics, Advice};
pub use heuristics::{plan_for, PlanConfig};
pub use plan::{LayoutPlan, ObjPlan};
