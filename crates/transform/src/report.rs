//! Rendering of transformation plans: the decision table and the
//! "restructured source" a source-to-source compiler would emit.

use crate::plan::{LayoutPlan, ObjPlan};
use fsr_analysis::OwnerMap;
use fsr_lang::ast::{ElemTy, ObjId, Program, WORD_BYTES};
use std::fmt::Write;

/// Render the plan as a decision table.
pub fn render(prog: &Program, plan: &LayoutPlan) -> String {
    let mut out = String::new();
    writeln!(out, "layout plan (block = {} bytes)", plan.block_bytes).unwrap();
    if plan.is_empty() {
        writeln!(out, "  (no transformations)").unwrap();
        return out;
    }
    for (oid, p) in &plan.directives {
        let obj = prog.object(*oid);
        let what = match p {
            ObjPlan::Transpose { owner, group } => {
                let o = match owner {
                    OwnerMap::Dim { dim } => format!("owner=dim{dim}"),
                    OwnerMap::Chunk { chunk } => format!("owner=chunk({chunk})"),
                    OwnerMap::Interleave { stride, base } => {
                        format!("owner=cyclic({stride},{base})")
                    }
                };
                match group {
                    Some(g) => format!("group&transpose [{o}, group {g}]"),
                    None => format!("group&transpose [{o}]"),
                }
            }
            ObjPlan::Indirect { fields } if fields.is_empty() => "indirection".to_string(),
            ObjPlan::Indirect { fields } => {
                let names: Vec<String> = match obj.elem {
                    ElemTy::Struct(sid) => fields
                        .iter()
                        .map(|f| prog.struct_(sid).fields[f.index()].name.clone())
                        .collect(),
                    _ => fields.iter().map(|f| format!("f{}", f.0)).collect(),
                };
                format!("indirection [fields: {}]", names.join(", "))
            }
            ObjPlan::PadElems => "pad & align".to_string(),
            ObjPlan::PadLock => "pad lock".to_string(),
        };
        let why = plan
            .reasons
            .get(oid)
            .map(String::as_str)
            .unwrap_or_default();
        writeln!(out, "  {:<20} {:<44} {}", obj.name, what, why).unwrap();
    }
    out
}

/// Render the transformed declarations the way a source-to-source
/// restructurer would emit them, followed by the (unchanged) code.
pub fn render_transformed_source(prog: &Program, plan: &LayoutPlan, nproc: i64) -> String {
    let mut out = String::new();
    let block_words = (plan.block_bytes / WORD_BYTES).max(1) as u64;
    for (i, obj) in prog.objects.iter().enumerate() {
        let oid = ObjId(i as u32);
        let Some(p) = plan.get(oid) else { continue };
        match p {
            ObjPlan::Transpose { .. } => {
                let elems = obj.elem_count();
                let per_proc = elems.div_ceil(nproc.max(1) as u64);
                let padded = (per_proc * prog.elem_words(obj.elem) as u64).div_ceil(block_words)
                    * block_words;
                writeln!(
                    out,
                    "// group&transpose: {n}[{d}] -> {n}_T[NPROC][{padded}w]",
                    n = obj.name,
                    d = obj
                        .dims
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join("]["),
                )
                .unwrap();
            }
            ObjPlan::Indirect { .. } => {
                writeln!(
                    out,
                    "// indirection: {n}.* -> per-process arena; {n} holds pointers",
                    n = obj.name
                )
                .unwrap();
            }
            ObjPlan::PadElems => {
                writeln!(
                    out,
                    "// pad&align: each element of {} padded to {} bytes",
                    obj.name, plan.block_bytes
                )
                .unwrap();
            }
            ObjPlan::PadLock => {
                writeln!(
                    out,
                    "// pad lock: each lock of {} in its own {}-byte block",
                    obj.name, plan.block_bytes
                )
                .unwrap();
            }
        }
    }
    out.push_str(&fsr_lang::pretty::program(prog));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{plan_for, PlanConfig};

    #[test]
    fn report_names_transformations() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC]; shared lock lk;
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 100 {
                 lock(lk); c[p] = c[p] + 1; unlock(lk); } } }",
        )
        .unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = plan_for(&prog, &a, &PlanConfig::default());
        let r = render(&prog, &plan);
        assert!(r.contains("group&transpose"));
        assert!(r.contains("pad lock"));
        let src = render_transformed_source(&prog, &plan, 4);
        assert!(src.contains("group&transpose"));
        assert!(src.contains("forall"));
    }
}
