//! Interconnect timing models replaying classified reference streams.
//!
//! The machine replays the same stream the cache simulator classifies
//! and accounts cycles per processor. Topology and transaction routing
//! are pluggable behind the [`Interconnect`] trait:
//!
//! - [`Ksr2Ring`] (the default) models the paper's 56-processor KSR2:
//!   processors arranged on rings of 32; a miss serviced within the
//!   requester's ring costs 175 cycles, a miss serviced by a processor
//!   on another ring costs 600 cycles; cold/capacity misses are served
//!   by the local ALLCACHE partition without touching a ring.
//! - [`Bus`] is a flat bus/crossbar: one shared channel, uniform miss
//!   latency (no cross-ring penalty), but *every* fill occupies the
//!   single channel — it saturates earlier as processors are added.
//! - [`HomeDir`] is a DASH-style home-node directory fabric: one
//!   channel per node, every miss and upgrade visits the referenced
//!   block's address-interleaved home (`block % nproc`), and a dirty
//!   third-party owner turns a 2-hop fill into a 3-hop forward. Pair it
//!   with the `directory` protocol.
//!
//! Channel ids are interconnect-defined — ring index for [`Ksr2Ring`],
//! always 0 for [`Bus`], home-node id for [`HomeDir`]. Every coherence
//! transaction (miss fill or invalidating upgrade) *occupies* its
//! channel(s) for a fixed number of slot cycles, so aggregate coherence
//! traffic is bounded by interconnect bandwidth: as more processors
//! generate misses — in particular the superlinear ping-pong traffic of
//! falsely shared blocks — queueing delay grows and the speedup curve
//! rolls over, reproducing the paper's scalability collapse for
//! unoptimized programs.
//!
//! The models deliberately stay analytic (per-channel next-free-time
//! counters, no packet-level simulation): the paper's execution-time
//! observations depend on latency and bandwidth saturation, not on
//! interconnect micro-ordering. See DESIGN.md "Substitutions".

use fsr_sim::{MissKind, Outcome};

/// Which interconnect topology the timing model replays against. A
/// plain selector enum so machine configurations stay `Copy`; resolved
/// to a `&'static dyn Interconnect` at model construction.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum InterconnectKind {
    #[default]
    /// KSR2-like two-level ring hierarchy (the paper's machine).
    Ksr2Ring,
    /// Flat single-channel bus/crossbar with uniform miss latency.
    Bus,
    /// Home-node directory fabric: per-node channels, 2/3-hop misses.
    HomeDir,
}

impl InterconnectKind {
    pub const ALL: [InterconnectKind; 3] = [
        InterconnectKind::Ksr2Ring,
        InterconnectKind::Bus,
        InterconnectKind::HomeDir,
    ];

    pub fn name(self) -> &'static str {
        match self {
            InterconnectKind::Ksr2Ring => "ksr2-ring",
            InterconnectKind::Bus => "bus",
            InterconnectKind::HomeDir => "home-dir",
        }
    }

    /// The trait instance this selector names.
    pub fn interconnect(self) -> &'static dyn Interconnect {
        match self {
            InterconnectKind::Ksr2Ring => &Ksr2Ring,
            InterconnectKind::Bus => &Bus,
            InterconnectKind::HomeDir => &HomeDir,
        }
    }
}

/// Machine parameters (defaults approximate the KSR2).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct MachineConfig {
    /// Processors per ring (KSR2: 32 per ring, two rings for 56 procs).
    /// Only the ring topology reads this; the bus has one channel and
    /// the home-directory fabric one channel per node regardless.
    pub procs_per_ring: u32,
    /// Latency of a miss served by the processor's local second-level
    /// (ALLCACHE) partition: cold and capacity misses.
    pub l2_miss_cycles: u64,
    /// Miss latency when serviced within the requester's ring.
    pub local_miss_cycles: u64,
    /// Miss latency when serviced from another ring.
    pub remote_miss_cycles: u64,
    /// Latency of an invalidating upgrade (no data transfer).
    pub upgrade_cycles: u64,
    /// Channel occupancy of a miss fill (block transfer slots).
    pub miss_occupancy: u64,
    /// Channel occupancy of an upgrade/invalidate transaction.
    pub upgrade_occupancy: u64,
    /// Channel occupancy per remote cache invalidated: each invalidation
    /// is a coherence message the interconnect must carry, which is what
    /// makes false-sharing traffic grow *superlinearly* with the
    /// processor count (every ping-pong write invalidates every current
    /// sharer).
    pub invalidation_occupancy: u64,
    /// Fixed cost of a barrier episode (hardware barrier / flag tree).
    pub barrier_cycles: u64,
    /// Latency of a 3-hop directory miss: requester → home → dirty
    /// owner → requester. Only the home-directory fabric reads this.
    pub three_hop_miss_cycles: u64,
    /// Directory lookup overhead a remote home adds to every
    /// transaction it mediates. Only the home-directory fabric reads
    /// this.
    pub dir_lookup_cycles: u64,
    /// Topology the timing model routes transactions over.
    pub interconnect: InterconnectKind,
}

fn default_three_hop_miss_cycles() -> u64 {
    270
}

fn default_dir_lookup_cycles() -> u64 {
    25
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            procs_per_ring: 32,
            l2_miss_cycles: 30,
            local_miss_cycles: 175,
            remote_miss_cycles: 600,
            upgrade_cycles: 90,
            miss_occupancy: 8,
            upgrade_occupancy: 4,
            invalidation_occupancy: 4,
            barrier_cycles: 60,
            three_hop_miss_cycles: default_three_hop_miss_cycles(),
            dir_lookup_cycles: default_dir_lookup_cycles(),
            interconnect: InterconnectKind::Ksr2Ring,
        }
    }
}

/// How one non-hit transaction travels the interconnect: its latency,
/// the slot cycles it holds its channel(s) for (invalidation traffic
/// included), and which channels it involves — up to three distinct
/// ones (requester, home, forwarded-to owner for a 3-hop directory
/// miss; snooping topologies use at most two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    pub latency: u64,
    pub occupancy: u64,
    pub channels: [Option<usize>; 3],
    /// Directory transaction hop count: 2 (home supplies) or 3 (home
    /// forwards to a dirty owner). 0 for snooping topologies, where the
    /// notion doesn't apply.
    pub hops: u8,
}

impl Route {
    /// A snooping-topology route (no hop classification).
    fn snoop(latency: u64, occupancy: u64, first: usize, second: Option<usize>) -> Route {
        Route {
            latency,
            occupancy,
            channels: [Some(first), second, None],
            hops: 0,
        }
    }
}

/// Topology + per-transaction routing of a timing backend. The shared
/// replay machinery (per-processor clocks, channel next-free-time
/// counters, stall attribution) lives in [`TimingModel`]; an
/// interconnect only decides *where* a transaction goes and *what it
/// costs*.
pub trait Interconnect: Sync {
    fn kind(&self) -> InterconnectKind;

    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Number of shared channels an `nproc`-processor machine has.
    fn num_channels(&self, cfg: &MachineConfig, nproc: u32) -> usize;

    /// The channel a processor's own node sits on (its ring for the
    /// KSR2 hierarchy, channel 0 for the bus, its home-node channel for
    /// the directory fabric).
    fn channel_of(&self, cfg: &MachineConfig, pid: u32) -> usize;

    /// Route one non-hit transaction (`outcome.hit()` is false).
    /// `nproc` is the machine size — home-node topologies interleave
    /// `outcome.block` across it to find the home.
    fn route(&self, cfg: &MachineConfig, nproc: u32, pid: u32, outcome: &Outcome) -> Route;
}

/// The paper's machine: processors on rings of `procs_per_ring`;
/// cold/capacity misses served by the local ALLCACHE level (no ring
/// occupancy), sharing misses pay local or cross-ring latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ksr2Ring;

impl Interconnect for Ksr2Ring {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::Ksr2Ring
    }

    fn num_channels(&self, cfg: &MachineConfig, nproc: u32) -> usize {
        nproc.div_ceil(cfg.procs_per_ring).max(1) as usize
    }

    fn channel_of(&self, cfg: &MachineConfig, pid: u32) -> usize {
        (pid / cfg.procs_per_ring) as usize
    }

    fn route(&self, cfg: &MachineConfig, _nproc: u32, pid: u32, outcome: &Outcome) -> Route {
        let my_ring = self.channel_of(cfg, pid);
        let inval_occ = outcome.invalidations as u64 * cfg.invalidation_occupancy;
        let (latency, occupancy, remote_ring) = if let Some(kind) = outcome.miss {
            let remote = outcome
                .supplier
                .map(|s| self.channel_of(cfg, s as u32))
                .filter(|&r| r != my_ring);
            // Cold/capacity misses with no remote supplier are served by
            // the local ALLCACHE level; sharing misses travel the ring.
            let served_locally = outcome.supplier.is_none()
                && matches!(kind, MissKind::Cold | MissKind::Replacement);
            let lat = if served_locally {
                cfg.l2_miss_cycles
            } else if remote.is_some() {
                cfg.remote_miss_cycles
            } else {
                cfg.local_miss_cycles
            };
            let occ = if served_locally {
                0
            } else {
                cfg.miss_occupancy
            };
            (lat, occ, remote)
        } else {
            // Upgrade.
            (cfg.upgrade_cycles, cfg.upgrade_occupancy, None)
        };
        Route::snoop(latency, occupancy + inval_occ, my_ring, remote_ring)
    }
}

/// Flat bus/crossbar: one shared channel, uniform memory access. A
/// sharing miss costs the local-miss latency wherever the supplier
/// sits (no cross-ring penalty), cold/capacity misses cost the L2
/// latency — but *every* fill occupies the single channel, so the bus
/// saturates as processors are added where the ring hierarchy still
/// has headroom.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bus;

impl Interconnect for Bus {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::Bus
    }

    fn num_channels(&self, _cfg: &MachineConfig, _nproc: u32) -> usize {
        1
    }

    fn channel_of(&self, _cfg: &MachineConfig, _pid: u32) -> usize {
        0
    }

    fn route(&self, cfg: &MachineConfig, _nproc: u32, _pid: u32, outcome: &Outcome) -> Route {
        let inval_occ = outcome.invalidations as u64 * cfg.invalidation_occupancy;
        let (latency, occupancy) = if let Some(kind) = outcome.miss {
            let served_by_memory = outcome.supplier.is_none()
                && matches!(kind, MissKind::Cold | MissKind::Replacement);
            let lat = if served_by_memory {
                cfg.l2_miss_cycles
            } else {
                cfg.local_miss_cycles
            };
            // Memory sits on the bus: every fill holds the channel.
            (lat, cfg.miss_occupancy)
        } else {
            (cfg.upgrade_cycles, cfg.upgrade_occupancy)
        };
        Route::snoop(latency, occupancy + inval_occ, 0, None)
    }
}

/// DASH-style home-node directory fabric: memory and directory state
/// are interleaved across the nodes by block index (`block % nproc`),
/// and every miss or upgrade is mediated by the home. Channel id =
/// node id, so the *home's* channel absorbs the occupancy of every
/// transaction on its blocks — a falsely shared block hammers one home
/// node rather than spreading over a broadcast medium, which is exactly
/// the contention shift the directory ablation measures.
///
/// Cost model (all transactions also pay `dir_lookup_cycles` unless the
/// requester *is* the home):
///
/// - clean block, requester is home → `l2_miss_cycles`, no occupancy
///   (a purely local fill, like the ring's ALLCACHE serve);
/// - clean block, remote home → 2-hop fill at `local_miss_cycles`;
/// - dirty owner is the home → 2-hop fill at `local_miss_cycles`;
/// - dirty third-party owner → 3-hop forward at
///   `three_hop_miss_cycles`, occupying the owner's channel too;
/// - upgrade → `upgrade_cycles`, plus one invalidation message per
///   presence bit (`invalidation_occupancy` each) charged at the home.
#[derive(Debug, Clone, Copy, Default)]
pub struct HomeDir;

impl Interconnect for HomeDir {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::HomeDir
    }

    fn num_channels(&self, _cfg: &MachineConfig, nproc: u32) -> usize {
        nproc.max(1) as usize
    }

    fn channel_of(&self, _cfg: &MachineConfig, pid: u32) -> usize {
        pid as usize
    }

    fn route(&self, cfg: &MachineConfig, nproc: u32, pid: u32, outcome: &Outcome) -> Route {
        let requester = pid as usize;
        let home = (outcome.block % nproc.max(1)) as usize;
        let lookup = if home == requester {
            0
        } else {
            cfg.dir_lookup_cycles
        };
        let inval_occ = outcome.invalidations as u64 * cfg.invalidation_occupancy;
        // Third-party dirty owner the home must forward to (owner == home
        // or owner == requester stays 2-hop).
        let forwarded = outcome
            .supplier
            .map(|s| s as usize)
            .filter(|&o| o != home && o != requester);
        let (latency, occupancy, hops) = if outcome.miss.is_some() {
            if let Some(_owner) = forwarded {
                (cfg.three_hop_miss_cycles + lookup, cfg.miss_occupancy, 3)
            } else if home == requester && outcome.supplier.is_none() {
                // Local home with a clean block: fill from the node's own
                // memory, no fabric occupancy.
                (cfg.l2_miss_cycles, 0, 2)
            } else {
                (cfg.local_miss_cycles + lookup, cfg.miss_occupancy, 2)
            }
        } else {
            (cfg.upgrade_cycles + lookup, cfg.upgrade_occupancy, 2)
        };
        // `forwarded` excludes both home and requester, so the three
        // channels are distinct by construction.
        Route {
            latency,
            occupancy: occupancy + inval_occ,
            channels: [
                Some(home),
                (home != requester).then_some(requester),
                forwarded,
            ],
            hops,
        }
    }
}

/// Cycle accounting per processor plus stall attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TimingStats {
    /// Busy (compute + cache hit) cycles, per processor.
    pub busy: Vec<u64>,
    /// Memory stall cycles, per processor.
    pub stall: Vec<u64>,
    /// Of which: queueing delay waiting for the interconnect.
    pub queue: Vec<u64>,
    /// Stall cycles attributed to each miss kind (global).
    pub stall_by_kind: [u64; MissKind::COUNT],
    /// Stall cycles from upgrades.
    pub upgrade_stall: u64,
    /// Occupancy slot cycles charged per channel (per home node under
    /// the directory fabric — its hot spots; per ring on the KSR2).
    pub channel_busy: Vec<u64>,
    /// Directory transactions the home satisfied itself (2-hop).
    pub two_hop: u64,
    /// Directory transactions forwarded to a dirty owner (3-hop).
    pub three_hop: u64,
    /// Work-steal clock joins applied (one per steal event in the
    /// trace; always 0 under the round-robin schedule).
    pub steal_joins: u64,
}

impl TimingStats {
    /// Total interconnect queueing stall across processors.
    pub fn total_queue(&self) -> u64 {
        self.queue.iter().sum()
    }

    /// The busiest channel's occupancy cycles — the hottest home node
    /// under the directory fabric.
    pub fn max_channel_busy(&self) -> u64 {
        self.channel_busy.iter().copied().max().unwrap_or(0)
    }
}

/// What one recorded reference cost its processor, so callers (which
/// know the referenced address) can attribute interconnect pressure per
/// object. Zero for hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxCost {
    /// Total stall cycles (latency + queueing).
    pub stall: u64,
    /// Of which: queueing delay waiting for the channel(s).
    pub queue: u64,
}

/// The timing model: feed it the same stream the cache simulator
/// classifies, then read the execution time.
#[derive(Debug)]
pub struct TimingModel {
    cfg: MachineConfig,
    interconnect: &'static dyn Interconnect,
    nproc: u32,
    proc_time: Vec<u64>,
    chan_free: Vec<u64>,
    stats: TimingStats,
}

impl std::fmt::Debug for dyn Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl TimingModel {
    pub fn new(cfg: MachineConfig, nproc: u32) -> TimingModel {
        let interconnect = cfg.interconnect.interconnect();
        let channels = interconnect.num_channels(&cfg, nproc);
        TimingModel {
            cfg,
            interconnect,
            nproc,
            proc_time: vec![0; nproc as usize],
            chan_free: vec![0; channels],
            stats: TimingStats {
                busy: vec![0; nproc as usize],
                stall: vec![0; nproc as usize],
                queue: vec![0; nproc as usize],
                channel_busy: vec![0; channels],
                ..Default::default()
            },
        }
    }

    pub fn interconnect(&self) -> &'static dyn Interconnect {
        self.interconnect
    }

    /// The channel a processor's node sits on. The name dates from the
    /// ring-only model; with trait-based interconnects it is whatever
    /// [`Interconnect::channel_of`] says — ring index (KSR2), 0 (bus),
    /// or the processor's own home-node channel (directory fabric).
    pub fn ring_of(&self, pid: u32) -> usize {
        self.interconnect.channel_of(&self.cfg, pid)
    }

    /// Account one reference: `gap` compute cycles since the processor's
    /// previous reference, then the access itself with its classified
    /// outcome. `outcome.supplier` is the remote holder when the block
    /// came from another cache. Returns what the reference cost so the
    /// caller can attribute it (per block / per object).
    pub fn record(&mut self, pid: u8, gap: u32, outcome: &Outcome) -> TxCost {
        let p = pid as usize;
        // Compute cycles plus one cycle for the (L1-hit) access itself.
        let busy = gap as u64 + 1;
        self.proc_time[p] += busy;
        self.stats.busy[p] += busy;

        if outcome.hit() {
            return TxCost::default();
        }
        self.record_tx(pid, outcome)
    }

    /// Account one chunk of classified references in lane order —
    /// the timing-side counterpart of the simulator's chunked replay.
    /// Equivalent to calling [`TimingModel::record`] per lane; the hit
    /// path (the common case) runs inline without routing, and
    /// `on_cost(lane, cost)` fires for every lane that paid queueing
    /// delay so callers can attribute it by address.
    ///
    /// Lanes must stay in order: per-processor clocks and channel
    /// next-free times evolve lane to lane, so this is a fused loop,
    /// not a reduction.
    pub fn record_chunk(
        &mut self,
        pids: &[u8],
        gaps: &[u32],
        outs: &[Outcome],
        mut on_cost: impl FnMut(usize, TxCost),
    ) {
        debug_assert_eq!(pids.len(), outs.len());
        debug_assert_eq!(gaps.len(), outs.len());
        for i in 0..outs.len() {
            let p = pids[i] as usize;
            let busy = gaps[i] as u64 + 1;
            self.proc_time[p] += busy;
            self.stats.busy[p] += busy;
            if outs[i].hit() {
                continue;
            }
            let cost = self.record_tx(pids[i], &outs[i]);
            if cost.queue > 0 {
                on_cost(i, cost);
            }
        }
    }

    /// The non-hit tail shared by [`TimingModel::record`] and
    /// [`TimingModel::record_chunk`]: route the transaction, acquire
    /// channels, account stall and queueing.
    fn record_tx(&mut self, pid: u8, outcome: &Outcome) -> TxCost {
        let p = pid as usize;
        let route = self
            .interconnect
            .route(&self.cfg, self.nproc, pid as u32, outcome);

        // Acquire the channel slot(s): wait until every channel involved
        // is free, then occupy them.
        let mut start = self.proc_time[p];
        for ch in route.channels.into_iter().flatten() {
            start = start.max(self.chan_free[ch]);
        }
        let queue_delay = start - self.proc_time[p];
        for ch in route.channels.into_iter().flatten() {
            self.chan_free[ch] = start + route.occupancy;
            self.stats.channel_busy[ch] += route.occupancy;
        }
        match route.hops {
            2 => self.stats.two_hop += 1,
            3 => self.stats.three_hop += 1,
            _ => {}
        }
        let done = start + route.latency;
        let stall = done - self.proc_time[p];
        self.proc_time[p] = done;
        self.stats.stall[p] += stall;
        self.stats.queue[p] += queue_delay;
        match outcome.miss {
            Some(kind) => self.stats.stall_by_kind[kind as usize] += stall,
            None => self.stats.upgrade_stall += stall,
        }
        TxCost {
            stall,
            queue: queue_delay,
        }
    }

    /// Synchronization point: align the listed processors' clocks to the
    /// latest among them (barrier release / spawn / join). Optionally add
    /// a fixed barrier overhead.
    pub fn sync(&mut self, pids: &[u32]) {
        let t = pids
            .iter()
            .map(|&p| self.proc_time[p as usize])
            .max()
            .unwrap_or(0)
            + self.cfg.barrier_cycles;
        for &p in pids {
            self.proc_time[p as usize] = t;
        }
    }

    /// Lock hand-off: the acquirer cannot proceed before the releaser's
    /// current time (the release happened at or before it).
    pub fn handoff(&mut self, from: u32, to: u32) {
        let t = self.proc_time[from as usize];
        let me = &mut self.proc_time[to as usize];
        if *me < t {
            *me = t;
        }
    }

    /// Work steal: the thief read the victim's deque top, so it cannot
    /// proceed before the victim's current time — the same one-way clock
    /// join as a lock hand-off.
    pub fn steal(&mut self, thief: u32, victim: u32) {
        self.stats.steal_joins += 1;
        self.handoff(victim, thief);
    }

    /// Execution time = the slowest processor.
    pub fn finish_time(&self) -> u64 {
        self.proc_time.iter().copied().max().unwrap_or(0)
    }

    pub fn stats(&self) -> &TimingStats {
        &self.stats
    }

    pub fn nproc(&self) -> u32 {
        self.nproc
    }

    /// Fraction of total cycles spent stalled on false sharing.
    pub fn false_sharing_stall_fraction(&self) -> f64 {
        let total: u64 = self.proc_time.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.stats.stall_by_kind[MissKind::FalseSharing as usize] as f64 / total as f64
    }

    /// Capture the model's *dynamic* state — processor clocks and
    /// channel next-free times — so a trace replay can stop at a phase
    /// boundary and resume later with exact channel-occupancy carryover.
    /// Cumulative statistics are not part of the snapshot: they only
    /// ever accumulate, so stopping and resuming never rewinds them.
    pub fn snapshot(&self) -> TimingSnapshot {
        TimingSnapshot {
            proc_time: self.proc_time.clone(),
            chan_free: self.chan_free.clone(),
        }
    }

    /// Restore clocks and channel occupancy captured by
    /// [`TimingModel::snapshot`]. Replaying a trace in phase segments
    /// with snapshot/restore at each boundary is bit-identical to one
    /// uninterrupted replay — dropping `chan_free` instead would forget
    /// in-flight occupancy and shrink queueing delays across the split.
    pub fn restore(&mut self, snap: &TimingSnapshot) {
        assert_eq!(snap.proc_time.len(), self.proc_time.len(), "nproc changed");
        assert_eq!(
            snap.chan_free.len(),
            self.chan_free.len(),
            "channels changed"
        );
        self.proc_time.clone_from(&snap.proc_time);
        self.chan_free.clone_from(&snap.chan_free);
    }
}

/// Dynamic timing state at a phase boundary: per-processor clocks and
/// per-channel next-free times (see [`TimingModel::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingSnapshot {
    pub proc_time: Vec<u64>,
    pub chan_free: Vec<u64>,
}

/// A speedup curve: execution times per processor count.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct SpeedupCurve {
    pub points: Vec<(u32, u64)>,
}

impl SpeedupCurve {
    pub fn push(&mut self, nproc: u32, time: u64) {
        self.points.push((nproc, time));
    }

    /// Speedups relative to the supplied uniprocessor baseline time.
    pub fn speedups(&self, t1: u64) -> Vec<(u32, f64)> {
        self.points
            .iter()
            .map(|&(p, t)| (p, if t == 0 { 0.0 } else { t1 as f64 / t as f64 }))
            .collect()
    }

    /// Maximum speedup and the processor count where it occurs (Table 3).
    pub fn max_speedup(&self, t1: u64) -> (f64, u32) {
        let mut best = (0.0f64, 1u32);
        for (p, s) in self.speedups(t1) {
            if s > best.0 {
                best = (s, p);
            }
        }
        best
    }

    /// Largest processor count at which adding processors still helped
    /// (the scaling knee).
    pub fn scaling_limit(&self, t1: u64) -> u32 {
        self.max_speedup(t1).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit() -> Outcome {
        Outcome {
            miss: None,
            block: 0,
            supplier: None,
            upgrade: false,
            invalidations: 0,
        }
    }

    fn miss(kind: MissKind, supplier: Option<u8>) -> Outcome {
        miss_at(0, kind, supplier)
    }

    fn miss_at(block: u32, kind: MissKind, supplier: Option<u8>) -> Outcome {
        Outcome {
            miss: Some(kind),
            block,
            supplier,
            upgrade: false,
            invalidations: 0,
        }
    }

    fn bus_cfg() -> MachineConfig {
        MachineConfig {
            interconnect: InterconnectKind::Bus,
            ..Default::default()
        }
    }

    fn dir_cfg() -> MachineConfig {
        MachineConfig {
            interconnect: InterconnectKind::HomeDir,
            ..Default::default()
        }
    }

    #[test]
    fn hits_cost_one_cycle_plus_gap() {
        let mut m = TimingModel::new(MachineConfig::default(), 2);
        m.record(0, 9, &hit());
        m.record(0, 0, &hit());
        assert_eq!(m.finish_time(), 11);
        assert_eq!(m.stats().busy[0], 11);
        assert_eq!(m.stats().stall[0], 0);
    }

    #[test]
    fn cold_miss_costs_l2_latency() {
        let cfg = MachineConfig::default();
        let mut m = TimingModel::new(cfg, 2);
        m.record(0, 0, &miss(MissKind::Cold, None));
        assert_eq!(m.finish_time(), 1 + cfg.l2_miss_cycles);
        // A sharing miss travels the ring even without a dirty supplier.
        let mut m2 = TimingModel::new(cfg, 2);
        m2.record(0, 0, &miss(MissKind::FalseSharing, None));
        assert_eq!(m2.finish_time(), 1 + cfg.local_miss_cycles);
    }

    #[test]
    fn cross_ring_miss_costs_remote_latency() {
        let cfg = MachineConfig::default();
        let mut m = TimingModel::new(cfg, 56);
        // Proc 0 (ring 0) misses; supplier is proc 40 (ring 1).
        m.record(0, 0, &miss(MissKind::TrueSharing, Some(40)));
        assert_eq!(m.finish_time(), 1 + cfg.remote_miss_cycles);
        // Same-ring supplier: local latency.
        let mut m2 = TimingModel::new(cfg, 56);
        m2.record(0, 0, &miss(MissKind::TrueSharing, Some(3)));
        assert_eq!(m2.finish_time(), 1 + cfg.local_miss_cycles);
    }

    #[test]
    fn ring_contention_queues_transactions() {
        let cfg = MachineConfig::default();
        let mut m = TimingModel::new(cfg, 8);
        // All eight processors miss at time ~1: their fills serialize on
        // the ring in occupancy slots.
        for p in 0..8u8 {
            m.record(p, 0, &miss(MissKind::FalseSharing, None));
        }
        let q: u64 = m.stats().total_queue();
        assert!(q > 0, "later misses must queue");
        // The last requester waited ~7 occupancy slots.
        assert!(m.finish_time() >= cfg.local_miss_cycles + 7 * cfg.miss_occupancy);
        assert!(cfg.miss_occupancy >= 2);
    }

    #[test]
    fn stall_attributed_to_miss_kind() {
        let mut m = TimingModel::new(MachineConfig::default(), 4);
        m.record(0, 0, &miss(MissKind::FalseSharing, None));
        m.record(1, 0, &miss(MissKind::Cold, None));
        assert!(m.stats().stall_by_kind[MissKind::FalseSharing as usize] > 0);
        assert!(m.stats().stall_by_kind[MissKind::Cold as usize] > 0);
        assert!(m.false_sharing_stall_fraction() > 0.0);
    }

    #[test]
    fn upgrades_use_upgrade_costs() {
        let cfg = MachineConfig::default();
        let mut m = TimingModel::new(cfg, 2);
        m.record(
            0,
            0,
            &Outcome {
                miss: None,
                block: 0,
                supplier: None,
                upgrade: true,
                invalidations: 1,
            },
        );
        assert_eq!(m.finish_time(), 1 + cfg.upgrade_cycles);
        assert_eq!(m.stats().upgrade_stall, cfg.upgrade_cycles);
    }

    #[test]
    fn record_returns_the_cost_it_accounted() {
        let cfg = MachineConfig::default();
        let mut m = TimingModel::new(cfg, 2);
        assert_eq!(m.record(0, 5, &hit()), TxCost::default());
        let c = m.record(0, 0, &miss(MissKind::FalseSharing, None));
        assert_eq!(c.stall, cfg.local_miss_cycles);
        assert_eq!(c.queue, 0);
        // A second requester right behind queues on the occupied ring.
        let c2 = m.record(1, 0, &miss(MissKind::FalseSharing, None));
        assert!(c2.queue > 0);
        assert_eq!(m.stats().queue[1], c2.queue);
    }

    #[test]
    fn speedup_curve_finds_knee() {
        let mut c = SpeedupCurve::default();
        // Times: improves to 8 procs, then degrades.
        c.push(1, 1000);
        c.push(2, 520);
        c.push(4, 270);
        c.push(8, 160);
        c.push(16, 240);
        let (s, at) = c.max_speedup(1000);
        assert_eq!(at, 8);
        assert!((s - 6.25).abs() < 1e-9);
        assert_eq!(c.scaling_limit(1000), 8);
    }

    #[test]
    fn sync_aligns_clocks_to_the_latest() {
        let cfg = MachineConfig::default();
        let mut m = TimingModel::new(cfg, 3);
        m.record(0, 99, &hit());
        m.record(1, 9, &hit());
        m.sync(&[0, 1, 2]);
        let expect = 100 + cfg.barrier_cycles;
        m.record(0, 0, &hit());
        m.record(2, 0, &hit());
        assert_eq!(m.finish_time(), expect + 1);
        // Both latecomers were pulled up to the barrier release time.
        assert!(m.stats().busy[2] > 0);
    }

    #[test]
    fn handoff_orders_acquirer_after_releaser() {
        let mut m = TimingModel::new(MachineConfig::default(), 2);
        m.record(0, 499, &hit()); // releaser at t=500
        m.record(1, 9, &hit()); // acquirer at t=10
        m.handoff(0, 1);
        m.record(1, 0, &hit());
        assert_eq!(m.finish_time(), 501);
        // Reverse direction is a no-op (acquirer already later).
        m.handoff(1, 0);
        m.record(0, 0, &hit());
        assert_eq!(m.finish_time(), 502);
    }

    #[test]
    fn invalidations_add_ring_occupancy() {
        let cfg = MachineConfig::default();
        let mut with_inv = TimingModel::new(cfg, 4);
        with_inv.record(
            0,
            0,
            &Outcome {
                miss: Some(MissKind::FalseSharing),
                block: 0,
                supplier: None,
                upgrade: false,
                invalidations: 3,
            },
        );
        with_inv.record(1, 0, &miss(MissKind::FalseSharing, None));
        let mut without = TimingModel::new(cfg, 4);
        without.record(0, 0, &miss(MissKind::FalseSharing, None));
        without.record(1, 0, &miss(MissKind::FalseSharing, None));
        // The second requester queues longer behind the invalidating
        // transaction.
        assert!(
            with_inv.stats().queue[1] > without.stats().queue[1],
            "{} vs {}",
            with_inv.stats().queue[1],
            without.stats().queue[1]
        );
    }

    #[test]
    fn independent_procs_overlap_in_time() {
        // Two procs each compute 100 cycles: wall-clock ~101, not 202.
        let mut m = TimingModel::new(MachineConfig::default(), 2);
        m.record(0, 100, &hit());
        m.record(1, 100, &hit());
        assert_eq!(m.finish_time(), 101);
    }

    #[test]
    fn bus_has_one_channel_and_uniform_latency() {
        let cfg = bus_cfg();
        let mut m = TimingModel::new(cfg, 56);
        assert_eq!(m.ring_of(0), m.ring_of(40));
        // A far-away supplier costs the same as a near one: no remote
        // penalty on a flat crossbar.
        m.record(0, 0, &miss(MissKind::TrueSharing, Some(40)));
        assert_eq!(m.finish_time(), 1 + cfg.local_miss_cycles);
    }

    #[test]
    fn bus_charges_cold_fills_channel_occupancy() {
        // On the bus, memory fills occupy the shared channel (the ring
        // model serves cold misses from the local ALLCACHE level for
        // free); concurrent cold misses therefore queue.
        let mut m = TimingModel::new(bus_cfg(), 8);
        for p in 0..8u8 {
            m.record(p, 0, &miss(MissKind::Cold, None));
        }
        assert!(m.stats().total_queue() > 0);
        let mut ring = TimingModel::new(MachineConfig::default(), 8);
        for p in 0..8u8 {
            ring.record(p, 0, &miss(MissKind::Cold, None));
        }
        assert_eq!(ring.stats().total_queue(), 0);
    }

    #[test]
    fn bus_saturates_where_rings_still_have_headroom() {
        // 40 processors split across two rings spread the same sharing
        // traffic over two channels; the bus serializes it all.
        let run = |ic: InterconnectKind| {
            let cfg = MachineConfig {
                interconnect: ic,
                ..Default::default()
            };
            let mut m = TimingModel::new(cfg, 40);
            for _ in 0..4 {
                for p in 0..40u8 {
                    m.record(p, 0, &miss(MissKind::FalseSharing, None));
                }
            }
            m.stats().total_queue()
        };
        assert!(run(InterconnectKind::Bus) > run(InterconnectKind::Ksr2Ring));
    }

    #[test]
    fn home_dir_has_one_channel_per_node() {
        let cfg = dir_cfg();
        assert_eq!(HomeDir.num_channels(&cfg, 8), 8);
        assert_eq!(HomeDir.channel_of(&cfg, 5), 5);
        let m = TimingModel::new(cfg, 8);
        assert_eq!(m.stats().channel_busy.len(), 8);
    }

    #[test]
    fn home_dir_local_clean_fill_is_an_l2_serve() {
        let cfg = dir_cfg();
        let mut m = TimingModel::new(cfg, 4);
        // Proc 1 misses on block 1: home is 1 % 4 = proc 1 itself.
        m.record(1, 0, &miss_at(1, MissKind::Cold, None));
        assert_eq!(m.finish_time(), 1 + cfg.l2_miss_cycles);
        assert_eq!(m.stats().two_hop, 1);
        assert_eq!(m.stats().channel_busy.iter().sum::<u64>(), 0);
    }

    #[test]
    fn home_dir_remote_clean_fill_is_two_hop() {
        let cfg = dir_cfg();
        let mut m = TimingModel::new(cfg, 4);
        // Proc 0 misses on block 1: home is proc 1, clean → 2-hop.
        m.record(0, 0, &miss_at(1, MissKind::Cold, None));
        assert_eq!(
            m.finish_time(),
            1 + cfg.local_miss_cycles + cfg.dir_lookup_cycles
        );
        assert_eq!(m.stats().two_hop, 1);
        assert_eq!(m.stats().three_hop, 0);
        // Occupancy lands on the home's channel and the requester's.
        assert_eq!(m.stats().channel_busy[1], cfg.miss_occupancy);
        assert_eq!(m.stats().channel_busy[0], cfg.miss_occupancy);
    }

    #[test]
    fn home_dir_dirty_third_party_owner_is_three_hop() {
        let cfg = dir_cfg();
        let mut m = TimingModel::new(cfg, 4);
        // Proc 0 misses on block 1 (home: proc 1), dirty at proc 2:
        // home forwards — 3 hops, three channels occupied.
        m.record(0, 0, &miss_at(1, MissKind::TrueSharing, Some(2)));
        assert_eq!(
            m.finish_time(),
            1 + cfg.three_hop_miss_cycles + cfg.dir_lookup_cycles
        );
        assert_eq!(m.stats().three_hop, 1);
        for ch in [0, 1, 2] {
            assert_eq!(m.stats().channel_busy[ch], cfg.miss_occupancy);
        }
        assert_eq!(m.stats().channel_busy[3], 0);

        // Owner == home stays 2-hop at local latency.
        let mut m2 = TimingModel::new(cfg, 4);
        m2.record(0, 0, &miss_at(1, MissKind::TrueSharing, Some(1)));
        assert_eq!(
            m2.finish_time(),
            1 + cfg.local_miss_cycles + cfg.dir_lookup_cycles
        );
        assert_eq!(m2.stats().two_hop, 1);
        assert_eq!(m2.stats().three_hop, 0);
    }

    #[test]
    fn home_dir_serializes_a_contended_home() {
        // Every processor misses on blocks homed at node 0: the home's
        // channel serializes them, unlike the two-ring hierarchy where
        // the same traffic spreads across rings.
        let cfg = dir_cfg();
        let mut m = TimingModel::new(cfg, 8);
        for p in 1..8u8 {
            m.record(p, 0, &miss_at(0, MissKind::FalseSharing, None));
        }
        assert!(m.stats().total_queue() > 0, "home channel must congest");
        assert_eq!(m.stats().max_channel_busy(), m.stats().channel_busy[0]);
        // Home-local blocks: every node fills from its own memory, no
        // fabric traffic, no queueing.
        let mut spread = TimingModel::new(cfg, 8);
        for p in 1..8u8 {
            spread.record(p, 0, &miss_at(p as u32, MissKind::FalseSharing, None));
        }
        assert_eq!(spread.stats().total_queue(), 0);
    }

    #[test]
    fn home_dir_upgrade_charges_invalidations_at_the_home() {
        let cfg = dir_cfg();
        let mut m = TimingModel::new(cfg, 4);
        m.record(
            0,
            0,
            &Outcome {
                miss: None,
                block: 1,
                supplier: None,
                upgrade: true,
                invalidations: 3,
            },
        );
        assert_eq!(
            m.finish_time(),
            1 + cfg.upgrade_cycles + cfg.dir_lookup_cycles
        );
        let expect = cfg.upgrade_occupancy + 3 * cfg.invalidation_occupancy;
        assert_eq!(m.stats().channel_busy[1], expect);
    }

    #[test]
    fn snooping_routes_report_no_hop_class() {
        let mut m = TimingModel::new(MachineConfig::default(), 8);
        m.record(0, 0, &miss(MissKind::TrueSharing, Some(1)));
        assert_eq!(m.stats().two_hop, 0);
        assert_eq!(m.stats().three_hop, 0);
        // But channel occupancy is still accounted per ring.
        assert_eq!(
            m.stats().channel_busy[0],
            m.stats().channel_busy.iter().sum()
        );
    }

    /// A contended reference stream: every processor misses to its
    /// neighbor's cache, so channel occupancy stays saturated and any
    /// lost carryover is visible in queueing delay.
    fn contended_stream(nproc: u32, len: u32) -> Vec<(u8, u32, Outcome)> {
        (0..len)
            .map(|i| {
                let pid = (i % nproc) as u8;
                let supplier = Some(((i + 1) % nproc) as u8);
                (pid, i % 3, miss_at(i % 7, MissKind::TrueSharing, supplier))
            })
            .collect()
    }

    #[test]
    fn split_replay_with_snapshot_restore_matches_whole() {
        for cfg in [MachineConfig::default(), bus_cfg(), dir_cfg()] {
            let stream = contended_stream(8, 200);
            let mut whole = TimingModel::new(cfg, 8);
            for (pid, gap, o) in &stream {
                whole.record(*pid, *gap, o);
            }
            whole.sync(&(0..8).collect::<Vec<_>>());

            // Same stream replayed in three segments, carrying the
            // dynamic state across a fresh model each time (what the
            // phase-sharded driver does between barrier segments).
            let mut snap = TimingModel::new(cfg, 8).snapshot();
            let mut stats_holder = TimingModel::new(cfg, 8);
            for chunk in stream.chunks(70) {
                stats_holder.restore(&snap);
                for (pid, gap, o) in chunk {
                    stats_holder.record(*pid, *gap, o);
                }
                snap = stats_holder.snapshot();
            }
            stats_holder.sync(&(0..8).collect::<Vec<_>>());
            assert_eq!(whole.finish_time(), stats_holder.finish_time());
            assert_eq!(whole.snapshot(), stats_holder.snapshot());
        }
    }

    #[test]
    fn record_chunk_matches_per_reference_record() {
        for cfg in [MachineConfig::default(), bus_cfg(), dir_cfg()] {
            // Mix hits in among the contended misses so the chunked hit
            // fast path is exercised between transactions.
            let stream: Vec<(u8, u32, Outcome)> = contended_stream(8, 150)
                .into_iter()
                .enumerate()
                .map(|(i, (pid, gap, o))| {
                    if i % 3 == 0 {
                        (pid, gap + 2, hit())
                    } else {
                        (pid, gap, o)
                    }
                })
                .collect();
            let mut serial = TimingModel::new(cfg, 8);
            let mut serial_costs = Vec::new();
            for (pid, gap, o) in &stream {
                let c = serial.record(*pid, *gap, o);
                if c.queue > 0 {
                    serial_costs.push(c);
                }
            }
            let mut chunked = TimingModel::new(cfg, 8);
            let mut chunk_costs = Vec::new();
            for win in stream.chunks(17) {
                let pids: Vec<u8> = win.iter().map(|r| r.0).collect();
                let gaps: Vec<u32> = win.iter().map(|r| r.1).collect();
                let outs: Vec<Outcome> = win.iter().map(|r| r.2).collect();
                chunked.record_chunk(&pids, &gaps, &outs, |_, c| chunk_costs.push(c));
            }
            assert_eq!(serial.snapshot(), chunked.snapshot());
            assert_eq!(serial.stats(), chunked.stats());
            assert_eq!(serial.finish_time(), chunked.finish_time());
            assert_eq!(serial_costs, chunk_costs);
        }
    }

    #[test]
    fn dropping_channel_carryover_changes_queueing() {
        // The carryover matters: forgetting chan_free at a split point
        // under-queues the resumed segment. High occupancy keeps the
        // channel saturated, so the carryover is live at every split.
        let cfg = MachineConfig {
            miss_occupancy: 400,
            ..Default::default()
        };
        let stream = contended_stream(8, 200);
        let mut whole = TimingModel::new(cfg, 8);
        let mut lossy = TimingModel::new(cfg, 8);
        for (i, (pid, gap, o)) in stream.iter().enumerate() {
            whole.record(*pid, *gap, o);
            if i == 100 {
                // Keep clocks, drop channel occupancy.
                let mut snap = lossy.snapshot();
                snap.chan_free.iter_mut().for_each(|c| *c = 0);
                lossy.restore(&snap);
            }
            lossy.record(*pid, *gap, o);
        }
        assert!(
            lossy.stats().total_queue() < whole.stats().total_queue(),
            "dropping occupancy must shrink queueing ({} vs {})",
            lossy.stats().total_queue(),
            whole.stats().total_queue()
        );
    }
}
