//! Vendored offline stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, and this workspace uses
//! serde purely as derive markers on report/config types (there is no
//! serializer backend such as `serde_json` in the tree). `Serialize` and
//! `Deserialize` are therefore marker traits; the derive macros live in
//! the sibling `serde_derive` crate. Swapping back to the real serde is a
//! one-line change in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de> {}
