//! Vendored offline stand-in for the slice of the `criterion` API the
//! bench targets use: `Criterion`, benchmark groups with
//! `sample_size`/`throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple — each sample times one closure
//! invocation after one warmup; the harness reports min/median/mean per
//! benchmark id. That is enough to track the relative regressions the
//! repo cares about without a registry dependency.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), 20, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    ran: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        let out = f();
        self.elapsed = t.elapsed();
        self.ran = true;
        std::hint::black_box(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        ran: false,
    };
    f(&mut warm);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            ran: false,
        };
        f(&mut b);
        times.push(if b.ran { b.elapsed } else { Duration::ZERO });
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let extra = match tp {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:8.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:8.2} MB/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "{name:<52} min {min:>11.3?}  median {median:>11.3?}  mean {mean:>11.3?}  (n={samples}){extra}"
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); this
            // harness runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(benches, a_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn ungrouped_bench_function_runs() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| std::hint::black_box(7 * 6)));
    }
}
