//! Cross-crate integration tests live in the workspace-level `tests/`
//! directory; this crate exists to give them a Cargo target. Shared
//! helpers for those tests are exported here.

use fsr_core::{PipelineConfig, PlanSource, RunResult};
use fsr_workloads::Workload;

/// Run one workload version at test scale.
pub fn run_version(w: &Workload, plan: PlanSource, nproc: i64, block: u32) -> RunResult {
    fsr_core::run_pipeline(
        w.source,
        &[("NPROC", nproc), ("SCALE", 1)],
        plan,
        &PipelineConfig::with_block(block),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}
