use fsr_core::experiments::{run_workload, Vsn};
fn main() {
    let name = std::env::args().nth(1).unwrap();
    let np: i64 = std::env::args().nth(2).unwrap().parse().unwrap();
    let w = fsr_workloads::by_name(&name).unwrap();
    for v in [Vsn::N, Vsn::C, Vsn::P] {
        let r = run_workload(&w, v, np, 2, 128).unwrap();
        println!(
            "--- {} cycles={} fsfrac={:.2}",
            v.label(),
            r.exec_cycles,
            r.fs_stall_frac
        );
        let mut rows: Vec<_> = r.per_obj.iter().collect();
        rows.sort_by_key(|(_, m)| std::cmp::Reverse(m.total()));
        for (n, m) in rows.iter().take(6) {
            println!(
                "  {:14} total={:6} cold={:5} repl={:5} true={:6} false={:6}",
                n,
                m.total(),
                m.misses[0],
                m.misses[1],
                m.misses[2],
                m.misses[3]
            );
        }
    }
}
