fn main() {
    for name in std::env::args().skip(1) {
        let w = fsr_workloads::by_name(&name).unwrap();
        let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        println!("==== {name} ====");
        println!("{}", fsr_analysis::report::render(&prog, &a));
        for obj in [
            "bx",
            "excess",
            "active_count",
            "push_ops",
            "cell_count",
            "bound_tests",
        ] {
            if let Some(r) = fsr_analysis::report::render_rsds(&prog, &a, obj) {
                println!("{r}");
            }
        }
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        println!("{}", fsr_transform::report::render(&prog, &plan));
    }
}
