use fsr_core::experiments::{run_workload, Vsn};
fn main() {
    let name = std::env::args().nth(1).unwrap();
    let np: i64 = std::env::args().nth(2).unwrap().parse().unwrap();
    let w = fsr_workloads::by_name(&name).unwrap();
    for v in [Vsn::N, Vsn::C, Vsn::P] {
        let r = run_workload(&w, v, np, 2, 128).unwrap();
        println!(
            "{:10} plan={:?} refs={} misses={} fs={} true={} upg={} inval={} cycles={} queue={} fs_stall={:.2}",
            v.label(),
            r.plan.counts(),
            r.sim.refs,
            r.sim.total_misses(),
            r.sim.false_sharing(),
            r.sim.miss_of(fsr_core::MissKind::TrueSharing),
            r.sim.upgrades,
            r.sim.invalidations,
            r.exec_cycles,
            r.timing.queue.iter().sum::<u64>(),
            r.fs_stall_frac,
        );
    }
}
