//! LocusRoute — VLSI standard-cell router (SPLASH; Table 1: versions
//! C, P only).
//!
//! The router threads wires through a shared cost grid. Per-process
//! route scratch is cyclically interleaved (group & transpose); the cost
//! grid is written along data-dependent routes (left alone); region
//! locks protect density counters. The programmer version (paper: 12.0
//! vs compiler 12.3 — nearly equal) differs only in leaving the region
//! locks co-allocated with their density counters.

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// LocusRoute: route wires through a cost grid.
param NPROC = 12;
param SCALE = 1;
const WIRES = 144 * SCALE;
const GRID = 256;
const REGIONS = 8;
const PER = WIRES / NPROC + 1;
const PASSES = 4;

// Per-process routing scratch (cyclic ownership).
shared int wire_cost[WIRES];
shared int wire_bend[WIRES];
// The shared cost grid: data-dependent writes along routes.
shared int grid[GRID];
// Region density counters, each protected by its own lock; in the
// unoptimized layout each lock is packed right next to its counter.
shared lock region_lock[REGIONS];
shared int region_density[REGIONS];

fn setup() {
    var g;
    for g in 0 .. GRID {
        grid[g] = prand(g) % 8;
    }
}

fn route(int p, int t) {
    var routed = 0;
    var k;
    for k in 0 .. PER {
        var w = k * NPROC + p;
        if (w < WIRES) {
            // Walk a route through the wire's own district of the grid,
            // occasionally crossing into the neighbour district.
            var base = (w % REGIONS) * (GRID / REGIONS);
            var pos = base + prand(w * 7 + t) % (GRID / REGIONS);
            var cost = 0;
            var s;
            for s in 0 .. 12 {
                // Cost evaluation (register-local work).
                var e = 0;
                var q;
                for q in 0 .. 8 {
                    e = (e * 5 + pos + q) % 211;
                }
                cost = cost + grid[pos] + e % 2;
                grid[pos] = grid[pos] + 1;
                pos = base + (pos - base + prand(w + s) % 5 + 1) % (GRID / REGIONS + 4);
                if (pos >= GRID) {
                    pos = pos - GRID;
                }
            }
            wire_cost[w] = cost;
            wire_bend[w] = wire_bend[w] + cost % 3;
            routed = routed + 1;
        }
    }
    // Flush this pass's routing count under the process's region lock.
    var r = p % REGIONS;
    lock(region_lock[r]);
    region_density[r] = region_density[r] + routed;
    unlock(region_lock[r]);
}

fn main() {
    setup();
    forall p in 0 .. NPROC {
        var t;
        for t in 0 .. PASSES {
            route(p, t);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // Same wire-scratch transposes as the compiler; locks left
    // co-allocated with the density counters (unpadded).
    planutil::transpose_cyclic(&mut plan, prog, "wire_cost", true);
    planutil::transpose_cyclic(&mut plan, prog, "wire_bend", true);
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "locusroute",
        description: "VLSI standard cell router",
        source: SOURCE,
        versions: &[Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: None,
            dominant_transform: "group & transpose + lock padding",
            max_speedup: (None, 12.3, Some(12.0)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_expectations() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        assert!(matches!(get("wire_cost"), Some(ObjPlan::Transpose { .. })));
        assert!(matches!(get("wire_bend"), Some(ObjPlan::Transpose { .. })));
        assert_eq!(get("region_lock"), Some(ObjPlan::PadLock));
        // The grid is shared/data-dependent and too large to pad.
        assert_eq!(get("grid"), None);
    }
}
