//! Fmm — adaptive fast multipole n-body (Singh/Holt/Hennessy/Gupta,
//! SPLASH-2; Table 1: versions N, C, P).
//!
//! Sharing structure per the paper:
//! - body state arrays are **cyclically partitioned** across processes,
//!   interleaving owners word-by-word: group & transpose dominates
//!   (Table 2: 84.8%);
//! - a tree-construction lock packed next to hot read-shared data
//!   generates false sharing under contention: lock padding (6.0%);
//! - cell multipole data is read-shared with spatial locality and
//!   correctly left alone.
//!
//! The programmer (original SPLASH-2) version applied the same body
//! transposes but left the lock co-located with the counter it protects
//! — at scale the spinners' rereads collide with the holder's counter
//! updates, and the paper records the programmer version topping out at
//! the unoptimized program's speedup (16.4 vs the compiler's 33.6).

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Fmm: force evaluation sweeps with cyclic body ownership.
param NPROC = 12;
param SCALE = 1;
const NB = 192 * SCALE;       // bodies
const NC = 48;                // cells
const PER = NB / NPROC + 1;
const STEPS = 4;

// Cyclically-owned body state: adjacent elements belong to different
// processes (the transposable layout hazard).
shared int bx[NB];
shared int bv[NB];
shared int ba[NB];
// Read-shared cell data (serial-built, unit-stride scans): untouched.
shared int cmass[NC];
shared int ccenter[NC];
// Reduction lock packed right next to the counter it protects — the
// co-allocation the compiler undoes by padding the lock.
shared int bmass[NB];
shared lock tree_lock;
shared int tree_nodes;
shared int total_energy;
shared int tree_depth;

fn setup() {
    var c;
    for c in 0 .. NC {
        cmass[c] = prand(c * 17) % 500;
        ccenter[c] = (c * 1000) / NC;
    }
}

// Parallel body initialization with the same cyclic ownership as the
// force loops.
fn init_bodies(int p) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < NB) {
            bx[i] = prand(i) % 1000;
            bv[i] = 0;
            ba[i] = 0;
            bmass[i] = prand(i + NB) % 9 + 1;
        }
    }
}

fn build_tree(int p) {
    var mine = 0;
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < NB) {
            mine = mine + 1;
        }
    }
    lock(tree_lock);
    tree_nodes = tree_nodes + mine;
    tree_depth = max(tree_depth, mine % 16);
    unlock(tree_lock);
}

// Per-step reduction: every process folds its local energy into the
// shared total under the (co-allocated) lock. Under contention the
// holder's counter writes invalidate the block every spinner polls.
fn reduce_energy(int p, int local) {
    lock(tree_lock);
    total_energy = total_energy + local;
    tree_nodes = tree_nodes + 1;
    tree_depth = max(tree_depth, local % 16);
    unlock(tree_lock);
}

fn forces(int p, int t) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < NB) {
            var acc = 0;
            // Far field: multipole expansion over the cells (read-shared,
            // unit stride, with register-local expansion work).
            var c;
            for c in 0 .. NC {
                var e = acc % 31;
                acc = acc + cmass[c] / (abs(bx[i] - ccenter[c]) + 1) + e % 2;
            }
            // Near field: the owner's neighbouring bodies (cyclic
            // ownership makes i±NPROC same-owner).
            var n;
            for n in 0 .. 3 {
                var j = (i + (n + 1) * NPROC) % NB;
                acc = acc + bmass[j] / (abs(bx[i] - bx[j]) + 1);
            }
            ba[i] = acc;
            bv[i] = bv[i] + ba[i];
            bx[i] = (bx[i] + bv[i] / 16) % 1000;
            if (bx[i] < 0) {
                bx[i] = bx[i] + 1000;
            }
        }
    }
    reduce_energy(p, p + t);
}

fn main() {
    setup();
    forall p in 0 .. NPROC {
        init_bodies(p);
        barrier;
        build_tree(p);
        barrier;
        var t;
        for t in 0 .. STEPS {
            forces(p, t);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // SPLASH-2 programmers transposed the body arrays (the transforms the
    // paper "undid" to produce the unoptimized version) but kept the lock
    // with the data it protects.
    planutil::transpose_cyclic(&mut plan, prog, "bx", true);
    planutil::transpose_cyclic(&mut plan, prog, "bv", true);
    planutil::transpose_cyclic(&mut plan, prog, "ba", true);
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "fmm",
        description: "Fast multipole method n-body force evaluation",
        source: SOURCE,
        versions: &[Version::Unoptimized, Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: Some(90.8),
            dominant_transform: "group & transpose (84.8%) + locks (6.0%)",
            max_speedup: (Some(16.4), 33.6, Some(16.4)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_analysis::OwnerMap;
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_paper_mix() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        // Cyclically-owned body arrays: interleave transposes.
        for arr in ["bx", "bv", "ba"] {
            match get(arr) {
                Some(ObjPlan::Transpose { owner, .. }) => {
                    assert!(
                        matches!(owner, OwnerMap::Interleave { .. }),
                        "{arr}: {owner:?}"
                    );
                }
                other => panic!("expected transpose on {arr}, got {other:?}"),
            }
        }
        assert_eq!(get("tree_lock"), Some(ObjPlan::PadLock));
        // Serial-built cell data untouched.
        assert_eq!(get("cmass"), None);
        assert_eq!(get("ccenter"), None);
        // bmass is parallel-initialized cyclically, so its (init-only)
        // writes are legitimately per-process: a transpose is acceptable
        // (it is read-only afterwards, so the choice is harmless).
        assert!(matches!(
            get("bmass"),
            None | Some(ObjPlan::Transpose { .. })
        ));
    }
}
