//! Raytrace — 3-D scene rendering (SPLASH-2; Table 1: versions N, C, P).
//!
//! Sharing structure per the paper:
//! - per-process ray state, cyclically interleaved: group & transpose
//!   (Table 2: 70.4%);
//! - a busy shared bounding counter: pad & align (3.3%);
//! - the ray-id lock: padding (4.6%);
//! - **residual**: a pair of busy write-shared shading counters updated
//!   in a data-dependent bounce loop whose static weight estimate is far
//!   below the dynamic frequency — the analysis misses them (the paper's
//!   Raytrace residual);
//! - the programmer version (9.2 vs compiler 9.6) applied the transposes
//!   and padded the locks, but **also padded the scene-vertex array that
//!   the analysis concluded was not predominantly per-process** — the
//!   paper's example of the compiler making a better
//!   spatial-vs-processor-locality tradeoff.

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Raytrace: trace rays through a gridded scene.
param NPROC = 12;
param SCALE = 1;
const RAYS = 192 * SCALE;
const VERTS = 64;
const PER = RAYS / NPROC + 1;
const FRAMES = 4;

// Cyclic per-process ray state.
shared int ray_org[RAYS];
shared int ray_dir[RAYS];
shared int ray_hits[RAYS];
// Scene vertices: read-shared with spatial locality (scanned).
shared int verts[VERTS];
// Busy shared counters + lock, packed together.
shared int bound_tests;       // hot, statically visible -> padded
shared int shade_calls;       // hot, statically invisible -> residual
shared int bounce_depth;      // hot, statically invisible -> residual
shared lock ray_lock;
shared int next_ray;

fn setup() {
    var v;
    for v in 0 .. VERTS {
        verts[v] = prand(v) % 512;
    }
}

// Parallel ray initialization (cyclic, matching the trace loop).
fn init_rays(int p) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < RAYS) {
            ray_org[i] = prand(i * 3) % 512;
            ray_dir[i] = prand(i * 3 + 1) % 32 - 16;
            ray_hits[i] = 0;
        }
    }
}

// Data-dependent bounce loop: statically weighted as a short while, but
// dynamically hot — the updates inside are the residual false sharing.
fn shade(int p, int r) {
    var depth = prand(r) % 24 + 8;
    while (depth > 0) {
        shade_calls = shade_calls + 1;
        if (prand(r + depth) % 8 != 0) {
            bounce_depth = bounce_depth + 1;
        }
        depth = depth - 1;
    }
}

fn trace(int p, int t) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < RAYS) {
            // Walk the scene: unit-stride vertex scan (spatial locality).
            var best = 1 << 20;
            var bt = 0;
            var v;
            for v in 0 .. VERTS {
                // Intersection test (register-local work).
                var d = abs(verts[v] - ray_org[i]);
                d = (d * 3 + v) % 1021;
                if (d < best) {
                    best = d;
                }
                bt = bt + 1;
            }
            bound_tests = bound_tests + bt;
            ray_hits[i] = ray_hits[i] + best % 7;
            ray_org[i] = (ray_org[i] + ray_dir[i] + 512) % 512;
            ray_dir[i] = (ray_dir[i] + best) % 32 - 16;
        }
    }
    shade(p, prand(p * 31 + t) % RAYS);
    lock(ray_lock);
    next_ray = next_ray + 1;
    unlock(ray_lock);
}

fn main() {
    setup();
    forall p in 0 .. NPROC {
        init_rays(p);
        barrier;
        var t;
        for t in 0 .. FRAMES {
            trace(p, t);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // Same transposes as the compiler, padded lock and counter — but
    // also the mistaken pad of the scanned vertex array (hurting its
    // spatial locality).
    planutil::transpose_cyclic(&mut plan, prog, "ray_org", true);
    planutil::transpose_cyclic(&mut plan, prog, "ray_dir", true);
    planutil::transpose_cyclic(&mut plan, prog, "ray_hits", true);
    planutil::pad_lock(&mut plan, prog, "ray_lock");
    planutil::pad(&mut plan, prog, "bound_tests");
    planutil::pad(&mut plan, prog, "verts"); // the documented mistake
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "raytrace",
        description: "Rendering of a 3-dimensional scene",
        source: SOURCE,
        versions: &[Version::Unoptimized, Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: Some(78.3),
            dominant_transform: "group & transpose (70.4%) + locks (4.6%) + pad (3.3%)",
            max_speedup: (Some(7.0), 9.6, Some(9.2)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_paper_mix() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        for arr in ["ray_org", "ray_dir", "ray_hits"] {
            assert!(
                matches!(get(arr), Some(ObjPlan::Transpose { .. })),
                "{arr}: {:?}",
                get(arr)
            );
        }
        assert_eq!(get("bound_tests"), Some(ObjPlan::PadElems));
        assert_eq!(get("ray_lock"), Some(ObjPlan::PadLock));
        // The compiler does NOT pad the scanned vertex array (the
        // programmer did — their documented mistake).
        assert_eq!(get("verts"), None);
        // Underestimated busy counters missed: residual.
        assert_eq!(get("shade_calls"), None);
        assert_eq!(get("bounce_depth"), None);
    }
}
