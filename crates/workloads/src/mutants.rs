//! Seeded-race mutants and clean controls for lint validation.
//!
//! Each mutant plants one specific synchronization defect (dropped lock,
//! split lock, dropped barrier, barrier under a branch, overlapping
//! chunk partition, per-process element lock on a global, missing
//! phase-separating barrier) and records which diagnostic codes the
//! static lint must emit for it. The paired controls repair the defect
//! and must lint clean. `fsr-lint --mutants` checks the static verdicts;
//! `fsr-lint --validate` additionally replays each mutant in the
//! interpreter and confirms the seeded races dynamically with the
//! happens-before checker.

/// One seeded-race program (or its repaired control).
#[derive(Debug, Clone, Copy)]
pub struct Mutant {
    pub name: &'static str,
    pub source: &'static str,
    /// Diagnostic codes the static lint must emit — exactly this set.
    pub expected: &'static [&'static str],
    /// Shared objects whose races the dynamic checker must confirm.
    pub racy_objects: &'static [&'static str],
    /// `true` = seeded defect; `false` = clean control.
    pub seeded: bool,
}

const M1_DROP_LOCK: &str = r#"
// M1: global counter incremented by every process with no lock at all.
param NPROC = 4;
param SCALE = 1;
shared int hot;
shared int acc[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 8 * SCALE {
            hot = hot + 1;
            acc[p] = acc[p] + hot;
        }
    }
}
"#;

const C1_KEEP_LOCK: &str = r#"
// C1: the M1 counter, correctly guarded by one global lock.
param NPROC = 4;
param SCALE = 1;
shared int hot;
shared int acc[NPROC];
shared lock lk;
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 8 * SCALE {
            lock(lk);
            hot = hot + 1;
            acc[p] = acc[p] + hot;
            unlock(lk);
        }
    }
}
"#;

const M2_SPLIT_LOCK: &str = r#"
// M2: two code paths guard the same counter with two different locks.
param NPROC = 4;
param SCALE = 1;
shared int hot;
shared lock la;
shared lock lb;
fn bump_a() {
    lock(la);
    hot = hot + 1;
    unlock(la);
}
fn bump_b() {
    lock(lb);
    hot = hot + 1;
    unlock(lb);
}
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 4 * SCALE {
            bump_a();
            bump_b();
        }
    }
}
"#;

const M3_DROP_BARRIER: &str = r#"
// M3: process 0 initializes a table; everyone reads it with no barrier
// separating the write phase from the read phase.
param NPROC = 4;
param SCALE = 1;
shared int buf[16];
shared int out[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        if (p == 0) {
            var i;
            for i in 0 .. 16 {
                buf[i] = i * 3;
            }
        }
        var j;
        for j in 0 .. 16 {
            out[p] = out[p] + buf[j];
        }
    }
}
"#;

const C2_KEEP_BARRIER: &str = r#"
// C2: the M3 init/read pattern with the separating barrier restored.
param NPROC = 4;
param SCALE = 1;
shared int buf[16];
shared int out[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        if (p == 0) {
            var i;
            for i in 0 .. 16 {
                buf[i] = i * 3;
            }
        }
        barrier;
        var j;
        for j in 0 .. 16 {
            out[p] = out[p] + buf[j];
        }
    }
}
"#;

const M4_BARRIER_IN_BRANCH: &str = r#"
// M4: a barrier under a conditional, so the two arms of the branch
// execute different barrier counts (the condition is uniform across
// processes, so the program still runs without deadlocking).
param NPROC = 4;
param SCALE = 1;
shared int total;
shared int turn[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 6 {
            if (i % 3 == 0) {
                total = total + 1;
                barrier;
            }
            turn[p] = turn[p] + i;
            barrier;
        }
    }
}
"#;

const M5_OVERLAPPING_CHUNKS: &str = r#"
// M5: a block partition widened by one element, so adjacent processes'
// chunks overlap at the seam.
param NPROC = 4;
param SCALE = 1;
const N = NPROC * 16 + 1;
shared int d[N];
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in p * 16 .. p * 16 + 17 {
            d[i] = d[i] + 1;
        }
    }
}
"#;

const M6_WRONG_ELEMENT_LOCK: &str = r#"
// M6: each process takes its *own* lock element before touching a
// global counter — mutual exclusion in form, not in fact.
param NPROC = 4;
param SCALE = 1;
shared int hot;
shared lock lk[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 8 * SCALE {
            lock(lk[p]);
            hot = hot + 1;
            unlock(lk[p]);
        }
    }
}
"#;

const C3_COMMON_ELEMENT_LOCK: &str = r#"
// C3: the M6 pattern repaired — every process takes the same element.
param NPROC = 4;
param SCALE = 1;
shared int hot;
shared lock lk[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        var i;
        for i in 0 .. 8 * SCALE {
            lock(lk[0]);
            hot = hot + 1;
            unlock(lk[0]);
        }
    }
}
"#;

const M7_MISSING_SECOND_BARRIER: &str = r#"
// M7: producer/consumer timestep loop with only one barrier per
// iteration — the next iteration's produce races the previous
// iteration's consume.
param NPROC = 4;
param SCALE = 1;
shared int val;
shared int ts[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        var t;
        for t in 0 .. 4 {
            if (p == 0) {
                val = t;
            }
            barrier;
            ts[p] = ts[p] + val;
        }
    }
}
"#;

const C4_BOTH_BARRIERS: &str = r#"
// C4: the M7 timestep loop with both barriers — produce and consume
// land in alternating phases and never collide.
param NPROC = 4;
param SCALE = 1;
shared int val;
shared int ts[NPROC];
fn main() {
    forall p in 0 .. NPROC {
        var t;
        for t in 0 .. 4 {
            if (p == 0) {
                val = t;
            }
            barrier;
            ts[p] = ts[p] + val;
            barrier;
        }
    }
}
"#;

/// The full suite: seven seeded mutants interleaved with their controls.
pub fn all() -> Vec<Mutant> {
    vec![
        Mutant {
            name: "m1_drop_lock",
            source: M1_DROP_LOCK,
            expected: &["FSR-W001"],
            racy_objects: &["hot"],
            seeded: true,
        },
        Mutant {
            name: "c1_keep_lock",
            source: C1_KEEP_LOCK,
            expected: &[],
            racy_objects: &[],
            seeded: false,
        },
        Mutant {
            name: "m2_split_lock",
            source: M2_SPLIT_LOCK,
            expected: &["FSR-W002"],
            racy_objects: &["hot"],
            seeded: true,
        },
        Mutant {
            name: "m3_drop_barrier",
            source: M3_DROP_BARRIER,
            expected: &["FSR-W001"],
            racy_objects: &["buf"],
            seeded: true,
        },
        Mutant {
            name: "c2_keep_barrier",
            source: C2_KEEP_BARRIER,
            expected: &[],
            racy_objects: &[],
            seeded: false,
        },
        Mutant {
            name: "m4_barrier_in_branch",
            source: M4_BARRIER_IN_BRANCH,
            expected: &["FSR-W001", "FSR-W003"],
            racy_objects: &["total"],
            seeded: true,
        },
        Mutant {
            name: "m5_overlapping_chunks",
            source: M5_OVERLAPPING_CHUNKS,
            expected: &["FSR-W001"],
            racy_objects: &["d"],
            seeded: true,
        },
        Mutant {
            name: "m6_wrong_element_lock",
            source: M6_WRONG_ELEMENT_LOCK,
            expected: &["FSR-W002"],
            racy_objects: &["hot"],
            seeded: true,
        },
        Mutant {
            name: "c3_common_element_lock",
            source: C3_COMMON_ELEMENT_LOCK,
            expected: &[],
            racy_objects: &[],
            seeded: false,
        },
        Mutant {
            name: "m7_missing_second_barrier",
            source: M7_MISSING_SECOND_BARRIER,
            expected: &["FSR-W001"],
            racy_objects: &["val"],
            seeded: true,
        },
        Mutant {
            name: "c4_both_barriers",
            source: C4_BOTH_BARRIERS,
            expected: &[],
            racy_objects: &[],
            seeded: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_verdicts_match_expected_codes() {
        for m in all() {
            let prog = fsr_lang::compile_with_params(m.source, &[("NPROC", 4), ("SCALE", 1)])
                .unwrap_or_else(|e| panic!("{}: {}", m.name, e.render(m.source)));
            let a = fsr_analysis::analyze(&prog).unwrap();
            let report = fsr_analysis::detect(&prog, &a);
            let mut got: Vec<&str> = report
                .diagnostics
                .iter()
                .filter_map(|d| d.code.map(|c| c.id()))
                .collect();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, m.expected, "{}", m.name);
        }
    }

    #[test]
    fn every_mutant_runs_to_completion() {
        for m in all() {
            let prog =
                fsr_lang::compile_with_params(m.source, &[("NPROC", 4), ("SCALE", 1)]).unwrap();
            let plan = fsr_transform::LayoutPlan::unoptimized(64);
            let layout = fsr_layout::Layout::build(&prog, &plan, 4);
            let code = fsr_interp::compile_program(&prog).unwrap();
            let mut sink = fsr_interp::CountingSink::default();
            fsr_interp::run(
                &prog,
                &layout,
                &code,
                fsr_interp::RunConfig::default(),
                &mut sink,
            )
            .unwrap_or_else(|e| panic!("{}: {}", m.name, e));
        }
    }
}
