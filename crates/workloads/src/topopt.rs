//! Topopt — topological optimization of multi-level array logic
//! (Devadas & Newton; Table 1: versions N, C, P).
//!
//! Sharing structure per the paper:
//! - a 2-D gain histogram indexed `[bin][pid]` interleaves processors in
//!   every block — **group & transpose** dominates (Table 2: 61.3%);
//! - per-process scores embedded in cell records behind a run-time
//!   partition — **indirection** (18.6%);
//! - a *revolving* partition (`zfirst` recomputed every phase) over the
//!   `zone` array: the static analysis cannot prove disjointness — this
//!   is the paper's residual false sharing for Topopt (~20%). The writes
//!   within each revolving slice are unit-stride, so pad & align does not
//!   fire either.
//!
//! The programmer version applied the histogram transpose but missed the
//! cell indirection (paper: P 10.2 vs C 10.3 — close, both well above
//! the unoptimized knee).

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Topopt: iterative cell-swap optimization with a revolving zone sweep.
param NPROC = 12;
param SCALE = 1;
const CELLS = 144 * SCALE;
const ROWS = 24;              // gain histogram bins
const Z = 768 * SCALE;        // revolving zone array
const ROUNDS = 6;

struct Cell {
    int state;    // read by everyone (setup-written)
    int score;    // owner-accumulated
}

shared Cell cells[CELLS];
shared int first[NPROC + 1];      // static partition (setup once)
shared int gain[ROWS][NPROC];     // per-process histogram -> transpose
shared int moves[NPROC];          // per-process counter -> grouped
shared int zfirst[NPROC + 1];     // revolving partition bounds
shared int zone[Z];

fn setup() {
    var q;
    for q in 0 .. NPROC + 1 {
        first[q] = q * CELLS / NPROC;
    }
    var z;
    for z in 0 .. Z {
        zone[z] = 0;
    }
}

// Parallel cell init over the static partition.
fn init_cells(int p) {
    var i;
    for i in first[p] .. first[p + 1] {
        cells[i].state = prand(i) % 16;
        cells[i].score = 0;
    }
}

fn optimize(int p, int t) {
    var i;
    for i in first[p] .. first[p + 1] {
        var other = prand(i * 13 + t) % CELLS;
        // Swap-gain evaluation (register-local work).
        var e = 0;
        var q;
        for q in 0 .. 10 {
            e = (e * 7 + i + q) % 229;
        }
        var delta = cells[other].state - cells[i].state + e % 2;
        cells[i].score = cells[i].score + delta;
        gain[abs(delta) % ROWS][p] = gain[abs(delta) % ROWS][p] + 1;
        moves[p] = moves[p] + 1;
    }
}

// The revolving zone sweep: proc 0 recomputes the partition *every
// round*, so the bounds are not loop-invariant and the static analysis
// cannot prove per-process disjointness.
fn zone_sweep(int p, int t) {
    if (p == 0) {
        var q;
        for q in 0 .. NPROC + 1 {
            zfirst[q] = (q * (Z / NPROC) + t * 5) % Z;
        }
    }
    barrier;
    var j;
    for j in zfirst[p] .. zfirst[p] + Z / NPROC {
        var jj = j % Z;       // wraps; index is data-dependent to the analysis
        zone[jj] = zone[jj] + p + 1;
    }
}

fn main() {
    setup();
    forall p in 0 .. NPROC {
        init_cells(p);
        barrier;
        var t;
        for t in 0 .. ROUNDS {
            optimize(p, t);
            barrier;
            zone_sweep(p, t);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // The programmer transposed the gain histogram and the move counters
    // (the "natural" restructuring) but missed the cell-score
    // indirection.
    planutil::transpose_dim(&mut plan, prog, "gain", 1);
    planutil::transpose_grouped(&mut plan, prog, "moves", 0);
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "topopt",
        description: "Topological optimization of multi-level array logic",
        source: SOURCE,
        versions: &[Version::Unoptimized, Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: Some(79.9),
            dominant_transform: "group & transpose (61.3%) + indirection (18.6%)",
            max_speedup: (Some(9.2), 10.3, Some(10.2)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_paper_mix() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        assert!(matches!(get("gain"), Some(ObjPlan::Transpose { .. })));
        assert!(matches!(get("moves"), Some(ObjPlan::Transpose { .. })));
        assert!(matches!(get("cells"), Some(ObjPlan::Indirect { .. })));
        // The revolving zone stays untransformed: residual false sharing.
        assert_eq!(get("zone"), None);
        assert_eq!(get("zfirst"), None);
    }

    #[test]
    fn revolving_partition_not_validated() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let (z, _) = prog.object_by_name("zfirst").unwrap();
        assert!(!a.validated_partitions.contains(&z));
        let (f, _) = prog.object_by_name("first").unwrap();
        assert!(a.validated_partitions.contains(&f));
    }
}
