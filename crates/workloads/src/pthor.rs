//! Pthor — parallel logic-level circuit simulator (SPLASH; Table 1:
//! versions C, P only).
//!
//! Event-driven simulation over a shared element list: per-process event
//! counters are transposed; the global simulated-clock scalar is padded;
//! the element activation array is written data-dependently by all
//! processes (unremovable sharing — Pthor scales to only a handful of
//! processors in the paper: compiler 2.8, programmer 2.2 at 4). The
//! programmer version missed the group & transpose and pad & align
//! opportunities the paper lists for Pthor.

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Pthor: event-driven circuit simulation.
param NPROC = 12;
param SCALE = 1;
const ELEMS = 144 * SCALE;
const PER = ELEMS / NPROC + 1;
const TICKS = 6;

// Element state: activated data-dependently by fanout propagation.
shared int active[ELEMS];
shared int level[ELEMS];
// Per-process event accounting (transposable).
shared int events[NPROC];
shared int stalls[NPROC];
// Global simulated clock + lock: busy shared scalar.
shared lock clk_lock;
shared int sim_clock;

fn init_elems(int p) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < ELEMS) {
            active[i] = (prand(i) % 8 == 0);
            level[i] = 0;
        }
    }
}

fn tick(int p, int t) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < ELEMS) {
            // Element evaluation (register-local work).
            var e = 0;
            var q;
            for q in 0 .. 8 {
                e = (e * 3 + i + q) % 199;
            }
            if (active[i] > 0 && e >= 0) {
                level[i] = 1 - level[i];
                // Propagate to nearby fanout elements (wiring locality)
                // with an occasional long wire.
                var f0 = (i + 1 + prand(i * 5 + t) % 8) % ELEMS;
                var f1 = prand(i * 5 + t + 1) % ELEMS;
                active[f0] = 1;
                if (prand(i + t) % 4 == 0) {
                    active[f1] = 1;
                }
                active[i] = 0;
                // Readers of the global clock make it hot enough for
                // the pad heuristic (its writes happen under the lock).
                events[p] = events[p] + 1 + sim_clock % 2;
            } else {
                stalls[p] = stalls[p] + 1;
            }
        }
    }
    if (p == t % NPROC) {
        // One process advances the simulated clock per tick.
        lock(clk_lock);
        sim_clock = sim_clock + 1;
        unlock(clk_lock);
    }
}

fn main() {
    forall p in 0 .. NPROC {
        init_elems(p);
        barrier;
        var t;
        for t in 0 .. TICKS {
            tick(p, t);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // Programmer padded the lock but missed the counter transposes and
    // the clock pad (the paper's listed omissions for Pthor).
    planutil::pad_lock(&mut plan, prog, "clk_lock");
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "pthor",
        description: "Logic-level circuit simulator (event driven)",
        source: SOURCE,
        versions: &[Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: None,
            dominant_transform: "group & transpose + pad & align",
            max_speedup: (None, 2.8, Some(2.2)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_expectations() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        assert!(matches!(get("events"), Some(ObjPlan::Transpose { .. })));
        assert!(matches!(get("stalls"), Some(ObjPlan::Transpose { .. })));
        assert_eq!(get("clk_lock"), Some(ObjPlan::PadLock));
        assert_eq!(get("sim_clock"), Some(ObjPlan::PadElems));
        // The activation array: shared scattered, too large to pad.
        assert_eq!(get("active"), None);
    }
}
