//! Maxflow — maximum flow in a directed graph (Carrasco's parallel
//! push-relabel implementation; Table 1: versions N, C only).
//!
//! Sharing structure per the paper:
//! - nodes are selected *data-dependently* (the work-queue discipline of
//!   push-relabel), so `excess`/`height` show no per-process pattern and
//!   no transformation applies to them;
//! - a handful of **busy write-shared scalars packed into the same cache
//!   block** dominate the false sharing. Two of them (`active_count`,
//!   `excess_total`) are updated in statically-visible hot loops — the
//!   analysis pads them (Table 2: pad & align = 49.2% of the reduction);
//! - a global lock is padded (7.3%);
//! - two more scalars (`push_ops`, `relabel_ops`) are updated inside a
//!   data-dependent `while` drain loop whose static trip estimate is far
//!   below its dynamic count — **static profiling underestimates them**,
//!   they stay unpadded, and their ping-pong is the residual false
//!   sharing the paper reports for Maxflow.

use crate::{PaperFacts, Version, Workload};

pub const SOURCE: &str = r#"
// Maxflow: push-relabel relaxation sweeps over a synthetic graph.
param NPROC = 12;
param SCALE = 1;
const N = 256 * SCALE;          // nodes
const ITER = 5;                 // relaxation sweeps
const PER = N / NPROC + 1;      // cyclic per-process share

// Busy shared scalars, deliberately packed adjacently (the unoptimized
// layout puts all four plus the lock in one block). The status pair is
// read every iteration by every process but written rarely — their
// misses are pure false sharing against the drain counters next door,
// which is exactly what pad & align removes.
shared int active_count;        // read-mostly status -> padded
shared int excess_total;        // read-mostly status -> padded
shared int push_ops;            // hot writes, statically invisible -> residual FS
shared int relabel_ops;         // hot writes, statically invisible -> residual FS
shared lock qlock;              // global queue lock -> padded

shared int excess[N];
shared int height[N];
shared int cap[N];

// Parallel init over a *data-dependent* permutation: like the solver
// itself, initialization shows the analysis no per-process pattern.
fn init(int p) {
    var k;
    for k in 0 .. PER {
        var i = (prand(k * NPROC + p) % N + k * NPROC + p) % N;
        excess[i] = prand(i) % 100;
        height[i] = 0;
        cap[i] = prand(i + N) % 50 + 1;
    }
}

// The statically-invisible hot path: a drain whose trip count depends on
// run-time data. Static profiling assumes a handful of iterations; at
// run time it spins through ~a hundred.
fn drain(int p, int t) {
    // Drain a node from the local region's overflow list. The loop runs
    // for as long as the node holds excess — dynamically ~a hundred
    // iterations, statically estimated as a handful: the counters inside
    // stay below the padder's frequency threshold.
    var v = p * (N / NPROC) + prand(p * 977 + t) % (N / NPROC);
    var guard = 0;
    while (excess[v] > 0 && guard < 24) {
        excess[v] = excess[v] - 1;
        // Each guard is almost always taken at run time but statically
        // weighted 1/2: four of them push the counters' estimated
        // frequency below the padder's threshold — the underestimation
        // that leaves them unpadded (the paper's Maxflow residual).
        if (prand(v + guard) % 8 != 0) {
            if (prand(v + guard + 1) % 8 != 0) {
                if (prand(v + guard + 2) % 8 != 0) {
                    if (prand(v + guard + 3) % 8 != 0) {
                        if (prand(v + guard + 4) % 8 != 0) {
                            push_ops = push_ops + 1;
                            relabel_ops = relabel_ops + push_ops % 2;
                        }
                    }
                }
            }
        }
        guard = guard + 1;
    }
}

fn sweep(int p, int t) {
    var region = N / NPROC;
    var chunk;
    for chunk in 0 .. 4 {
    drain(p, t * 4 + chunk);
    var k;
    for k in chunk * (PER * 3 / 4) .. chunk * (PER * 3 / 4) + PER * 3 / 4 {
        // Check the global solver status (read-mostly shared scalars).
        var watermark = 0;
        if (k % 2 == 0) {
            watermark = active_count;
        } else {
            watermark = excess_total;
        }
        if (watermark > 1 << 28) {
            barrier;
        }
        // Data-dependent node selection: push-relabel work queues favour
        // the local region, with occasional pushes across it. The static
        // analysis sees only prand — no per-process pattern.
        var v = (p * region + prand(p * 131 + k * 7 + t) % (region + 2)) % N;
        var w = (v + 1 + prand(k + t) % 4) % N;
        // Residual/admissibility computation (register-local work).
        var adm = 0;
        var s;
        for s in 0 .. 12 {
            adm = (adm * 5 + v + s) % 97;
        }
        if (excess[v] > 0 && height[v] < height[w] + 2 && cap[w] > 0) {
            var d = min(excess[v], min(cap[v], cap[w] + height[v]));
            excess[v] = excess[v] - d;
            excess[w] = excess[w] + d;
        } else {
            height[v] = height[v] + 1;
        }
    }
    }
    // One process refreshes the status pair at the end of the sweep.
    if (p == t % NPROC) {
        lock(qlock);
        active_count = active_count + 1;
        excess_total = excess_total + 1;
        unlock(qlock);
    }
}

fn main() {
    forall p in 0 .. NPROC {
        init(p);
        barrier;
        var t;
        for t in 0 .. ITER {
            sweep(p, t);
            barrier;
        }
    }
}
"#;

pub fn workload() -> Workload {
    Workload {
        name: "maxflow",
        description: "Maximum flow in a directed graph (push-relabel)",
        source: SOURCE,
        versions: &[Version::Unoptimized, Version::Compiler],
        programmer_plan: None,
        paper: PaperFacts {
            fs_reduction_pct: Some(56.5),
            dominant_transform: "pad & align (49.2%) + locks (7.3%)",
            max_speedup: (Some(1.4), 4.3, None),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_paper_mix() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        // Detected busy scalars are padded; the lock is padded.
        assert_eq!(get("active_count"), Some(ObjPlan::PadElems));
        assert_eq!(get("excess_total"), Some(ObjPlan::PadElems));
        assert_eq!(get("qlock"), Some(ObjPlan::PadLock));
        // Underestimated scalars are missed (the paper's residual).
        assert_eq!(get("push_ops"), None);
        assert_eq!(get("relabel_ops"), None);
        // Data-dependent arrays are untouched (no per-process pattern,
        // too large to pad).
        assert_eq!(get("excess"), None);
        assert_eq!(get("height"), None);
        // No group&transpose or indirection for Maxflow (Table 2).
        let (t, i, _p, _l) = plan.counts();
        assert_eq!((t, i), (0, 0));
    }
}
