//! Pverify — parallel logic verification (Ma/Devadas/Wei/
//! Sangiovanni-Vincentelli; Table 1: versions N, C, P).
//!
//! Sharing structure per the paper:
//! - per-process data (`val`, `cnt`, `mark`) is **embedded in the gate
//!   records** of a netlist whose fan-in edges cross the partition, so
//!   every processor reads remote gates' `val` while owners rewrite the
//!   neighbouring fields in the same block — the dominant false sharing.
//!   The partition is established at run time (`first[]`), so a static
//!   transpose is impossible: the compiler applies **indirection**
//!   (Table 2: 81.6% of the reduction);
//! - two small per-process counter vectors are grouped & transposed
//!   (6.4%);
//! - the scheduling lock is padded (3.1%).
//!
//! The programmer version (paper: max speedup 3.5 vs the compiler's 5.9)
//! padded the obvious scheduling structures and one counter vector but
//! missed both the indirection and the second counter vector.

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Pverify: iterative gate re-evaluation over a random netlist.
param NPROC = 12;
param SCALE = 1;
const G = 144 * SCALE;         // gates
const ROUNDS = 10;

struct Gate {
    int typ;      // 0=and 1=or 2=not   (read-only after setup)
    int fan0;     // fan-in gate ids    (read-only after setup)
    int fan1;
    int val;      // output value: written by owner, read by everyone
    int cnt;      // owner's evaluation counter
    int mark;     // owner's last-round mark
}

shared Gate gates[G];
shared int first[NPROC + 1];      // run-time partition bounds
shared int done_count[NPROC];     // per-process counter vector
shared int vecs_checked[NPROC];   // second per-process counter vector
shared lock sched_lock;
shared int next_vector;

fn setup() {
    var q;
    for q in 0 .. NPROC + 1 {
        first[q] = q * G / NPROC;
    }
}

// Parallel initialization over the same partition the evaluator uses:
// the per-process write pattern of the gate fields is uniform across
// phases.
fn init_gates(int p) {
    var i;
    for i in first[p] .. first[p + 1] {
        gates[i].typ = prand(i) % 3;
        // Fan-ins come from a local neighbourhood (netlists have
        // locality): mostly the owner's partition, crossing it near the
        // boundary.
        gates[i].fan0 = (i + 1 + prand(i * 3 + 1) % 8) % G;
        gates[i].fan1 = prand(i * 3 + 2) % G;
        gates[i].val = prand(i * 3) % 2;
        gates[i].cnt = 0;
        gates[i].mark = 0;
    }
}

fn eval(int p, int r) {
    var dc = 0;
    var i;
    for i in first[p] .. first[p + 1] {
        // Cross-partition fan-in reads: remote gates' val.
        var a = gates[gates[i].fan0].val;
        var b = gates[gates[i].fan1].val;
        var nv = 0;
        if (gates[i].typ == 0) {
            nv = a & b;
        } else if (gates[i].typ == 1) {
            nv = a | b;
        } else {
            nv = 1 - a;
        }
        // Justification bookkeeping (register-local work).
        var e = 0;
        var q;
        for q in 0 .. 10 {
            e = (e * 3 + i + q) % 251;
        }
        nv = nv ^ (e & 0);
        // Logic activity: only a small fraction of gates change per
        // vector (the netlist is mostly quiescent), so the output is
        // rarely rewritten; the owner's bookkeeping fields are rewritten
        // every evaluation — in the packed layout THEY are what keeps
        // invalidating remote fan-in readers.
        if (nv != gates[i].val && prand(i * 17 + r) % 8 == 0) {
            gates[i].val = nv;          // owner writes (low activity)
        }
        gates[i].cnt = gates[i].cnt + 1;
        gates[i].mark = r;
        dc = dc + 1;
    }
    done_count[p] = done_count[p] + dc;
    if (p == r % NPROC) {
        // One process advances the vector counter per round.
        lock(sched_lock);
        next_vector = next_vector + 1;
        unlock(sched_lock);
    }
    vecs_checked[p] = vecs_checked[p] + 1;
}

// A new input vector: the master toggles a few primary inputs so
// activity keeps propagating round after round.
fn apply_vector(int p, int r) {
    if (p == 0) {
        var k;
        for k in 0 .. 8 {
            var g = prand(r * 31 + k) % G;
            gates[g].val = 1 - gates[g].val;
        }
    }
}

fn main() {
    setup();
    forall p in 0 .. NPROC {
        init_gates(p);
        barrier;
        var r;
        for r in 0 .. ROUNDS {
            apply_vector(p, r);
            barrier;
            eval(p, r);
            barrier;
        }
    }
}

"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // The programmer padded the scheduling machinery and transposed the
    // counter vector they knew about — but missed the gate-record
    // indirection and the second vector (the paper notes missed
    // group&transpose *and* indirection opportunities in Pverify).
    planutil::pad_lock(&mut plan, prog, "sched_lock");
    planutil::pad(&mut plan, prog, "next_vector");
    planutil::transpose_grouped(&mut plan, prog, "done_count", 0);
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "pverify",
        description: "Parallel logic verification over a gate netlist",
        source: SOURCE,
        versions: &[Version::Unoptimized, Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: Some(91.2),
            dominant_transform: "indirection (81.6%)",
            max_speedup: (Some(2.5), 5.9, Some(3.5)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_paper_mix() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        // Gate records: field indirection of the owner-written fields.
        match get("gates") {
            Some(ObjPlan::Indirect { fields }) => {
                assert!(!fields.is_empty(), "at least val/cnt/mark indirected");
            }
            other => panic!("expected indirection on gates, got {other:?}"),
        }
        // Per-process counter vectors: grouped transposes.
        assert!(matches!(
            get("done_count"),
            Some(ObjPlan::Transpose { group: Some(_), .. })
        ));
        assert!(matches!(
            get("vecs_checked"),
            Some(ObjPlan::Transpose { group: Some(_), .. })
        ));
        assert_eq!(get("sched_lock"), Some(ObjPlan::PadLock));
        // The partition array itself is read-mostly: untouched.
        assert_eq!(get("first"), None);
    }

    #[test]
    fn partition_is_validated_by_phase_analysis() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let (fid, _) = prog.object_by_name("first").unwrap();
        assert!(a.validated_partitions.contains(&fid));
    }
}
