//! Radiosity — equilibrium light distribution (SPLASH-2; Table 1:
//! versions N, C, P).
//!
//! Sharing structure per the paper:
//! - per-process radiosity accumulators indexed `[bin][pid]`: group &
//!   transpose dominates (Table 2: 85.6%);
//! - a busy task-queue head scalar: pad & align (1.0%);
//! - the task-queue lock: padding (6.8%).
//!
//! The programmer version (paper: 7.4 vs compiler 19.2) kept the
//! accumulator transpose but left the lock unpadded *and* co-allocated
//! with the queue head it protects, and missed the pad & align — at
//! scale the queue block ping-pong dominates.

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Radiosity: gather iterations with a central task queue.
param NPROC = 12;
param SCALE = 1;
const PATCHES = 144 * SCALE;
const BINS = 16;
const ITERS = 5;
const PER = PATCHES / NPROC + 1;
// Queue batch size: a couple of grabs per process per iteration.
const BATCH = PATCHES / (NPROC * 2) + 2;

// Task queue: lock and head scalar packed together with the patch data.
shared lock q_lock;
shared int q_head;
// Per-process accumulators: [bin][pid] interleaves owners.
shared int rad[BINS][NPROC];
shared int patches_done[NPROC];
// Patch data: read-shared form factors (serial-built).
shared int ff[PATCHES];
shared int bright[PATCHES];

fn setup() {
    q_head = 0;
}

// Parallel patch initialization (cyclic).
fn init_patches(int p) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < PATCHES) {
            ff[i] = prand(i) % 100 + 1;
            bright[i] = prand(i * 7) % 256;
        }
    }
}

fn gather(int p, int t) {
    var done = 0;
    while (done == 0) {
        // Grab a batch of patches from the central queue.
        lock(q_lock);
        var mine = q_head;
        q_head = q_head + BATCH;
        unlock(q_lock);
        if (mine >= PATCHES) {
            done = 1;
        } else {
            var k;
            for k in 0 .. BATCH {
                var i = mine + k;
                if (i < PATCHES) {
                    // Gather light from a few interacting patches.
                    var g = 0;
                    var n;
                    for n in 0 .. 6 {
                        var j = prand(i * 11 + n + t) % PATCHES;
                        g = g + bright[j] * ff[j] / 100;
                    }
                    // Shading integration (register-local work).
                    var s;
                    for s in 0 .. 48 {
                        g = (g * 3 + s) % 4093;
                    }
                    rad[g % BINS][p] = rad[g % BINS][p] + g;
                    patches_done[p] = patches_done[p] + 1;
                }
            }
        }
    }
}

fn main() {
    setup();
    forall p in 0 .. NPROC {
        init_patches(p);
        barrier;
        var t;
        for t in 0 .. ITERS {
            gather(p, t);
            barrier;
            if (p == 0) {
                q_head = 0;
            }
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // Accumulator transpose kept; lock left co-allocated with q_head and
    // unpadded; q_head not padded either.
    planutil::transpose_dim(&mut plan, prog, "rad", 1);
    planutil::transpose_grouped(&mut plan, prog, "patches_done", 0);
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "radiosity",
        description: "Equilibrium distribution of light (task-queue gather)",
        source: SOURCE,
        versions: &[Version::Unoptimized, Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: Some(93.5),
            dominant_transform: "group & transpose (85.6%) + locks (6.8%) + pad (1.0%)",
            max_speedup: (Some(7.0), 19.2, Some(7.4)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_paper_mix() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        assert!(matches!(get("rad"), Some(ObjPlan::Transpose { .. })));
        assert!(matches!(
            get("patches_done"),
            Some(ObjPlan::Transpose { .. })
        ));
        assert_eq!(get("q_lock"), Some(ObjPlan::PadLock));
        assert_eq!(get("q_head"), Some(ObjPlan::PadElems));
        // Patch tables are parallel-initialized cyclically; their
        // init-only writes are per-process, so a transpose is acceptable
        // (read-only afterwards).
        assert!(matches!(get("ff"), None | Some(ObjPlan::Transpose { .. })));
        assert!(matches!(
            get("bright"),
            None | Some(ObjPlan::Transpose { .. })
        ));
    }
}
