//! Water — n-body molecular dynamics (SPLASH; Table 1: versions C, P
//! only).
//!
//! Molecules are block-partitioned per process (`p*CHUNK ..`): the
//! compiler's chunk-owner group & transpose pads each process's block of
//! molecule state to cache-line boundaries and pads the per-molecule
//! force locks. The programmer version (paper: 4.6 vs compiler 9.9) only
//! padded locks — the molecule state keeps its partition-boundary and
//! inter-array false sharing.

use crate::planutil;
use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Water: molecular dynamics with blocked molecule ownership.
param NPROC = 12;
param SCALE = 1;
const MOLS = 192 * SCALE;
const CHUNK = MOLS / NPROC + 1;
const NLOCKS = 16;
const STEPS = 4;

// Blocked per-process molecule state (owner = i / CHUNK).
shared int mx[NPROC * CHUNK];
shared int mv[NPROC * CHUNK];
shared int mf[NPROC * CHUNK];
// Per-region force locks (co-located with the potential accumulator in
// the unoptimized layout).
shared lock flock[NLOCKS];
shared int potential[NLOCKS];

fn setup(int p) {
    var i;
    for i in p * CHUNK .. p * CHUNK + CHUNK {
        if (i < MOLS) {
            mx[i] = prand(i) % 1000;
            mv[i] = prand(i * 3) % 21 - 10;
            mf[i] = 0;
        }
    }
}

fn forces(int p, int t) {
    var pot = 0;
    var i;
    for i in p * CHUNK .. p * CHUNK + CHUNK {
        if (i < MOLS) {
            var f = 0;
            // Interact with a few data-dependent partners (reads of
            // remote molecules).
            var n;
            for n in 0 .. 6 {
                var j = prand(i * 7 + n + t) % MOLS;
                // Pairwise potential evaluation (register-local work).
                var e = 0;
                var s;
                for s in 0 .. 6 {
                    e = (e * 5 + j + s) % 173;
                }
                f = f + (mx[j] - mx[i]) / (abs(mx[j] - mx[i]) + 1) + e % 2;
            }
            mf[i] = f;
            pot = pot + abs(f);
        }
    }
    // Flush the accumulated potential once per step under the process's
    // region lock.
    var r = p % NLOCKS;
    lock(flock[r]);
    potential[r] = potential[r] + pot;
    unlock(flock[r]);
}

fn advance(int p) {
    var i;
    for i in p * CHUNK .. p * CHUNK + CHUNK {
        if (i < MOLS) {
            mv[i] = mv[i] + mf[i];
            mx[i] = (mx[i] + mv[i] / 8 + 1000) % 1000;
        }
    }
}

fn main() {
    forall p in 0 .. NPROC {
        setup(p);
        barrier;
        var t;
        for t in 0 .. STEPS {
            forces(p, t);
            barrier;
            advance(p);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let mut plan = LayoutPlan::unoptimized(block);
    // Locks padded; molecule state left as-is (the missed group &
    // transpose the paper credits the compiler with).
    planutil::pad_lock(&mut plan, prog, "flock");
    plan
}

pub fn workload() -> Workload {
    Workload {
        name: "water",
        description: "N-body molecular dynamics",
        source: SOURCE,
        versions: &[Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: None,
            dominant_transform: "group & transpose (blocked) + lock padding",
            max_speedup: (None, 9.9, Some(4.6)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_analysis::OwnerMap;
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_expectations() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        // Blocked ownership -> chunk transposes.
        for arr in ["mx", "mv", "mf"] {
            match get(arr) {
                Some(ObjPlan::Transpose { owner, .. }) => {
                    assert!(matches!(owner, OwnerMap::Chunk { .. }), "{arr}: {owner:?}");
                }
                other => panic!("expected chunk transpose on {arr}, got {other:?}"),
            }
        }
        assert_eq!(get("flock"), Some(ObjPlan::PadLock));
    }
}
