//! Mp3d — rarefied fluid flow particle simulation (SPLASH; Table 1:
//! versions C, P only).
//!
//! Particles are cyclically owned (group & transpose); space cells are
//! written by whichever particle lands in them — heavy data-dependent
//! write sharing that no transformation can remove (Mp3d is the paper's
//! poorest scaler: compiler 2.9, programmer 1.3). The small space-cell
//! property table is padded by the compiler; the programmer version —
//! the original, locality-oblivious SPLASH code — applied nothing.

use crate::{PaperFacts, Version, Workload};
use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub const SOURCE: &str = r#"
// Mp3d: particles moving through space cells.
param NPROC = 12;
param SCALE = 1;
const PARTS = 192 * SCALE;
const CELLS = 48;            // small enough that padding is feasible
const PER = PARTS / NPROC + 1;
const STEPS = 5;

// Cyclic per-process particle state.
shared int px[PARTS];
shared int pv[PARTS];
// Space cells: written by whoever's particle lands there (shared,
// scattered) — the unremovable sharing that limits Mp3d.
shared int cell_count[CELLS];
shared int cell_energy[CELLS];

fn init_parts(int p) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < PARTS) {
            px[i] = prand(i) % (CELLS * 16);
            pv[i] = prand(i * 3) % 15 - 7;
        }
    }
}

fn advance(int p, int t) {
    var k;
    for k in 0 .. PER {
        var i = k * NPROC + p;
        if (i < PARTS) {
            // Movement physics (register-local work).
            var e = 0;
            var s;
            for s in 0 .. 12 {
                e = (e * 7 + i + s) % 127;
            }
            var oldc = px[i] / 16;
            px[i] = (px[i] + pv[i] + e % 2 + CELLS * 16) % (CELLS * 16);
            var c = px[i] / 16;
            if (c != oldc) {
                // Only cell crossings touch the shared cell tables.
                cell_count[c] = cell_count[c] + 1;
                cell_energy[c] = cell_energy[c] + abs(pv[i]);
            }
            // Occasional collision changes velocity.
            if (prand(i + t) % 4 == 0) {
                pv[i] = prand(i * 5 + t) % 15 - 7;
            }
        }
    }
}

fn main() {
    forall p in 0 .. NPROC {
        init_parts(p);
        barrier;
        var t;
        for t in 0 .. STEPS {
            advance(p, t);
            barrier;
        }
    }
}
"#;

fn programmer_plan(prog: &Program, block: u32) -> LayoutPlan {
    let _ = prog;
    // The original Mp3d made no locality effort at all (the paper's worst
    // programmer result: 1.3 max speedup).
    LayoutPlan::unoptimized(block)
}

pub fn workload() -> Workload {
    Workload {
        name: "mp3d",
        description: "Rarefied fluid flow (particle-in-cell)",
        source: SOURCE,
        versions: &[Version::Compiler, Version::Programmer],
        programmer_plan: Some(programmer_plan),
        paper: PaperFacts {
            fs_reduction_pct: None,
            dominant_transform: "group & transpose + pad & align",
            max_speedup: (None, 2.9, Some(1.3)),
        },
    }
}

#[cfg(test)]
mod tests {
    use fsr_transform::ObjPlan;

    #[test]
    fn compiler_plan_matches_expectations() {
        let prog = fsr_lang::compile_with_params(super::SOURCE, &[("NPROC", 4)]).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &fsr_transform::PlanConfig::default());
        let get = |n: &str| {
            prog.object_by_name(n)
                .and_then(|(oid, _)| plan.get(oid).cloned())
        };
        assert!(matches!(get("px"), Some(ObjPlan::Transpose { .. })));
        assert!(matches!(get("pv"), Some(ObjPlan::Transpose { .. })));
        // Space cells: shared scattered writes, small enough to pad.
        assert_eq!(get("cell_count"), Some(ObjPlan::PadElems));
        assert_eq!(get("cell_energy"), Some(ObjPlan::PadElems));
    }
}
