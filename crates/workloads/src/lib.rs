//! The ten PPoPP'95 workload kernels, written in PSL.
//!
//! Each kernel reproduces the *sharing structure* the paper documents for
//! the corresponding benchmark — which data structures are per-process
//! vs. write-shared, which transformation the compiler applies to each,
//! where the programmer-optimized version falls short, and where residual
//! false sharing survives (Table 2 and §5). Absolute instruction counts
//! differ from the 1995 originals; the transformation mix and the shape
//! of the miss/speedup results are the reproduction target.
//!
//! Every kernel takes two params: `NPROC` (process count) and `SCALE`
//! (problem size multiplier; 1 = test-sized, benches use larger values).
//!
//! Version availability follows Table 1: Maxflow has no programmer
//! version; LocusRoute/Mp3d/Pthor/Water have no unoptimized version in
//! the paper's tables (we can still *run* their packed layout, but the
//! paper comparisons use C and P).

use fsr_lang::Program;
use fsr_transform::LayoutPlan;

pub(crate) mod fmm;
mod locusroute;
mod maxflow;
mod mp3d;
pub mod mutants;
mod pthor;
mod pverify;
mod radiosity;
mod raytrace;
mod topopt;
pub(crate) mod water;

/// Program versions from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// (N)ot optimized.
    Unoptimized,
    /// (C)ompiler optimized.
    Compiler,
    /// (P)rogrammer optimized.
    Programmer,
}

/// Paper-reported numbers for EXPERIMENTS.md comparison.
#[derive(Debug, Clone, Copy)]
pub struct PaperFacts {
    /// Table 2: total false-sharing reduction (%), when reported.
    pub fs_reduction_pct: Option<f64>,
    /// Table 2: the dominant transformation.
    pub dominant_transform: &'static str,
    /// Table 3: (original, compiler, programmer) max speedups.
    pub max_speedup: (Option<f64>, f64, Option<f64>),
}

/// One benchmark.
#[derive(Clone)]
pub struct Workload {
    pub name: &'static str,
    pub description: &'static str,
    pub source: &'static str,
    pub versions: &'static [Version],
    /// Hand-written plan mirroring the paper's programmer transformations
    /// (including their documented mistakes and omissions).
    pub programmer_plan: Option<fn(&Program, u32) -> LayoutPlan>,
    pub paper: PaperFacts,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

impl Workload {
    pub fn has(&self, v: Version) -> bool {
        self.versions.contains(&v)
    }
}

/// All ten workloads, in Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        maxflow::workload(),
        pverify::workload(),
        topopt::workload(),
        fmm::workload(),
        radiosity::workload(),
        raytrace::workload(),
        locusroute::workload(),
        mp3d::workload(),
        pthor::workload(),
        water::workload(),
    ]
}

/// Lookup by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

/// The six programs with both N and C versions (Figure 3 / Table 2).
pub fn figure3_set() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.has(Version::Unoptimized))
        .collect()
}

/// Plan-construction helpers shared by the programmer plans.
pub(crate) mod planutil {
    use fsr_analysis::OwnerMap;
    use fsr_lang::Program;
    use fsr_transform::{LayoutPlan, ObjPlan};

    pub fn pad(plan: &mut LayoutPlan, prog: &Program, name: &str) {
        if let Some((oid, _)) = prog.object_by_name(name) {
            plan.insert(oid, ObjPlan::PadElems, "programmer: pad & align");
        }
    }

    pub fn pad_lock(plan: &mut LayoutPlan, prog: &Program, name: &str) {
        if let Some((oid, _)) = prog.object_by_name(name) {
            plan.insert(oid, ObjPlan::PadLock, "programmer: padded lock");
        }
    }

    pub fn transpose_dim(plan: &mut LayoutPlan, prog: &Program, name: &str, dim: usize) {
        if let Some((oid, _)) = prog.object_by_name(name) {
            plan.insert(
                oid,
                ObjPlan::Transpose {
                    owner: OwnerMap::Dim { dim },
                    group: None,
                },
                "programmer: group & transpose",
            );
        }
    }

    pub fn transpose_grouped(plan: &mut LayoutPlan, prog: &Program, name: &str, dim: usize) {
        if let Some((oid, _)) = prog.object_by_name(name) {
            plan.insert(
                oid,
                ObjPlan::Transpose {
                    owner: OwnerMap::Dim { dim },
                    group: Some(0),
                },
                "programmer: group & transpose (grouped)",
            );
        }
    }

    /// Cyclic (interleaved) ownership: owner = index % NPROC. The usual
    /// programmer transpose for round-robin work distribution.
    pub fn transpose_cyclic(plan: &mut LayoutPlan, prog: &Program, name: &str, grouped: bool) {
        let nproc = prog.param_value("NPROC").unwrap_or(1);
        if let Some((oid, _)) = prog.object_by_name(name) {
            plan.insert(
                oid,
                ObjPlan::Transpose {
                    owner: OwnerMap::Interleave {
                        stride: nproc,
                        base: 0,
                    },
                    group: grouped.then_some(0),
                },
                "programmer: group & transpose (cyclic)",
            );
        }
    }

    /// Blocked ownership with an explicit chunk length (available to
    /// hand-written plans; the in-tree programmer plans use the cyclic
    /// and dim variants).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn transpose_chunk(plan: &mut LayoutPlan, prog: &Program, name: &str, chunk: i64) {
        if let Some((oid, _)) = prog.object_by_name(name) {
            plan.insert(
                oid,
                ObjPlan::Transpose {
                    owner: OwnerMap::Chunk { chunk },
                    group: None,
                },
                "programmer: group & transpose (blocked)",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_present_with_table1_versions() {
        let ws = all();
        assert_eq!(ws.len(), 10);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "maxflow",
                "pverify",
                "topopt",
                "fmm",
                "radiosity",
                "raytrace",
                "locusroute",
                "mp3d",
                "pthor",
                "water"
            ]
        );
        // Table 1 version availability.
        let w = by_name("maxflow").unwrap();
        assert!(w.has(Version::Unoptimized) && w.has(Version::Compiler));
        assert!(!w.has(Version::Programmer));
        let w = by_name("water").unwrap();
        assert!(!w.has(Version::Unoptimized));
        assert!(w.has(Version::Programmer));
        assert_eq!(figure3_set().len(), 6);
    }

    #[test]
    fn every_source_compiles_and_analyzes() {
        for w in all() {
            let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)])
                .unwrap_or_else(|e| panic!("{}: {}", w.name, e.render(w.source)));
            fsr_analysis::analyze(&prog).unwrap_or_else(|e| panic!("{}: analysis: {}", w.name, e));
        }
    }

    #[test]
    fn every_source_runs_under_unoptimized_layout() {
        for w in all() {
            let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)])
                .unwrap_or_else(|e| panic!("{}: {}", w.name, e.render(w.source)));
            let plan = fsr_transform::LayoutPlan::unoptimized(64);
            let layout = fsr_layout::Layout::build(&prog, &plan, 4);
            let code = fsr_interp::compile_program(&prog).unwrap();
            let mut sink = fsr_interp::CountingSink::default();
            let fin = fsr_interp::run(
                &prog,
                &layout,
                &code,
                fsr_interp::RunConfig::default(),
                &mut sink,
            )
            .unwrap_or_else(|e| panic!("{}: {}", w.name, e));
            assert!(
                fin.stats.refs > 1000,
                "{} too small: {:?}",
                w.name,
                fin.stats
            );
        }
    }

    #[test]
    fn planutil_helpers_build_valid_directives() {
        let prog = fsr_lang::compile_with_params(crate::water::SOURCE, &[("NPROC", 4)]).unwrap();
        let mut plan = fsr_transform::LayoutPlan::unoptimized(128);
        planutil::transpose_chunk(&mut plan, &prog, "mx", 16);
        planutil::transpose_cyclic(&mut plan, &prog, "mv", false);
        planutil::transpose_dim(&mut plan, &prog, "mf", 0);
        planutil::pad(&mut plan, &prog, "potential");
        planutil::pad_lock(&mut plan, &prog, "flock");
        assert_eq!(plan.counts(), (3, 0, 1, 1));
        // The plan must build a layout and run.
        let layout = fsr_layout::Layout::build(&prog, &plan, 4);
        let code = fsr_interp::compile_program(&prog).unwrap();
        fsr_interp::run(
            &prog,
            &layout,
            &code,
            fsr_interp::RunConfig::default(),
            &mut fsr_interp::CountingSink::default(),
        )
        .unwrap();
    }

    #[test]
    fn programmer_plans_build() {
        for w in all() {
            if let Some(f) = w.programmer_plan {
                let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)]).unwrap();
                let plan = f(&prog, 128);
                assert_eq!(plan.block_bytes, 128, "{}", w.name);
            }
        }
    }

    #[test]
    fn every_source_pretty_prints_and_reparses() {
        for w in all() {
            let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)])
                .unwrap_or_else(|e| panic!("{}: {}", w.name, e.render(w.source)));
            let text = fsr_lang::pretty::program(&prog);
            let reparsed = fsr_lang::compile_with_params(&text, &[("NPROC", 4)])
                .unwrap_or_else(|e| panic!("{}: round-trip: {}", w.name, e.render(&text)));
            // The round-tripped program must classify identically.
            let a1 = fsr_analysis::analyze(&prog).unwrap();
            let a2 = fsr_analysis::analyze(&reparsed).unwrap();
            assert_eq!(a1.classes.len(), a2.classes.len(), "{}", w.name);
            for (c1, c2) in a1.classes.iter().zip(&a2.classes) {
                assert_eq!(c1.write.pattern, c2.write.pattern, "{}", w.name);
                assert_eq!(c1.read.pattern, c2.read.pattern, "{}", w.name);
                assert_eq!(c1.owner_map, c2.owner_map, "{}", w.name);
            }
        }
    }

    #[test]
    fn analysis_reports_render_for_all_workloads() {
        for w in all() {
            let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 4)]).unwrap();
            let a = fsr_analysis::analyze(&prog).unwrap();
            let text = fsr_analysis::report::render(&prog, &a);
            assert!(text.contains("data structure"), "{}", w.name);
        }
    }

    #[test]
    fn paper_facts_are_consistent_with_versions() {
        for w in all() {
            // Table 3 original-speedup entries exist iff the program has
            // an unoptimized version; programmer entries iff P exists.
            assert_eq!(
                w.paper.max_speedup.0.is_some(),
                w.has(Version::Unoptimized),
                "{}",
                w.name
            );
            assert_eq!(
                w.paper.max_speedup.2.is_some(),
                w.has(Version::Programmer),
                "{}",
                w.name
            );
            assert_eq!(
                w.programmer_plan.is_some(),
                w.has(Version::Programmer),
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn workloads_scale_with_nproc() {
        // Every kernel must run at an awkward processor count too.
        for w in all() {
            let prog = fsr_lang::compile_with_params(w.source, &[("NPROC", 3)])
                .unwrap_or_else(|e| panic!("{}: {}", w.name, e.render(w.source)));
            let plan = fsr_transform::LayoutPlan::unoptimized(64);
            let layout = fsr_layout::Layout::build(&prog, &plan, 3);
            let code = fsr_interp::compile_program(&prog).unwrap();
            let mut sink = fsr_interp::CountingSink::default();
            fsr_interp::run(
                &prog,
                &layout,
                &code,
                fsr_interp::RunConfig::default(),
                &mut sink,
            )
            .unwrap_or_else(|e| panic!("{} @3 procs: {}", w.name, e));
        }
    }
}
