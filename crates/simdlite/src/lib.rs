//! Minimal portable SIMD shim: lane-parallel kernels over plain `u32`
//! / `u64` slices, written as straight-line loops the compiler
//! auto-vectorizes, with an optional accelerated path compiled under
//! `#[target_feature(enable = "avx2")]` and selected at runtime.
//!
//! This crate exists so the simulator's chunked replay
//! (`fsr-sim::MultiSim::access_chunk`) can express its decode stage —
//! block index, set index, word index for a whole chunk of trace
//! references — as array kernels without depending on unstable
//! `std::simd` or an external SIMD crate (the workspace builds
//! offline). Two rules keep it honest:
//!
//! - **Bit-identical results.** Every kernel computes exactly the same
//!   lanes on every backend; the accelerated path is the *same Rust
//!   loop* compiled with wider vector units enabled, never a
//!   reformulation. The crate's tests compare backends lane-for-lane.
//! - **Runtime dispatch, honest reporting.** The `accel` feature only
//!   *compiles* the wide path; it is used only when the CPU reports the
//!   feature at runtime. [`active_backend`] and [`detected_features`]
//!   say what actually ran, for benchmark provenance
//!   (`BENCH_simd.json` records both).

/// Lane-wise `dst[i] = src[i] >> sh`.
#[inline]
pub fn shr(dst: &mut [u32], src: &[u32], sh: u32) {
    dispatch!(shr_impl(dst, src, sh));
}

/// Lane-wise `dst[i] = src[i] & mask`.
#[inline]
pub fn and(dst: &mut [u32], src: &[u32], mask: u32) {
    dispatch!(and_impl(dst, src, mask));
}

/// Lane-wise `dst[i] = src[i] % d` (`d > 0`; power-of-two divisors
/// compile to a mask).
#[inline]
pub fn rem(dst: &mut [u32], src: &[u32], d: u32) {
    debug_assert!(d > 0);
    if d.is_power_of_two() {
        and(dst, src, d - 1);
    } else {
        dispatch!(rem_impl(dst, src, d));
    }
}

/// Lane-wise `dst[i] = src[i] / d` (`d > 0`; power-of-two divisors
/// compile to a shift).
#[inline]
pub fn div(dst: &mut [u32], src: &[u32], d: u32) {
    debug_assert!(d > 0);
    if d.is_power_of_two() {
        shr(dst, src, d.trailing_zeros());
    } else {
        dispatch!(div_impl(dst, src, d));
    }
}

/// Lane-wise fused index arithmetic: `dst[i] = a[i] * m + b[i]`.
#[inline]
pub fn mul_add(dst: &mut [u32], a: &[u32], m: u32, b: &[u32]) {
    dispatch!(mul_add_impl(dst, a, m, b));
}

/// Ballot: bit `i` of the result is set iff `a[i] == x`. At most 64
/// lanes.
#[inline]
pub fn eq_ballot(a: &[u32], x: u32) -> u64 {
    debug_assert!(a.len() <= 64);
    dispatch!(eq_ballot_impl(a, x))
}

/// Gather: `dst[i] = table[idx[i]]`. Bounds-checked; the caller
/// guarantees indices are in range (a translation map covers every
/// resolvable address).
#[inline]
pub fn gather(dst: &mut [u32], table: &[u32], idx: &[u32]) {
    for (d, &i) in dst.iter_mut().zip(idx) {
        *d = table[i as usize];
    }
}

/// The kernel bodies. Each is written once and compiled twice: at the
/// crate's baseline target features, and (with `accel`, on x86_64)
/// under `#[target_feature(enable = "avx2")]`.
macro_rules! kernels {
    () => {
        #[inline(always)]
        fn shr_body(dst: &mut [u32], src: &[u32], sh: u32) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s >> sh;
            }
        }

        #[inline(always)]
        fn and_body(dst: &mut [u32], src: &[u32], mask: u32) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s & mask;
            }
        }

        #[inline(always)]
        fn rem_body(dst: &mut [u32], src: &[u32], m: u32) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s % m;
            }
        }

        #[inline(always)]
        fn div_body(dst: &mut [u32], src: &[u32], m: u32) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s / m;
            }
        }

        #[inline(always)]
        fn mul_add_body(dst: &mut [u32], a: &[u32], m: u32, b: &[u32]) {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = x.wrapping_mul(m).wrapping_add(y);
            }
        }

        #[inline(always)]
        fn eq_ballot_body(a: &[u32], x: u32) -> u64 {
            let mut out = 0u64;
            for (i, &v) in a.iter().enumerate() {
                out |= ((v == x) as u64) << i;
            }
            out
        }
    };
}

/// Baseline backend: plain Rust, auto-vectorized at whatever target
/// features the build enables (SSE2 on x86_64 by default).
mod portable {
    kernels!();

    #[inline]
    pub fn shr_impl(dst: &mut [u32], src: &[u32], sh: u32) {
        shr_body(dst, src, sh)
    }
    #[inline]
    pub fn and_impl(dst: &mut [u32], src: &[u32], mask: u32) {
        and_body(dst, src, mask)
    }
    #[inline]
    pub fn rem_impl(dst: &mut [u32], src: &[u32], m: u32) {
        rem_body(dst, src, m)
    }
    #[inline]
    pub fn div_impl(dst: &mut [u32], src: &[u32], m: u32) {
        div_body(dst, src, m)
    }
    #[inline]
    pub fn mul_add_impl(dst: &mut [u32], a: &[u32], m: u32, b: &[u32]) {
        mul_add_body(dst, a, m, b)
    }
    #[inline]
    pub fn eq_ballot_impl(a: &[u32], x: u32) -> u64 {
        eq_ballot_body(a, x)
    }
}

/// Accelerated backend: the same loop bodies compiled with AVX2
/// enabled. Safety: each wrapper is only called after
/// [`avx2_available`] confirmed the CPU supports AVX2 at runtime.
#[cfg(all(feature = "accel", target_arch = "x86_64"))]
mod accel {
    kernels!();

    #[target_feature(enable = "avx2")]
    pub unsafe fn shr_impl(dst: &mut [u32], src: &[u32], sh: u32) {
        shr_body(dst, src, sh)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_impl(dst: &mut [u32], src: &[u32], mask: u32) {
        and_body(dst, src, mask)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn rem_impl(dst: &mut [u32], src: &[u32], m: u32) {
        rem_body(dst, src, m)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn div_impl(dst: &mut [u32], src: &[u32], m: u32) {
        div_body(dst, src, m)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_add_impl(dst: &mut [u32], a: &[u32], m: u32, b: &[u32]) {
        mul_add_body(dst, a, m, b)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn eq_ballot_impl(a: &[u32], x: u32) -> u64 {
        eq_ballot_body(a, x)
    }
}

/// Whether the accelerated path is compiled in *and* the CPU supports
/// it (checked once, cached).
#[cfg(all(feature = "accel", target_arch = "x86_64"))]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(all(feature = "accel", target_arch = "x86_64"))]
macro_rules! dispatch {
    ($f:ident($($arg:expr),*)) => {
        if crate::avx2_available() {
            // SAFETY: AVX2 presence was verified at runtime.
            unsafe { crate::accel::$f($($arg),*) }
        } else {
            crate::portable::$f($($arg),*)
        }
    };
}

#[cfg(not(all(feature = "accel", target_arch = "x86_64")))]
macro_rules! dispatch {
    ($f:ident($($arg:expr),*)) => {
        crate::portable::$f($($arg),*)
    };
}

use dispatch;

/// The backend kernels actually execute on this host: `"accel-avx2"`
/// when the accelerated path is compiled in and the CPU has AVX2,
/// `"portable"` otherwise.
pub fn active_backend() -> &'static str {
    #[cfg(all(feature = "accel", target_arch = "x86_64"))]
    if avx2_available() {
        return "accel-avx2";
    }
    "portable"
}

/// CPU vector features detected at runtime, for benchmark provenance.
/// Reports detection, not use — cross-reference [`active_backend`].
pub fn detected_features() -> Vec<&'static str> {
    #[allow(unused_mut)]
    let mut out: Vec<&'static str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        out.push("sse2"); // baseline on x86_64
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            out.push("avx512f");
        }
    }
    #[cfg(target_arch = "aarch64")]
    out.push("neon"); // baseline on aarch64
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<u32> {
        // Deterministic xorshift stream with edge values mixed in.
        let mut v = vec![0, 1, u32::MAX, 0x8000_0000, 0x7fff_ffff];
        let mut x = 0x9e37_79b9u32;
        for _ in 0..123 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            v.push(x);
        }
        v
    }

    #[test]
    fn shr_matches_scalar() {
        let src = inputs();
        let mut dst = vec![0u32; src.len()];
        for sh in [0u32, 1, 7, 31] {
            shr(&mut dst, &src, sh);
            for (d, s) in dst.iter().zip(&src) {
                assert_eq!(*d, s >> sh);
            }
        }
    }

    #[test]
    fn rem_and_div_match_scalar_for_pow2_and_odd_divisors() {
        let src = inputs();
        let mut dst = vec![0u32; src.len()];
        for d in [1u32, 2, 8, 64, 3, 7, 12, 1000] {
            rem(&mut dst, &src, d);
            for (r, s) in dst.iter().zip(&src) {
                assert_eq!(*r, s % d, "rem {d}");
            }
            div(&mut dst, &src, d);
            for (q, s) in dst.iter().zip(&src) {
                assert_eq!(*q, s / d, "div {d}");
            }
        }
    }

    #[test]
    fn mul_add_wraps_like_scalar() {
        let a = inputs();
        let b: Vec<u32> = a.iter().rev().copied().collect();
        let mut dst = vec![0u32; a.len()];
        mul_add(&mut dst, &a, 37, &b);
        for i in 0..a.len() {
            assert_eq!(dst[i], a[i].wrapping_mul(37).wrapping_add(b[i]));
        }
    }

    #[test]
    fn eq_ballot_sets_exactly_matching_lanes() {
        let a = [5u32, 9, 5, 0, 5, u32::MAX];
        assert_eq!(eq_ballot(&a, 5), 0b010101);
        assert_eq!(eq_ballot(&a, u32::MAX), 0b100000);
        assert_eq!(eq_ballot(&a, 42), 0);
        assert_eq!(eq_ballot(&[], 1), 0);
    }

    #[test]
    fn gather_reads_table() {
        let table = [10u32, 20, 30, 40];
        let idx = [3u32, 0, 2];
        let mut dst = [0u32; 3];
        gather(&mut dst, &table, &idx);
        assert_eq!(dst, [40, 10, 30]);
    }

    /// The portable and (when compiled) accelerated backends agree
    /// lane-for-lane; on hosts without the feature this degenerates to
    /// portable-vs-portable, which still pins the dispatch plumbing.
    #[test]
    fn backends_are_bit_identical() {
        let src = inputs();
        let mut via_dispatch = vec![0u32; src.len()];
        let mut via_portable = vec![0u32; src.len()];
        shr(&mut via_dispatch, &src, 5);
        portable::shr_impl(&mut via_portable, &src, 5);
        assert_eq!(via_dispatch, via_portable);
        rem(&mut via_dispatch, &src, 12);
        portable::rem_impl(&mut via_portable, &src, 12);
        assert_eq!(via_dispatch, via_portable);
        assert_eq!(eq_ballot(&src[..64], src[3]), {
            portable::eq_ballot_impl(&src[..64], src[3])
        });
    }

    #[test]
    fn backend_report_is_consistent() {
        let b = active_backend();
        assert!(b == "portable" || b == "accel-avx2");
        if b == "accel-avx2" {
            assert!(detected_features().contains(&"avx2"));
        }
    }
}
