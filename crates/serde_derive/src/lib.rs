//! Derive macros for the vendored `serde` facade.
//!
//! The workspace only ever uses `#[derive(serde::Serialize)]` /
//! `#[derive(serde::Deserialize)]` as markers on concrete types (no
//! `#[serde(...)]` attributes, no generic types, no serializer backend),
//! so the derives simply emit marker-trait impls. Parsing is done over
//! the raw token stream: the type name is the identifier following the
//! `struct`/`enum` keyword.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut after_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if after_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                after_kw = true;
            }
        }
    }
    panic!("derive(Serialize/Deserialize): no struct or enum name in input")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {} {{}}",
        type_name(input)
    )
    .parse()
    .unwrap()
}
