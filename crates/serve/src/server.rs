//! The daemon event loop: a [`Server`] owns one [`World`] behind a
//! mutex; every request takes a cheap [`Snapshot`] (two `Arc` bumps)
//! and computes against it *without* holding the world lock, so an
//! `open`/`change` never waits on a running simulation and concurrent
//! clients share every cached artifact.
//!
//! Transport is newline-delimited JSON-RPC on stdin/stdout or TCP
//! (thread per connection, all connections sharing the one world).
//! Responses carry the request `id`; streamed notifications
//! (`diagnostic` during `lint`, `cell` during `batch`) have no id and
//! arrive before the closing response, each as one atomic line.

use crate::json::Value;
use crate::proto::{
    self, batch_stats_json, cache_stats_json, error_response, evicted_json, notification,
    pipeline_error_json, response, run_result_json, Request,
};
use fsr_core::driver::{Job, ShardMode};
use fsr_core::{PipelineError, PlanSource, RunResult, Snapshot, World};
use std::io::{BufRead, Write};
use std::sync::Mutex;

/// Whether the event loop keeps reading after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    Continue,
    Shutdown,
}

/// A line-atomic output channel shared by the response path and the
/// streaming notification closures running on worker threads.
pub struct Output {
    inner: Mutex<Box<dyn Write + Send>>,
}

impl Output {
    pub fn new(w: impl Write + Send + 'static) -> Output {
        Output {
            inner: Mutex::new(Box::new(w)),
        }
    }

    pub fn line(&self, s: &str) {
        let mut w = self.inner.lock().unwrap();
        // A dead client (closed pipe) is not the server's error.
        let _ = writeln!(w, "{s}");
        let _ = w.flush();
    }
}

pub struct Server {
    world: Mutex<World>,
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl Server {
    pub fn new() -> Server {
        Server {
            world: Mutex::new(World::new()),
        }
    }

    fn snapshot(&self) -> Snapshot {
        self.world.lock().unwrap().snapshot()
    }

    /// Handle one request line: emits any notifications plus exactly
    /// one response on `out`, and reports whether to keep serving.
    pub fn handle(&self, line: &str, out: &Output) -> Flow {
        let line = line.trim();
        if line.is_empty() {
            return Flow::Continue;
        }
        let req = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                out.line(&error_response(&Value::Null, &format!("bad request: {e}")));
                return Flow::Continue;
            }
        };
        let id = req.id.clone();
        let flow = if req.method == "shutdown" {
            Flow::Shutdown
        } else {
            Flow::Continue
        };
        match self.dispatch(&req, out) {
            Ok(result) => out.line(&response(&id, result)),
            Err(msg) => out.line(&error_response(&id, &msg)),
        }
        flow
    }

    fn dispatch(&self, req: &Request, out: &Output) -> Result<Value, String> {
        match req.method.as_str() {
            "open" => self.open(&req.params),
            "change" => self.change(&req.params),
            "close" => self.close(&req.params),
            "lint" => self.lint(&req.params, out),
            "plan" => self.plan(&req.params),
            "simulate" => self.simulate(&req.params),
            "batch" => self.batch(&req.params, out),
            "stats" => self.stats(),
            "shutdown" => Ok(Value::Obj(vec![("ok".to_string(), Value::Bool(true))])),
            other => Err(format!("unknown method `{other}`")),
        }
    }

    /// Resolve the source text of a request: inline `text`, or the
    /// named built-in `workload`.
    fn source_of(params: &Value) -> Result<std::sync::Arc<str>, String> {
        if let Some(text) = params.get("text") {
            let t = text.as_str().ok_or("`text` must be a string")?;
            return Ok(std::sync::Arc::from(t));
        }
        if let Some(w) = params.get("workload") {
            let name = w.as_str().ok_or("`workload` must be a string")?;
            let w =
                fsr_workloads::by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
            return Ok(std::sync::Arc::from(w.source));
        }
        Err("`open` needs `text` or `workload`".to_string())
    }

    fn name_of(params: &Value) -> Result<&str, String> {
        params
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string `name`".to_string())
    }

    fn doc_of(snapshot: &Snapshot, params: &Value) -> Result<std::sync::Arc<str>, String> {
        let name = Self::name_of(params)?;
        snapshot
            .doc(name)
            .ok_or_else(|| format!("no open document named `{name}`"))
    }

    fn open(&self, params: &Value) -> Result<Value, String> {
        let name = Self::name_of(params)?;
        let src = Self::source_of(params)?;
        let mut world = self.world.lock().unwrap();
        let evicted = world.open(name, src);
        Ok(Value::Obj(vec![
            ("evicted".to_string(), evicted_json(&evicted)),
            ("docs".to_string(), Value::Int(world.doc_count() as i64)),
        ]))
    }

    fn change(&self, params: &Value) -> Result<Value, String> {
        let name = Self::name_of(params)?;
        let text = params
            .get("text")
            .and_then(Value::as_str)
            .ok_or("`change` needs string `text`")?;
        let mut world = self.world.lock().unwrap();
        let evicted = world
            .change(name, text)
            .ok_or_else(|| format!("no open document named `{name}` to change"))?;
        Ok(Value::Obj(vec![(
            "evicted".to_string(),
            evicted_json(&evicted),
        )]))
    }

    fn close(&self, params: &Value) -> Result<Value, String> {
        let name = Self::name_of(params)?;
        let mut world = self.world.lock().unwrap();
        let evicted = world.close(name);
        Ok(Value::Obj(vec![
            ("evicted".to_string(), evicted_json(&evicted)),
            ("docs".to_string(), Value::Int(world.doc_count() as i64)),
        ]))
    }

    fn lint(&self, params: &Value, out: &Output) -> Result<Value, String> {
        let snapshot = self.snapshot();
        let src = Self::doc_of(&snapshot, params)?;
        let name = Self::name_of(params)?;
        let p = proto::parse_params(params.get("params"))?;
        // Opt-in dynamic refinement: record a reference trace and use
        // its conflict witnesses to upgrade statically-unprovable
        // suppressed pairs (cached separately from the plain lint).
        let refine = params
            .get("refine")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let (summary, warm) = if refine {
            snapshot.lint_refined(&src, &p)
        } else {
            snapshot.lint(&src, &p)
        }
        .map_err(|e| pipeline_error_json(&e, &src).to_string())?;
        // Stream each finding before the summary, in report order.
        for (i, d) in summary.diagnostics.iter().enumerate() {
            let diag = crate::json::parse(&d.to_json(&src)).expect("diagnostic JSON is valid");
            out.line(&notification(
                "diagnostic",
                Value::Obj(vec![
                    ("doc".to_string(), Value::str(name)),
                    ("index".to_string(), Value::Int(i as i64)),
                    ("diagnostic".to_string(), diag),
                ]),
            ));
        }
        Ok(Value::Obj(vec![
            (
                "count".to_string(),
                Value::Int(summary.diagnostics.len() as i64),
            ),
            (
                "racy".to_string(),
                Value::Arr(summary.racy.iter().map(Value::str).collect()),
            ),
            (
                "suppressed_pairs".to_string(),
                Value::Int(summary.suppressed_pairs as i64),
            ),
            ("warm".to_string(), Value::Bool(warm)),
            // Appended fields (wire policy: never reorder or remove).
            (
                "suppressed".to_string(),
                Value::Arr(
                    summary
                        .suppressed
                        .iter()
                        .map(|(obj, reason)| {
                            Value::Obj(vec![
                                ("object".to_string(), Value::str(obj)),
                                ("reason".to_string(), Value::str(reason)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("refined".to_string(), Value::Bool(summary.refined)),
        ]))
    }

    fn plan(&self, params: &Value) -> Result<Value, String> {
        let snapshot = self.snapshot();
        let src = Self::doc_of(&snapshot, params)?;
        let p = proto::parse_params(params.get("params"))?;
        let cfg = proto::parse_config(params.get("config"))?;
        let fe = snapshot
            .front_end(&src, &p)
            .map_err(|e| pipeline_error_json(&e, &src).to_string())?;
        let plan = fsr_core::plan_of(&fe.prog, &PlanSource::Compiler, &cfg)
            .map_err(|e| pipeline_error_json(&e, &src).to_string())?;
        Ok(proto::plan_json(&plan, &fe.prog))
    }

    /// Build one driver job from a request-shaped object.
    fn job_of<M>(snapshot: &Snapshot, params: &Value, meta: M) -> Result<Job<M>, String> {
        let src = Self::doc_of(snapshot, params)?;
        Ok(Job {
            meta,
            src,
            params: proto::parse_params(params.get("params"))?,
            plan: proto::parse_plan(params.get("plan"))?,
            cfg: proto::parse_config(params.get("config"))?,
        })
    }

    fn simulate(&self, params: &Value) -> Result<Value, String> {
        let snapshot = self.snapshot();
        let job = Self::job_of(&snapshot, params, ())?;
        let src = job.src.clone();
        let job_params = job.params.clone();
        let (mut results, stats) =
            snapshot.run_batch_sharded_with_stats(vec![job], 1, ShardMode::Auto);
        let (_, result) = results.remove(0);
        let r = result.map_err(|e| pipeline_error_json(&e, &src).to_string())?;
        // The run succeeded, so the front end is warm in the cache; it
        // supplies object names for the plan rendering.
        let fe = snapshot
            .front_end(&src, &job_params)
            .map_err(|e| pipeline_error_json(&e, &src).to_string())?;
        Ok(Value::Obj(vec![
            ("result".to_string(), run_result_json(&r, &fe.prog)),
            ("stats".to_string(), batch_stats_json(&stats)),
        ]))
    }

    fn batch(&self, params: &Value, out: &Output) -> Result<Value, String> {
        let snapshot = self.snapshot();
        let jobs_val = params
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or("`batch` needs a `jobs` array")?;
        let threads = match params.get("threads") {
            Some(t) => t.as_i64().ok_or("`threads` must be an integer")? as usize,
            None => 0, // auto
        };
        let mut jobs = Vec::with_capacity(jobs_val.len());
        for (i, jv) in jobs_val.iter().enumerate() {
            jobs.push(Self::job_of(&snapshot, jv, i).map_err(|e| format!("job {i}: {e}"))?);
        }
        let srcs: Vec<std::sync::Arc<str>> = jobs.iter().map(|j| j.src.clone()).collect();
        let job_params: Vec<Vec<(String, i64)>> = jobs.iter().map(|j| j.params.clone()).collect();
        // Stream a compact progress line per cell as each resolves;
        // full results follow in the response. Cells may finish out of
        // submission order — `index` identifies them.
        let notify = |index: usize, r: &Result<RunResult, PipelineError>| {
            let mut fields = vec![("index".to_string(), Value::Int(index as i64))];
            match r {
                Ok(r) => {
                    fields.push(("ok".to_string(), Value::Bool(true)));
                    fields.push(("exec_cycles".to_string(), Value::Int(r.exec_cycles as i64)));
                }
                Err(e) => {
                    fields.push(("ok".to_string(), Value::Bool(false)));
                    fields.push(("error".to_string(), pipeline_error_json(e, &srcs[index])));
                }
            }
            out.line(&notification("cell", Value::Obj(fields)));
        };
        let (results, stats) =
            snapshot.run_batch_streaming(jobs, threads, ShardMode::Auto, &notify);
        let mut cells = Vec::with_capacity(results.len());
        for (job, result) in results {
            let i = job.meta;
            match result {
                Ok(r) => {
                    let fe = snapshot
                        .front_end(&srcs[i], &job_params[i])
                        .map_err(|e| pipeline_error_json(&e, &srcs[i]).to_string())?;
                    cells.push(Value::Obj(vec![
                        ("ok".to_string(), Value::Bool(true)),
                        ("result".to_string(), run_result_json(&r, &fe.prog)),
                    ]));
                }
                Err(e) => cells.push(Value::Obj(vec![
                    ("ok".to_string(), Value::Bool(false)),
                    ("error".to_string(), pipeline_error_json(&e, &srcs[i])),
                ])),
            }
        }
        Ok(Value::Obj(vec![
            ("cells".to_string(), Value::Arr(cells)),
            ("stats".to_string(), batch_stats_json(&stats)),
        ]))
    }

    fn stats(&self) -> Result<Value, String> {
        let world = self.world.lock().unwrap();
        Ok(Value::Obj(vec![
            ("docs".to_string(), Value::Int(world.doc_count() as i64)),
            ("caches".to_string(), cache_stats_json(&world.cache_stats())),
        ]))
    }
}

/// Serve newline-delimited requests from `input` until EOF or a
/// `shutdown` request.
pub fn serve_lines(server: &Server, input: impl BufRead, out: &Output) {
    for line in input.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if server.handle(&line, out) == Flow::Shutdown {
            break;
        }
    }
}

/// Serve one process-wide world over TCP, one thread per connection.
/// Returns when a client sends `shutdown`. Binding port 0 picks a free
/// port; the chosen address is announced on stderr as
/// `fsr-serve: listening on ADDR` for the caller to scrape.
pub fn serve_tcp(server: std::sync::Arc<Server>, addr: &str) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!("fsr-serve: listening on {}", listener.local_addr()?);
    serve_tcp_on(server, listener)
}

/// [`serve_tcp`] over a listener the caller already bound — lets
/// in-process harnesses (benches, tests) learn the port before the
/// accept loop starts.
pub fn serve_tcp_on(
    server: std::sync::Arc<Server>,
    listener: std::net::TcpListener,
) -> std::io::Result<()> {
    let local = listener.local_addr()?;
    let shutdown = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for conn in listener.incoming() {
        if shutdown.load(std::sync::atomic::Ordering::SeqCst) {
            break;
        }
        let conn = conn?;
        let reader = std::io::BufReader::new(conn.try_clone()?);
        let out = Output::new(conn);
        let server = server.clone();
        let shutdown = shutdown.clone();
        workers.push(std::thread::spawn(move || {
            for line in reader.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                if server.handle(&line, &out) == Flow::Shutdown {
                    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                    // The accept loop is blocked in `incoming()`; a
                    // throwaway loopback connection unblocks it so it
                    // can observe the flag and exit.
                    let _ = std::net::TcpStream::connect(local);
                    break;
                }
            }
        }));
        // Reap finished connection threads so a long-lived daemon
        // doesn't accumulate handles.
        workers.retain(|h| !h.is_finished());
    }
    for h in workers {
        let _ = h.join();
    }
    Ok(())
}
