//! A minimal JSON value, parser and writer for the wire protocol.
//!
//! The workspace's vendored `serde` is a no-op marker-trait stand-in
//! (see DESIGN.md §7), so the daemon carries its own ~200-line
//! recursive-descent parser instead. Only what newline-delimited
//! JSON-RPC needs: the seven value shapes, `\u` escapes with surrogate
//! pairs, and a writer whose output is deterministic (object key order
//! is insertion order; floats use Rust's shortest-roundtrip `Display`).

use std::fmt;

/// A parsed JSON value. Integers that fit `i64` are kept exact in
/// `Int`; everything else numeric falls back to `Num`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order is preserved — it is the writer's output order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // JSON has no NaN/Infinity; degrade to null rather than
            // emit an unparseable line.
            Value::Num(n) if !n.is_finite() => f.write_str("null"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{}\"", fsr_lang::diag::json_escape(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "\"{}\": {v}", fsr_lang::diag::json_escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error (the
/// transport is strictly one document per line).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(s).map_err(|_| "non-ascii \\u escape".to_string())?;
        let n = u16::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let n =
                                    0x10000 + (((hi as u32) - 0xd800) << 10) + (lo as u32 - 0xdc00);
                                char::from_u32(n).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi as u32).ok_or("bad \\u codepoint")?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string"));
                }
                Some(_) => {
                    // Copy one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        // Writer escapes what must be escaped and re-parses identically.
        let s = Value::str("say \"hi\"\n\tdone\u{1}∞").to_string();
        assert_eq!(parse(&s).unwrap(), Value::str("say \"hi\"\n\tdone\u{1}∞"));
    }

    #[test]
    fn writer_output_reparses() {
        let v = Value::Obj(vec![
            ("n".into(), Value::Int(-3)),
            ("f".into(), Value::Num(0.125)),
            ("s".into(), Value::str("x")),
            ("a".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("o".into(), Value::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn big_integers_stay_exact() {
        assert_eq!(
            parse("9007199254740993").unwrap(),
            Value::Int(9007199254740993)
        );
        assert_eq!(Value::Int(9007199254740993).to_string(), "9007199254740993");
    }
}
