//! CLI entry point: `fsr-serve` speaks the protocol on stdin/stdout;
//! `fsr-serve --tcp ADDR` listens on a socket instead (ADDR like
//! `127.0.0.1:0` — port 0 picks a free port, announced on stderr).

use fsr_serve::{serve_lines, serve_tcp, Output, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            let server = Server::new();
            let out = Output::new(std::io::stdout());
            serve_lines(&server, std::io::stdin().lock(), &out);
        }
        Some("--tcp") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:0");
            let server = std::sync::Arc::new(Server::new());
            if let Err(e) = serve_tcp(server, addr) {
                eprintln!("fsr-serve: {e}");
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("fsr-serve: unknown argument `{other}` (usage: fsr-serve [--tcp ADDR])");
            std::process::exit(2);
        }
    }
}
