//! Wire protocol: newline-delimited JSON-RPC requests and the stable
//! JSON renderings of the pipeline's result and statistics types.
//!
//! Every response/notification is one line of JSON with deterministic
//! field order (objects preserve insertion order; per-object maps come
//! from `BTreeMap`s, so their iteration order is the sort order), which
//! is what lets the tier-1 smoke test diff a scripted session against a
//! pinned golden byte-for-byte.

use crate::json::Value;
use fsr_core::driver::{BatchStats, PlanSourceSpec};
use fsr_core::{
    CacheStats, CoherenceEvent, Evicted, InterconnectKind, LayoutPlan, MissKind, ObjPlan,
    PipelineConfig, PipelineError, Program, ProtocolKind, RunResult, Schedule, SimEngine,
};

/// One parsed request line. `id` is echoed verbatim in the response;
/// requests without an id still get a response with `"id": null`.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: Value,
    pub method: String,
    pub params: Value,
}

pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = crate::json::parse(line)?;
    let method = v
        .get("method")
        .and_then(Value::as_str)
        .ok_or("request needs a string `method`")?
        .to_string();
    let id = v.get("id").cloned().unwrap_or(Value::Null);
    let params = v.get("params").cloned().unwrap_or(Value::Obj(vec![]));
    Ok(Request { id, method, params })
}

pub fn response(id: &Value, result: Value) -> String {
    format!("{{\"id\": {id}, \"result\": {result}}}")
}

pub fn error_response(id: &Value, msg: &str) -> String {
    format!(
        "{{\"id\": {id}, \"error\": {{\"message\": {}}}}}",
        Value::str(msg)
    )
}

pub fn notification(method: &str, params: Value) -> String {
    format!(
        "{{\"method\": {}, \"params\": {params}}}",
        Value::str(method)
    )
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn u64v(n: u64) -> Value {
    Value::Int(n as i64)
}

fn u64s(ns: &[u64]) -> Value {
    Value::Arr(ns.iter().map(|&n| u64v(n)).collect())
}

fn misses_obj(misses: &[u64; MissKind::COUNT]) -> Value {
    Value::Obj(
        MissKind::ALL
            .iter()
            .map(|&k| (k.name().to_string(), u64v(misses[k as usize])))
            .collect(),
    )
}

fn plan_kind(p: &ObjPlan) -> &'static str {
    match p {
        ObjPlan::Transpose { .. } => "transpose",
        ObjPlan::Indirect { .. } => "indirect",
        ObjPlan::PadElems => "pad-elems",
        ObjPlan::PadLock => "pad-lock",
    }
}

/// The layout plan on the wire: block size plus one entry per
/// transformed object, in object-id order.
pub fn plan_json(plan: &LayoutPlan, prog: &Program) -> Value {
    let transformed: Vec<Value> = plan
        .directives
        .iter()
        .map(|(&oid, p)| {
            let mut fields = vec![
                ("obj", Value::str(prog.object(oid).name.clone())),
                ("kind", Value::str(plan_kind(p))),
            ];
            if let Some(reason) = plan.reasons.get(&oid) {
                fields.push(("reason", Value::str(reason.clone())));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("block", Value::Int(plan.block_bytes as i64)),
        ("transformed", Value::Arr(transformed)),
    ])
}

/// Full stable rendering of one pipeline result. Field order and names
/// are part of the external interface; only ever append.
pub fn run_result_json(r: &RunResult, prog: &Program) -> Value {
    let per_obj = Value::Obj(
        r.per_obj
            .iter()
            .map(|(name, m)| (name.clone(), misses_obj(&m.misses)))
            .collect(),
    );
    let per_obj_coherence = Value::Obj(
        r.per_obj_coherence
            .iter()
            .map(|(name, c)| {
                let mut fields: Vec<(String, Value)> = CoherenceEvent::ALL
                    .iter()
                    .map(|&e| (e.name().to_string(), u64v(c.events[e as usize])))
                    .collect();
                fields.push(("queue_stall".to_string(), u64v(c.queue_stall)));
                (name.clone(), Value::Obj(fields))
            })
            .collect(),
    );
    let per_obj_refs = Value::Obj(
        r.per_obj_refs
            .iter()
            .map(|(name, &n)| (name.clone(), u64v(n)))
            .collect(),
    );
    let sim = obj(vec![
        ("refs", u64v(r.sim.refs)),
        ("reads", u64v(r.sim.reads)),
        ("writes", u64v(r.sim.writes)),
        ("misses", misses_obj(&r.sim.misses)),
        ("upgrades", u64v(r.sim.upgrades)),
        ("invalidations", u64v(r.sim.invalidations)),
        ("interventions", u64v(r.sim.interventions)),
        ("exclusive_hits", u64v(r.sim.exclusive_hits)),
        ("dir_txns", u64v(r.sim.dir_txns)),
    ]);
    let timing = obj(vec![
        ("busy", u64s(&r.timing.busy)),
        ("stall", u64s(&r.timing.stall)),
        ("queue", u64s(&r.timing.queue)),
        ("stall_by_kind", misses_obj(&r.timing.stall_by_kind)),
        ("upgrade_stall", u64v(r.timing.upgrade_stall)),
        ("channel_busy", u64s(&r.timing.channel_busy)),
        ("two_hop", u64v(r.timing.two_hop)),
        ("three_hop", u64v(r.timing.three_hop)),
        ("steal_joins", u64v(r.timing.steal_joins)),
    ]);
    let interp = obj(vec![
        ("instructions", u64v(r.interp.instructions)),
        ("refs", u64v(r.interp.refs)),
        ("spin_rereads", u64v(r.interp.spin_rereads)),
        ("barriers_crossed", u64v(r.interp.barriers_crossed)),
        ("lock_acquires", u64v(r.interp.lock_acquires)),
        ("steals", u64v(r.interp.steals)),
    ]);
    obj(vec![
        ("nproc", Value::Int(r.nproc as i64)),
        ("plan", plan_json(&r.plan, prog)),
        ("sim", sim),
        ("per_obj", per_obj),
        ("per_obj_coherence", per_obj_coherence),
        ("per_obj_refs", per_obj_refs),
        ("exec_cycles", u64v(r.exec_cycles)),
        ("timing", timing),
        ("interp", interp),
        ("miss_rate", Value::Num(r.miss_rate())),
        ("fs_miss_rate", Value::Num(r.false_sharing_miss_rate())),
        ("fs_stall_frac", Value::Num(r.fs_stall_frac)),
    ])
}

pub fn batch_stats_json(s: &BatchStats) -> Value {
    obj(vec![
        ("jobs", Value::Int(s.jobs as i64)),
        ("front_ends", Value::Int(s.front_ends as i64)),
        ("fe_hits", Value::Int(s.fe_hits as i64)),
        ("analyses", Value::Int(s.analyses as i64)),
        ("trace_groups", Value::Int(s.trace_groups as i64)),
        ("interpretations", Value::Int(s.interpretations as i64)),
        ("trace_hits", Value::Int(s.trace_hits as i64)),
        ("result_hits", Value::Int(s.result_hits as i64)),
        ("segments", u64v(s.segments)),
    ])
}

pub fn evicted_json(e: &Evicted) -> Value {
    obj(vec![
        ("front_ends", Value::Int(e.front_ends as i64)),
        ("lints", Value::Int(e.lints as i64)),
        ("traces", Value::Int(e.traces as i64)),
        ("results", Value::Int(e.results as i64)),
    ])
}

pub fn cache_stats_json(s: &CacheStats) -> Value {
    obj(vec![
        ("front_ends", Value::Int(s.front_ends as i64)),
        ("fe_hits", u64v(s.fe_hits)),
        ("fe_misses", u64v(s.fe_misses)),
        ("lints", Value::Int(s.lints as i64)),
        ("lint_hits", u64v(s.lint_hits)),
        ("lint_misses", u64v(s.lint_misses)),
        ("traces", Value::Int(s.traces as i64)),
        ("trace_hits", u64v(s.trace_hits)),
        ("trace_misses", u64v(s.trace_misses)),
        ("results", Value::Int(s.results as i64)),
        ("result_hits", u64v(s.result_hits)),
        ("result_misses", u64v(s.result_misses)),
    ])
}

/// Render a pipeline error as a one-line message (plus the structured
/// diagnostic JSON when the failure is a front-end error with a span).
pub fn pipeline_error_json(e: &PipelineError, src: &str) -> Value {
    match e {
        PipelineError::Lang(err) => obj(vec![
            ("message", Value::str(err.render(src))),
            (
                "diagnostic",
                crate::json::parse(&fsr_lang::Diagnostic::from(err.clone()).to_json(src))
                    .unwrap_or(Value::Null),
            ),
        ]),
        other => obj(vec![("message", Value::str(format!("{other:?}")))]),
    }
}

/// `params` on the wire is a JSON object of `name -> integer`;
/// normalized to sorted order so equal bindings always produce the same
/// cache key regardless of client field order.
pub fn parse_params(v: Option<&Value>) -> Result<Vec<(String, i64)>, String> {
    let mut out = Vec::new();
    if let Some(v) = v {
        let fields = v.as_obj().ok_or("`params` must be an object")?;
        for (k, val) in fields {
            let n = val
                .as_i64()
                .ok_or_else(|| format!("param `{k}` must be an integer"))?;
            out.push((k.clone(), n));
        }
    }
    out.sort();
    Ok(out)
}

/// `plan` on the wire: `"unoptimized"` (default) or `"compiler"`.
pub fn parse_plan(v: Option<&Value>) -> Result<PlanSourceSpec, String> {
    match v {
        None | Some(Value::Null) => Ok(PlanSourceSpec::Unoptimized),
        Some(v) => match v.as_str() {
            Some("unoptimized") => Ok(PlanSourceSpec::Unoptimized),
            Some("compiler") => Ok(PlanSourceSpec::Compiler),
            _ => Err(format!(
                "unknown plan {v} (use \"unoptimized\" or \"compiler\")"
            )),
        },
    }
}

fn parse_protocol(s: &str) -> Result<ProtocolKind, String> {
    ProtocolKind::ALL
        .into_iter()
        .find(|p| p.name() == s)
        .ok_or_else(|| format!("unknown protocol `{s}`"))
}

fn parse_interconnect(s: &str) -> Result<InterconnectKind, String> {
    InterconnectKind::ALL
        .into_iter()
        .find(|i| i.name() == s)
        .ok_or_else(|| format!("unknown interconnect `{s}`"))
}

/// `schedule` on the wire: the string `"round_robin"` (the default) or
/// an object `{"kind": "work_steal", "seed": N}`.
fn parse_schedule(v: &Value) -> Result<Schedule, String> {
    if let Some(s) = v.as_str() {
        return match s {
            "round_robin" => Ok(Schedule::RoundRobin),
            _ => Err(format!(
                "unknown schedule `{s}` (use \"round_robin\" or \
                 {{\"kind\": \"work_steal\", \"seed\": N}})"
            )),
        };
    }
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("`schedule` object needs a string `kind`")?;
    match kind {
        "round_robin" => Ok(Schedule::RoundRobin),
        "work_steal" => {
            let seed = v
                .get("seed")
                .ok_or("work_steal schedule needs a `seed`")?
                .as_i64()
                .ok_or("`schedule.seed` must be an integer")? as u64;
            Ok(Schedule::WorkSteal { seed })
        }
        _ => Err(format!("unknown schedule kind `{kind}`")),
    }
}

/// `config` on the wire: a flat object over the pipeline's axes. Every
/// key is optional; omitted keys take [`PipelineConfig`] defaults.
///
/// ```json
/// {"block": 128, "cache_bytes": 32768, "assoc": 4,
///  "protocol": "msi", "interconnect": "ksr2-ring",
///  "engine": "soa-chunked", "seed": 1592510158, "max_steps": 2000000000,
///  "schedule": {"kind": "work_steal", "seed": 7}}
/// ```
pub fn parse_config(v: Option<&Value>) -> Result<PipelineConfig, String> {
    let block = match v.and_then(|v| v.get("block")) {
        Some(b) => b.as_i64().ok_or("`block` must be an integer")? as u32,
        None => 128,
    };
    let mut cfg = PipelineConfig::with_block(block);
    let v = match v {
        Some(v) => v,
        None => return Ok(cfg),
    };
    if let Some(c) = v.get("cache_bytes") {
        cfg.cache_bytes = c.as_i64().ok_or("`cache_bytes` must be an integer")? as u32;
    }
    if let Some(a) = v.get("assoc") {
        cfg.assoc = a.as_i64().ok_or("`assoc` must be an integer")? as u32;
    }
    if let Some(p) = v.get("protocol") {
        cfg.protocol = parse_protocol(p.as_str().ok_or("`protocol` must be a string")?)?;
    }
    if let Some(i) = v.get("interconnect") {
        cfg.machine.interconnect =
            parse_interconnect(i.as_str().ok_or("`interconnect` must be a string")?)?;
    }
    if let Some(e) = v.get("engine") {
        let name = e.as_str().ok_or("`engine` must be a string")?;
        cfg.engine = SimEngine::parse(name).ok_or_else(|| format!("unknown engine `{name}`"))?;
    }
    if let Some(s) = v.get("seed") {
        cfg.run.seed = s.as_i64().ok_or("`seed` must be an integer")? as u64;
    }
    if let Some(m) = v.get("max_steps") {
        cfg.run.max_steps = m.as_i64().ok_or("`max_steps` must be an integer")? as u64;
    }
    if let Some(s) = v.get("schedule") {
        cfg.run.schedule = parse_schedule(s)?;
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_extracts_fields() {
        let r = parse_request(r#"{"id": 7, "method": "lint", "params": {"name": "w"}}"#).unwrap();
        assert_eq!(r.id, Value::Int(7));
        assert_eq!(r.method, "lint");
        assert_eq!(r.params.get("name").unwrap().as_str(), Some("w"));
        // id and params are optional.
        let r = parse_request(r#"{"method": "stats"}"#).unwrap();
        assert_eq!(r.id, Value::Null);
        assert!(parse_request(r#"{"params": {}}"#).is_err());
    }

    #[test]
    fn params_normalize_to_sorted_order() {
        let v = crate::json::parse(r#"{"SCALE": 2, "NPROC": 8}"#).unwrap();
        let p = parse_params(Some(&v)).unwrap();
        assert_eq!(p, vec![("NPROC".to_string(), 8), ("SCALE".to_string(), 2)]);
        assert_eq!(parse_params(None).unwrap(), vec![]);
        let bad = crate::json::parse(r#"{"NPROC": "eight"}"#).unwrap();
        assert!(parse_params(Some(&bad)).is_err());
    }

    #[test]
    fn config_parsing_covers_every_axis() {
        let v = crate::json::parse(
            r#"{"block": 64, "cache_bytes": 16384, "assoc": 2,
                "protocol": "directory", "interconnect": "home-dir",
                "engine": "scalar", "seed": 99, "max_steps": 1000,
                "schedule": {"kind": "work_steal", "seed": 7}}"#,
        )
        .unwrap();
        let cfg = parse_config(Some(&v)).unwrap();
        assert_eq!(cfg.block_bytes, 64);
        assert_eq!(cfg.plan_cfg.block_bytes, 64, "plan block follows");
        assert_eq!(cfg.cache_bytes, 16384);
        assert_eq!(cfg.assoc, 2);
        assert_eq!(cfg.protocol, ProtocolKind::Directory);
        assert_eq!(cfg.machine.interconnect, InterconnectKind::HomeDir);
        assert_eq!(cfg.engine, SimEngine::Scalar);
        assert_eq!(cfg.run.seed, 99);
        assert_eq!(cfg.run.max_steps, 1000);
        assert_eq!(cfg.run.schedule, Schedule::WorkSteal { seed: 7 });
        // Defaults when omitted.
        let d = parse_config(None).unwrap();
        assert_eq!(d.block_bytes, PipelineConfig::default().block_bytes);
        assert_eq!(d.run.schedule, Schedule::RoundRobin);
        // Unknown names are errors, not silent defaults.
        let bad = crate::json::parse(r#"{"protocol": "moesi"}"#).unwrap();
        assert!(parse_config(Some(&bad)).is_err());
    }

    #[test]
    fn schedule_parsing_accepts_both_forms_and_rejects_junk() {
        let rr = crate::json::parse("\"round_robin\"").unwrap();
        assert_eq!(parse_schedule(&rr).unwrap(), Schedule::RoundRobin);
        let rr_obj = crate::json::parse(r#"{"kind": "round_robin"}"#).unwrap();
        assert_eq!(parse_schedule(&rr_obj).unwrap(), Schedule::RoundRobin);
        let ws = crate::json::parse(r#"{"kind": "work_steal", "seed": 42}"#).unwrap();
        assert_eq!(
            parse_schedule(&ws).unwrap(),
            Schedule::WorkSteal { seed: 42 }
        );
        for bad in [
            "\"work_steal\"",            // WS needs a seed, so string form is rejected
            r#"{"kind": "work_steal"}"#, // ... even as an object
            r#"{"kind": "lottery"}"#,    // unknown kind
            r#"{"seed": 3}"#,            // missing kind
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(parse_schedule(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn plan_spec_parses() {
        assert!(matches!(
            parse_plan(None).unwrap(),
            PlanSourceSpec::Unoptimized
        ));
        let c = crate::json::parse("\"compiler\"").unwrap();
        assert!(matches!(
            parse_plan(Some(&c)).unwrap(),
            PlanSourceSpec::Compiler
        ));
        let bad = crate::json::parse("\"programmer\"").unwrap();
        assert!(parse_plan(Some(&bad)).is_err());
    }
}
