//! `fsr-serve`: a long-lived analysis/simulation daemon.
//!
//! The one-shot pipeline recompiles, re-analyzes and re-interprets a
//! source on every invocation; this crate keeps a
//! [`fsr_core::World`] alive across requests so an editor or driver
//! script pays those costs once per source *content*. The protocol is
//! newline-delimited JSON-RPC (see [`proto`]); a scripted session looks
//! like
//!
//! ```text
//! {"id": 1, "method": "open", "params": {"name": "w", "workload": "water"}}
//! {"id": 2, "method": "lint", "params": {"name": "w"}}
//! {"id": 3, "method": "simulate", "params": {"name": "w", "plan": "compiler",
//!   "config": {"block": 128}, "params": {"NPROC": 8}}}
//! {"id": 4, "method": "shutdown"}
//! ```
//!
//! See DESIGN.md §11 for the architecture and README.md for a runnable
//! quickstart.

pub mod json;
pub mod proto;
pub mod server;

pub use server::{serve_lines, serve_tcp, serve_tcp_on, Flow, Output, Server};
