//! Memory layout engine: maps every PSL data object to concrete word
//! addresses under a transformation plan.
//!
//! The unoptimized layout packs shared objects end-to-end at word
//! granularity in declaration order — exactly the behaviour that makes
//! adjacent scalars, locks and array elements share cache blocks.
//! Transformation directives change *only* the address mapping:
//!
//! - **Transpose**: elements are regrouped by owning process; each
//!   process's region (optionally a *group* of several objects' slices)
//!   is padded to a block multiple.
//! - **PadElems / PadLock**: one element per block.
//! - **Indirect**: the element (or field) storage holds a pointer into a
//!   per-process arena; arena chunks are handed out on first touch.
//!
//! Because transformations live entirely in the address mapping, program
//! semantics are unchanged by construction — a property the integration
//! suite checks by comparing final logical memory contents across plans.

use fsr_lang::ast::{ElemTy, FieldId, ObjId, ObjectKind, Program, WORD_BYTES};
use fsr_transform::{LayoutPlan, ObjPlan};
use std::collections::BTreeMap;
use std::fmt;

/// First word address handed out; low addresses stay unmapped so that a
/// zero pointer word means "unallocated" for indirection.
const BASE_WORD: u32 = 64;

/// What an access resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// A plain word address.
    Direct(u32),
    /// Indirected storage: read the pointer at `ptr`; if null, allocate
    /// `slot_words` from arena `arena` (first touch, in the per-field
    /// `lane` so different fields never share arena chunks) and store the
    /// pointer; the datum lives at `*ptr + off`.
    Indirect {
        ptr: u32,
        off: u32,
        slot_words: u32,
        arena: u32,
        lane: u32,
    },
}

/// Per-object layout record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ObjLayout {
    /// Row-major contiguous at `base` with `stride_words` per element
    /// (equal to element size when unpadded, block words when padded).
    Contiguous { base: u32, stride_words: u32 },
    /// Per-process regrouping: explicit per-element base addresses.
    Transposed { elem_base: Vec<u32> },
    /// Pointer word per (element, indirected field); `base` is laid
    /// out like the original object; non-indirected fields stay in place.
    Indirect {
        base: u32,
        stride_words: u32,
        /// Field -> slot size in words; `None` key = whole element.
        slots: BTreeMap<Option<FieldId>, u32>,
        arena: u32,
    },
    /// Private per-process copies.
    Private { base: u32, per_proc_words: u32 },
}

/// Specification of one indirection arena (instantiated as mutable state
/// by the interpreter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaSpec {
    pub obj: ObjId,
    pub base_word: u32,
    pub total_words: u32,
    pub chunk_words: u32,
    pub nproc: u32,
    /// Number of allocation lanes (one per indirected field): chunks are
    /// never shared across lanes, so owner-private fields do not share
    /// blocks with fields other processes read.
    pub lanes: u32,
}

/// Address range attribution for miss accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    pub start_word: u32,
    pub end_word: u32,
    pub obj: ObjId,
    pub kind: &'static str,
}

/// The complete address map for one (program, plan, nproc) configuration.
#[derive(Debug, Clone)]
pub struct Layout {
    pub nproc: u32,
    pub block_bytes: u32,
    total_words: u32,
    objs: Vec<ObjLayout>,
    elem_words: Vec<u32>,
    elem_counts: Vec<u64>,
    /// (offset, len) in words for each field of each struct, indexed by
    /// object (empty for int objects).
    field_offsets: Vec<Vec<(u32, u32)>>,
    pub arenas: Vec<ArenaSpec>,
    regions: Vec<Region>,
}

fn block_words(block_bytes: u32) -> u32 {
    (block_bytes / WORD_BYTES).max(1)
}

fn align_up(x: u32, a: u32) -> u32 {
    x.div_ceil(a) * a
}

/// Largest address space (in words) the engine hands out: byte addresses
/// must fit `u32` downstream (simulator, interpreter).
pub const MAX_WORDS: u64 = (u32::MAX / WORD_BYTES) as u64;

/// Why a layout could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The plan's footprint (conservatively bounded) cannot be addressed
    /// in the 32-bit word space — padding/replication under this plan and
    /// process count would overflow address arithmetic.
    AddressSpaceOverflow { words_bound: u64, words_max: u64 },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::AddressSpaceOverflow {
                words_bound,
                words_max,
            } => write!(
                f,
                "layout footprint (≤ {words_bound} words) exceeds the \
                 addressable space ({words_max} words)"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

impl Layout {
    /// Fallible [`Layout::build`]: rejects (program, plan, nproc)
    /// combinations whose footprint cannot fit the 32-bit address space
    /// instead of overflowing address arithmetic. This is the entry
    /// point for user-supplied input (`fsr-core` uses it); `build` stays
    /// available for callers with known-small programs.
    pub fn try_build(prog: &Program, plan: &LayoutPlan, nproc: u32) -> Result<Layout, LayoutError> {
        let words_bound = Self::footprint_bound(prog, plan, nproc);
        if words_bound > MAX_WORDS {
            return Err(LayoutError::AddressSpaceOverflow {
                words_bound,
                words_max: MAX_WORDS,
            });
        }
        Ok(Self::build(prog, plan, nproc))
    }

    /// Conservative upper bound (in words) on the address space `build`
    /// would consume, computed in saturating `u64` so it cannot itself
    /// overflow. Over-approximates every pass: per-object alignment slop
    /// is charged per object, transposition charges `nproc` full copies,
    /// padding charges a block per element.
    fn footprint_bound(prog: &Program, plan: &LayoutPlan, nproc: u32) -> u64 {
        let bw = block_words(plan.block_bytes) as u64;
        let np = nproc.max(1) as u64;
        let mut need: u64 = BASE_WORD as u64;
        let mut private_total: u64 = 0;
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = ObjId(i as u32);
            let ew = match obj.kind {
                ObjectKind::Lock => 1,
                _ => prog.elem_words(obj.elem),
            } as u64;
            let count = obj.elem_count();
            let total = count.saturating_mul(ew);
            if obj.kind == ObjectKind::PrivateData {
                private_total = private_total.saturating_add(total);
                continue;
            }
            let obj_need = match plan.get(oid) {
                // nproc per-process slices, each at most the whole object
                // plus one block of padding (grouped or not).
                Some(ObjPlan::Transpose { .. }) => np.saturating_mul(total.saturating_add(bw)),
                // One block-aligned stride per element.
                Some(ObjPlan::PadElems) | Some(ObjPlan::PadLock) => {
                    count.saturating_mul(ew.max(bw).saturating_add(bw))
                }
                // Pointer table plus arena: slots (≤ the object itself)
                // plus per-process, per-lane chunk slack.
                Some(ObjPlan::Indirect { fields }) => {
                    let lanes = fields.len().max(1) as u64;
                    let chunk = bw.max(4);
                    total
                        .saturating_add(total)
                        .saturating_add(np.saturating_mul(lanes.saturating_mul(chunk)))
                }
                None => total,
            };
            need = need.saturating_add(obj_need).saturating_add(bw);
        }
        // Private span: nproc block-aligned copies; plus inter-pass
        // alignment slop.
        need = need
            .saturating_add(np.saturating_mul(private_total.saturating_add(bw)))
            .saturating_add(4 * bw);
        need
    }

    /// Build the address map. `nproc` is the number of processes the
    /// program will run with (must match the analysis when the plan came
    /// from one).
    ///
    /// Address arithmetic is unchecked `u32`: callers handing in
    /// unvalidated programs or plans should use [`Layout::try_build`],
    /// which bounds the footprint first.
    pub fn build(prog: &Program, plan: &LayoutPlan, nproc: u32) -> Layout {
        let bw = block_words(plan.block_bytes);
        let nobj = prog.objects.len();
        let mut objs: Vec<Option<ObjLayout>> = vec![None; nobj];
        let mut regions = Vec::new();
        let mut arenas = Vec::new();
        let mut cursor = BASE_WORD;

        let elem_words: Vec<u32> = prog
            .objects
            .iter()
            .map(|o| match o.kind {
                ObjectKind::Lock => 1,
                _ => prog.elem_words(o.elem),
            })
            .collect();
        let elem_counts: Vec<u64> = prog.objects.iter().map(|o| o.elem_count()).collect();
        let field_offsets: Vec<Vec<(u32, u32)>> = prog
            .objects
            .iter()
            .map(|o| match o.elem {
                ElemTy::Struct(sid) => prog
                    .struct_(sid)
                    .fields
                    .iter()
                    .map(|f| (f.offset_words, f.len))
                    .collect(),
                ElemTy::Int => Vec::new(),
            })
            .collect();

        // Pass 1: untransformed shared objects and indirection pointer
        // tables pack end-to-end in declaration order (word granularity).
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = ObjId(i as u32);
            if obj.kind == ObjectKind::PrivateData {
                continue;
            }
            let total = (elem_counts[i] * elem_words[i] as u64) as u32;
            match plan.get(oid) {
                None => {
                    objs[i] = Some(ObjLayout::Contiguous {
                        base: cursor,
                        stride_words: elem_words[i],
                    });
                    regions.push(Region {
                        start_word: cursor,
                        end_word: cursor + total,
                        obj: oid,
                        kind: "data",
                    });
                    cursor += total;
                }
                Some(ObjPlan::Indirect { fields }) => {
                    // Pointer table in place of the original object.
                    let slots: BTreeMap<Option<FieldId>, u32> = if fields.is_empty() {
                        std::iter::once((None, elem_words[i])).collect()
                    } else {
                        fields
                            .iter()
                            .map(|f| (Some(*f), field_offsets[i][f.index()].1))
                            .collect()
                    };
                    let slot_total: u64 =
                        slots.values().map(|&w| w as u64).sum::<u64>() * elem_counts[i];
                    let lanes = slots.len().max(1) as u32;
                    objs[i] = Some(ObjLayout::Indirect {
                        base: cursor,
                        stride_words: elem_words[i],
                        slots,
                        arena: arenas.len() as u32,
                    });
                    regions.push(Region {
                        start_word: cursor,
                        end_word: cursor + total,
                        obj: oid,
                        kind: "ptrs",
                    });
                    cursor += total;
                    // Arena sized for every slot plus per-process chunk
                    // slack; placed after all fixed regions (pass 3).
                    let chunk = bw.max(4);
                    let total_arena = align_up(slot_total as u32 + nproc * lanes * chunk, bw);
                    arenas.push(ArenaSpec {
                        obj: oid,
                        base_word: 0, // fixed up in pass 3
                        total_words: total_arena,
                        chunk_words: chunk,
                        nproc,
                        lanes,
                    });
                }
                Some(_) => {} // placed in pass 2
            }
        }

        // Pass 2: transformed objects in a block-aligned region.
        cursor = align_up(cursor, bw);
        // 2a. Grouped transposes: per process, concatenate every group
        // member's slice, then pad the group slice to a block multiple.
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, _) in prog.objects.iter().enumerate() {
            if let Some(ObjPlan::Transpose { group: Some(g), .. }) = plan.get(ObjId(i as u32)) {
                groups.entry(*g).or_default().push(i);
            }
        }
        for members in groups.values() {
            let mut member_elem_addrs: Vec<Vec<u32>> = members
                .iter()
                .map(|&i| vec![0u32; elem_counts[i] as usize])
                .collect();
            // Per-process slice width = sum over members of their max
            // per-proc element count * elem size.
            let mut per_proc_counts: Vec<Vec<u32>> = Vec::new();
            for &i in members {
                let oid = ObjId(i as u32);
                let Some(ObjPlan::Transpose { owner, .. }) = plan.get(oid) else {
                    unreachable!()
                };
                let dims = &prog.object(oid).dims;
                let mut counts = vec![0u32; nproc as usize];
                for e in 0..elem_counts[i] {
                    let p = owner
                        .owner(e, dims, nproc as i64)
                        .clamp(0, nproc as i64 - 1);
                    counts[p as usize] += 1;
                }
                per_proc_counts.push(counts);
            }
            let slice_words: u32 = members
                .iter()
                .zip(&per_proc_counts)
                .map(|(&i, counts)| counts.iter().copied().max().unwrap_or(0) * elem_words[i])
                .sum();
            let slice_words = align_up(slice_words.max(1), bw);
            let group_base = cursor;
            for p in 0..nproc {
                let mut off = group_base + p * slice_words;
                for (mi, &i) in members.iter().enumerate() {
                    let oid = ObjId(i as u32);
                    let Some(ObjPlan::Transpose { owner, .. }) = plan.get(oid) else {
                        unreachable!()
                    };
                    let dims = &prog.object(oid).dims;
                    for e in 0..elem_counts[i] {
                        let po = owner
                            .owner(e, dims, nproc as i64)
                            .clamp(0, nproc as i64 - 1);
                        if po as u32 == p {
                            member_elem_addrs[mi][e as usize] = off;
                            off += elem_words[i];
                        }
                    }
                }
            }
            cursor = group_base + nproc * slice_words;
            for (mi, &i) in members.iter().enumerate() {
                let oid = ObjId(i as u32);
                objs[i] = Some(ObjLayout::Transposed {
                    elem_base: std::mem::take(&mut member_elem_addrs[mi]),
                });
                regions.push(Region {
                    start_word: group_base,
                    end_word: cursor,
                    obj: oid,
                    kind: "transposed-group",
                });
            }
        }

        // 2b. Ungrouped transposes and padded objects.
        for (i, obj) in prog.objects.iter().enumerate() {
            let oid = ObjId(i as u32);
            if obj.kind == ObjectKind::PrivateData {
                continue;
            }
            match plan.get(oid) {
                Some(ObjPlan::Transpose { owner, group: None }) => {
                    let dims = &obj.dims;
                    let mut counts = vec![0u32; nproc as usize];
                    for e in 0..elem_counts[i] {
                        let p = owner
                            .owner(e, dims, nproc as i64)
                            .clamp(0, nproc as i64 - 1);
                        counts[p as usize] += 1;
                    }
                    let per_proc_words = align_up(
                        counts.iter().copied().max().unwrap_or(0) * elem_words[i],
                        bw,
                    )
                    .max(bw);
                    let base = cursor;
                    let mut next: Vec<u32> =
                        (0..nproc).map(|p| base + p * per_proc_words).collect();
                    let mut elem_base = vec![0u32; elem_counts[i] as usize];
                    for e in 0..elem_counts[i] {
                        let p = owner
                            .owner(e, dims, nproc as i64)
                            .clamp(0, nproc as i64 - 1) as usize;
                        elem_base[e as usize] = next[p];
                        next[p] += elem_words[i];
                    }
                    cursor = base + nproc * per_proc_words;
                    objs[i] = Some(ObjLayout::Transposed { elem_base });
                    regions.push(Region {
                        start_word: base,
                        end_word: cursor,
                        obj: oid,
                        kind: "transposed",
                    });
                }
                Some(ObjPlan::PadElems) | Some(ObjPlan::PadLock) => {
                    let stride = align_up(elem_words[i], bw);
                    let base = align_up(cursor, bw);
                    let total = (elem_counts[i] as u32) * stride;
                    objs[i] = Some(ObjLayout::Contiguous {
                        base,
                        stride_words: stride,
                    });
                    regions.push(Region {
                        start_word: base,
                        end_word: base + total,
                        obj: oid,
                        kind: "padded",
                    });
                    cursor = base + total;
                }
                _ => {}
            }
        }

        // Pass 3: arenas.
        cursor = align_up(cursor, bw);
        for a in &mut arenas {
            a.base_word = cursor;
            regions.push(Region {
                start_word: cursor,
                end_word: cursor + a.total_words,
                obj: a.obj,
                kind: "arena",
            });
            cursor += a.total_words;
        }

        // Pass 4: private objects — per-process block-aligned spans.
        cursor = align_up(cursor, bw);
        let mut private_off = 0u32;
        let mut private_members: Vec<(usize, u32)> = Vec::new();
        for (i, obj) in prog.objects.iter().enumerate() {
            if obj.kind != ObjectKind::PrivateData {
                continue;
            }
            private_members.push((i, private_off));
            private_off += (elem_counts[i] * elem_words[i] as u64) as u32;
        }
        let per_proc_words = align_up(private_off.max(1), bw);
        let private_base = cursor;
        for (i, off) in private_members {
            objs[i] = Some(ObjLayout::Private {
                base: private_base + off,
                per_proc_words,
            });
            let oid = ObjId(i as u32);
            regions.push(Region {
                start_word: private_base,
                end_word: private_base + per_proc_words * nproc,
                obj: oid,
                kind: "private",
            });
        }
        cursor = private_base + per_proc_words * nproc;

        let objs: Vec<ObjLayout> = objs
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.unwrap_or(ObjLayout::Contiguous {
                    base: 0,
                    stride_words: elem_words[i],
                })
            })
            .collect();
        regions.sort_by_key(|r| r.start_word);

        Layout {
            nproc,
            block_bytes: plan.block_bytes,
            total_words: cursor,
            objs,
            elem_words,
            elem_counts,
            field_offsets,
            arenas,
            regions,
        }
    }

    /// Total words of the address space (memory image size).
    pub fn total_words(&self) -> u32 {
        self.total_words
    }

    /// Number of elements of an object (for bounds checks).
    pub fn elem_count(&self, obj: ObjId) -> u64 {
        self.elem_counts[obj.index()]
    }

    /// (offset, len) in words of a field within its element.
    pub fn field_layout(&self, obj: ObjId, field: FieldId) -> (u32, u32) {
        self.field_offsets[obj.index()][field.index()]
    }

    /// Resolve an access to an object element.
    ///
    /// `field_sel` selects a field and index within it (structs); `pid`
    /// matters only for private objects.
    pub fn resolve(
        &self,
        obj: ObjId,
        flat: u64,
        field_sel: Option<(FieldId, u32)>,
        pid: u32,
    ) -> Resolved {
        let i = obj.index();
        let in_elem_off: u32 = match field_sel {
            None => 0,
            Some((f, fi)) => {
                let (off, _len) = self.field_offsets[i][f.index()];
                off + fi
            }
        };
        match &self.objs[i] {
            ObjLayout::Contiguous { base, stride_words } => {
                Resolved::Direct(base + (flat as u32) * stride_words + in_elem_off)
            }
            ObjLayout::Transposed { elem_base } => {
                Resolved::Direct(elem_base[flat as usize] + in_elem_off)
            }
            ObjLayout::Private {
                base,
                per_proc_words,
            } => Resolved::Direct(
                base + pid * per_proc_words + (flat as u32) * self.elem_words[i] + in_elem_off,
            ),
            ObjLayout::Indirect {
                base,
                stride_words,
                slots,
                arena,
            } => {
                let elem_addr = base + (flat as u32) * stride_words;
                match field_sel {
                    None => match slots.get(&None) {
                        Some(&slot_words) => Resolved::Indirect {
                            ptr: elem_addr,
                            off: 0,
                            slot_words,
                            arena: *arena,
                            lane: 0,
                        },
                        None => Resolved::Direct(elem_addr),
                    },
                    Some((f, fi)) => {
                        let (off, _len) = self.field_offsets[i][f.index()];
                        match slots.get(&Some(f)) {
                            Some(&slot_words) => Resolved::Indirect {
                                // Pointer lives in the field's first word.
                                ptr: elem_addr + off,
                                off: fi,
                                slot_words,
                                arena: *arena,
                                lane: slots.keys().position(|k| *k == Some(f)).unwrap_or(0) as u32,
                            },
                            None => Resolved::Direct(elem_addr + off + fi),
                        }
                    }
                }
            }
        }
    }

    /// Attribute a byte address to its object (for miss accounting).
    pub fn attribute(&self, byte_addr: u32) -> Option<ObjId> {
        let w = byte_addr / WORD_BYTES;
        let idx = self.regions.partition_point(|r| r.start_word <= w);
        self.regions[..idx]
            .iter()
            .rev()
            .find(|r| w < r.end_word)
            .map(|r| r.obj)
    }

    /// All regions, for reports.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Fingerprint of everything that determines the reference trace a
    /// program produces under this layout: the per-object address maps,
    /// element geometry, arena allocation behaviour, attribution regions
    /// and the process count.
    ///
    /// Deliberately **excluded**: `block_bytes` (pure metadata — address
    /// resolution never consults it) and `total_words` (trailing
    /// alignment slack that only sizes memory images; no resolvable
    /// address lands there). Two layouts with equal fingerprints — e.g.
    /// the unoptimized layout built at different block sizes — drive the
    /// interpreter through identical address streams, so a batched
    /// driver can interpret once and fan the trace out to every
    /// simulator configuration. Confirm candidate groups with
    /// [`Layout::trace_eq`]; the hash alone admits collisions.
    pub fn trace_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.nproc.hash(&mut h);
        self.elem_words.hash(&mut h);
        self.elem_counts.hash(&mut h);
        self.field_offsets.hash(&mut h);
        for o in &self.objs {
            match o {
                ObjLayout::Contiguous { base, stride_words } => {
                    (0u8, base, stride_words).hash(&mut h);
                }
                ObjLayout::Transposed { elem_base } => {
                    1u8.hash(&mut h);
                    elem_base.hash(&mut h);
                }
                ObjLayout::Indirect {
                    base,
                    stride_words,
                    slots,
                    arena,
                } => {
                    (2u8, base, stride_words, arena).hash(&mut h);
                    for (f, w) in slots {
                        (f.map(|f| f.index()), w).hash(&mut h);
                    }
                }
                ObjLayout::Private {
                    base,
                    per_proc_words,
                } => {
                    (3u8, base, per_proc_words).hash(&mut h);
                }
            }
        }
        for a in &self.arenas {
            (
                a.obj.index(),
                a.base_word,
                a.total_words,
                a.chunk_words,
                a.nproc,
                a.lanes,
            )
                .hash(&mut h);
        }
        for r in &self.regions {
            (r.start_word, r.end_word, r.obj.index(), r.kind).hash(&mut h);
        }
        h.finish()
    }

    /// Exact equality on the trace-determining fields hashed by
    /// [`Layout::trace_fingerprint`] — the collision-proof check used
    /// before two jobs are allowed to share one interpretation.
    pub fn trace_eq(&self, other: &Layout) -> bool {
        self.nproc == other.nproc
            && self.objs == other.objs
            && self.elem_words == other.elem_words
            && self.elem_counts == other.elem_counts
            && self.field_offsets == other.field_offsets
            && self.arenas == other.arenas
            && self.regions == other.regions
    }

    /// True when no object uses indirection. For such layouts `resolve`
    /// is a pure function of (object, element, field, pid): there is no
    /// first-touch arena allocation and no pointer words, so the whole
    /// layout is a static bijection from logical coordinates to word
    /// addresses.
    pub fn direct_only(&self) -> bool {
        self.arenas.is_empty()
            && self
                .objs
                .iter()
                .all(|o| !matches!(o, ObjLayout::Indirect { .. }))
    }

    /// Word-address translation `self -> other` for two direct-only
    /// layouts of the same program geometry: `map[w]` is the word in
    /// `other` that holds the same logical datum as word `w` of `self`
    /// (`u32::MAX` for padding/slack words no resolvable access can
    /// touch).
    ///
    /// Because interpreter control flow consults the layout only through
    /// `resolve` — and indirection, the one case with interpreter-side
    /// state, is excluded — a reference trace produced under `self`
    /// becomes the trace `other` would produce by rewriting each address
    /// through this map. The batched driver exploits that to interpret a
    /// program once per (source, run config) and replay the stream into
    /// every direct-only layout variant's simulator bank.
    ///
    /// Returns `None` when the two layouts are not translation
    /// compatible: different element geometry (they were built from
    /// different programs), different process counts, or indirection on
    /// either side.
    pub fn word_map_to(&self, other: &Layout) -> Option<Vec<u32>> {
        if !(self.direct_only()
            && other.direct_only()
            && self.nproc == other.nproc
            && self.objs.len() == other.objs.len()
            && self.elem_words == other.elem_words
            && self.elem_counts == other.elem_counts
            && self.field_offsets == other.field_offsets)
        {
            return None;
        }
        // Base word of element `flat` (copy `pid` for private objects).
        fn elem_base_word(o: &ObjLayout, ew: u32, flat: u64, pid: u32) -> Option<u32> {
            Some(match o {
                ObjLayout::Contiguous { base, stride_words } => base + (flat as u32) * stride_words,
                ObjLayout::Transposed { elem_base } => elem_base[flat as usize],
                ObjLayout::Private {
                    base,
                    per_proc_words,
                } => base + pid * per_proc_words + (flat as u32) * ew,
                ObjLayout::Indirect { .. } => return None,
            })
        }
        let mut map = vec![u32::MAX; self.total_words as usize];
        for i in 0..self.objs.len() {
            let ew = self.elem_words[i];
            // Private objects exist once per process; everything else
            // once. Object kinds come from the program, so both layouts
            // agree on which objects are private.
            let copies = match (&self.objs[i], &other.objs[i]) {
                (ObjLayout::Private { .. }, ObjLayout::Private { .. }) => self.nproc,
                (ObjLayout::Private { .. }, _) | (_, ObjLayout::Private { .. }) => return None,
                _ => 1,
            };
            for pid in 0..copies {
                for flat in 0..self.elem_counts[i] {
                    let a = elem_base_word(&self.objs[i], ew, flat, pid)?;
                    let b = elem_base_word(&other.objs[i], ew, flat, pid)?;
                    for off in 0..ew {
                        map[(a + off) as usize] = b + off;
                    }
                }
            }
        }
        Some(map)
    }
}

/// Mutable first-touch arena state (owned by the interpreter).
#[derive(Debug, Clone)]
pub struct Arena {
    spec: ArenaSpec,
    /// Per-(process, lane) bump pointer and chunk limit.
    next: Vec<u32>,
    limit: Vec<u32>,
    pool_next: u32,
    pool_end: u32,
}

impl Arena {
    pub fn new(spec: &ArenaSpec) -> Arena {
        let n = (spec.nproc * spec.lanes.max(1)) as usize;
        Arena {
            next: vec![0; n],
            limit: vec![0; n],
            pool_next: spec.base_word,
            pool_end: spec.base_word + spec.total_words,
            spec: spec.clone(),
        }
    }

    /// Allocate `slot_words` from `pid`'s chunk in `lane`, grabbing a
    /// fresh chunk from the pool when needed. Returns the word address,
    /// or `None` when the pool is exhausted (arenas are sized for every
    /// slot plus slack, so exhaustion indicates duplicate allocation).
    pub fn alloc(&mut self, pid: u32, lane: u32, slot_words: u32) -> Option<u32> {
        let p =
            (pid * self.spec.lanes.max(1) + lane.min(self.spec.lanes.saturating_sub(1))) as usize;
        if self.next[p] + slot_words > self.limit[p] {
            let chunk = self.spec.chunk_words.max(slot_words);
            if self.pool_next + chunk > self.pool_end {
                return None;
            }
            self.next[p] = self.pool_next;
            self.limit[p] = self.pool_next + chunk;
            self.pool_next += chunk;
        }
        let addr = self.next[p];
        self.next[p] += slot_words;
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsr_transform::PlanConfig;

    fn setup(src: &str, nproc: u32) -> (fsr_lang::Program, LayoutPlan, Layout) {
        let prog = fsr_lang::compile(src).unwrap();
        let a = fsr_analysis::analyze(&prog).unwrap();
        let plan = fsr_transform::plan_for(&prog, &a, &PlanConfig::default());
        let layout = Layout::build(&prog, &plan, nproc);
        (prog, plan, layout)
    }

    fn direct(r: Resolved) -> u32 {
        match r {
            Resolved::Direct(a) => a,
            other => panic!("expected direct, got {other:?}"),
        }
    }

    #[test]
    fn unoptimized_layout_packs_objects() {
        let prog = fsr_lang::compile(
            "param NPROC = 2; shared int a; shared int b; shared int c[4];
             fn main() { forall p in 0 .. NPROC { a = 1; } }",
        )
        .unwrap();
        let plan = LayoutPlan::unoptimized(128);
        let l = Layout::build(&prog, &plan, 2);
        let (a, _) = prog.object_by_name("a").unwrap();
        let (b, _) = prog.object_by_name("b").unwrap();
        let (c, _) = prog.object_by_name("c").unwrap();
        let aa = direct(l.resolve(a, 0, None, 0));
        let ba = direct(l.resolve(b, 0, None, 0));
        let ca = direct(l.resolve(c, 0, None, 0));
        // Packed end-to-end: adjacent words (the false-sharing layout).
        assert_eq!(ba, aa + 1);
        assert_eq!(ca, ba + 1);
        assert_eq!(direct(l.resolve(c, 3, None, 0)), ca + 3);
    }

    #[test]
    fn transposed_counters_land_in_distinct_blocks() {
        let (prog, plan, l) = setup(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 100 {
                 c[p] = c[p] + 1; } } }",
            4,
        );
        let (c, _) = prog.object_by_name("c").unwrap();
        assert!(plan.get(c).is_some());
        let bw = l.block_bytes / WORD_BYTES;
        let addrs: Vec<u32> = (0..4).map(|e| direct(l.resolve(c, e, None, 0))).collect();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_ne!(
                        addrs[i] / bw,
                        addrs[j] / bw,
                        "elements {i},{j} share a block"
                    );
                }
            }
        }
    }

    #[test]
    fn two_d_transpose_groups_by_owner() {
        let (prog, _plan, l) = setup(
            "param NPROC = 4; shared int m[8][NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 8 {
                 m[i][p] = m[i][p] + 1; } } }",
            4,
        );
        let (m, _) = prog.object_by_name("m").unwrap();
        // Proc 1's elements (flat = i*4+1) must be contiguous.
        let mut addrs: Vec<u32> = (0..8)
            .map(|i| direct(l.resolve(m, i * 4 + 1, None, 0)))
            .collect();
        addrs.sort();
        for w in addrs.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        // And in a different block from proc 2's elements.
        let bw = l.block_bytes / WORD_BYTES;
        let a2 = direct(l.resolve(m, 2, None, 0));
        assert_ne!(addrs[0] / bw, a2 / bw);
    }

    #[test]
    fn padded_lock_blocks_are_distinct() {
        let (prog, _plan, l) = setup(
            "param NPROC = 2; shared lock lk[4]; shared int x;
             fn main() { forall p in 0 .. NPROC { lock(lk[p]); x = x + 1; unlock(lk[p]); } }",
            2,
        );
        let (lk, _) = prog.object_by_name("lk").unwrap();
        let bw = l.block_bytes / WORD_BYTES;
        let a0 = direct(l.resolve(lk, 0, None, 0));
        let a1 = direct(l.resolve(lk, 1, None, 0));
        assert_eq!(a0 % bw, 0, "locks block-aligned");
        assert_ne!(a0 / bw, a1 / bw);
    }

    #[test]
    fn private_objects_have_per_proc_copies() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; private int t[8];
             fn main() { forall p in 0 .. NPROC { t[0] = p; } }",
        )
        .unwrap();
        let plan = LayoutPlan::unoptimized(64);
        let l = Layout::build(&prog, &plan, 4);
        let (t, _) = prog.object_by_name("t").unwrap();
        let a0 = direct(l.resolve(t, 0, None, 0));
        let a1 = direct(l.resolve(t, 0, None, 1));
        assert_ne!(a0, a1);
        let bw = 64 / WORD_BYTES;
        assert_ne!(a0 / bw, a1 / bw, "per-proc spans are block-aligned");
    }

    #[test]
    fn indirection_resolves_through_pointer() {
        let (prog, plan, l) = setup(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 var q;
                 for q in 0 .. NPROC + 1 { first[q] = q * 64; }
                 forall p in 0 .. NPROC { var i; var t;
                     for t in 0 .. 50 {
                     for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; } }
                 }
             }",
            4,
        );
        let (d, _) = prog.object_by_name("d").unwrap();
        assert!(matches!(plan.get(d), Some(ObjPlan::Indirect { .. })));
        let r = l.resolve(d, 7, None, 0);
        let Resolved::Indirect {
            ptr,
            off,
            slot_words,
            arena,
            lane: _,
        } = r
        else {
            panic!("expected indirect, got {r:?}")
        };
        assert_eq!(off, 0);
        assert_eq!(slot_words, 1);
        // Arena allocation: first touch by different procs gives
        // block-separated chunks.
        let mut ar = Arena::new(&l.arenas[arena as usize]);
        let s0 = ar.alloc(0, 0, slot_words).unwrap();
        let s1 = ar.alloc(1, 0, slot_words).unwrap();
        let s0b = ar.alloc(0, 0, slot_words).unwrap();
        let bw = l.block_bytes / WORD_BYTES;
        assert_ne!(s0 / bw, s1 / bw);
        assert_eq!(s0b, s0 + 1);
        // Pointer table lives inside the d region.
        assert_eq!(l.attribute(ptr * WORD_BYTES), Some(d));
    }

    #[test]
    fn attribution_covers_all_objects() {
        let (prog, _plan, l) = setup(
            "param NPROC = 2; shared int a[16]; shared lock lk; shared int b;
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); b = b + a[p]; unlock(lk); } }",
            2,
        );
        for name in ["a", "lk", "b"] {
            let (oid, _) = prog.object_by_name(name).unwrap();
            let addr = match l.resolve(oid, 0, None, 0) {
                Resolved::Direct(a) => a,
                Resolved::Indirect { ptr, .. } => ptr,
            };
            assert_eq!(l.attribute(addr * WORD_BYTES), Some(oid), "object {name}");
        }
    }

    #[test]
    fn struct_fields_resolve_with_offsets() {
        let prog = fsr_lang::compile(
            "param NPROC = 2; struct N { int a; int b[3]; } shared N nodes[4];
             fn main() { forall p in 0 .. NPROC { nodes[p].a = 1; } }",
        )
        .unwrap();
        let plan = LayoutPlan::unoptimized(64);
        let l = Layout::build(&prog, &plan, 2);
        let (n, _) = prog.object_by_name("nodes").unwrap();
        let base = direct(l.resolve(n, 0, Some((FieldId(0), 0)), 0));
        assert_eq!(direct(l.resolve(n, 0, Some((FieldId(1), 0)), 0)), base + 1);
        assert_eq!(direct(l.resolve(n, 0, Some((FieldId(1), 2)), 0)), base + 3);
        // Next element starts after 4 words.
        assert_eq!(direct(l.resolve(n, 1, Some((FieldId(0), 0)), 0)), base + 4);
    }

    #[test]
    fn field_indirection_leaves_other_fields_in_place() {
        let (prog, plan, l) = setup(
            "param NPROC = 4; struct Node { int key; int acc; }
             shared Node nodes[64];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 16 {
                     nodes[i * NPROC + p].acc = nodes[i * NPROC + p].acc + 1;
                 }
             } }",
            4,
        );
        let (n, _) = prog.object_by_name("nodes").unwrap();
        let Some(ObjPlan::Indirect { fields }) = plan.get(n) else {
            panic!("expected indirection")
        };
        let acc_field = fields[0];
        // `key` stays direct; `acc` goes through the pointer.
        let key_field = if acc_field == FieldId(0) {
            FieldId(1)
        } else {
            FieldId(0)
        };
        assert!(matches!(
            l.resolve(n, 5, Some((key_field, 0)), 0),
            Resolved::Direct(_)
        ));
        assert!(matches!(
            l.resolve(n, 5, Some((acc_field, 0)), 0),
            Resolved::Indirect { .. }
        ));
    }

    #[test]
    fn arena_exhaustion_returns_none() {
        let spec = ArenaSpec {
            obj: ObjId(0),
            base_word: 100,
            total_words: 8,
            chunk_words: 4,
            nproc: 2,
            lanes: 1,
        };
        let mut a = Arena::new(&spec);
        assert!(a.alloc(0, 0, 4).is_some());
        assert!(a.alloc(1, 0, 4).is_some());
        assert!(a.alloc(0, 0, 4).is_none());
    }

    #[test]
    fn unoptimized_fingerprints_are_block_size_independent() {
        // The unoptimized packed layout never consults the block size, so
        // the same program traced at different simulated block sizes
        // yields one shared address stream — the table2 baseline is
        // interpreted once for all six block sizes.
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC]; shared int x;
             fn main() { forall p in 0 .. NPROC { c[p] = c[p] + 1; } }",
        )
        .unwrap();
        let a = Layout::build(&prog, &LayoutPlan::unoptimized(8), 4);
        let b = Layout::build(&prog, &LayoutPlan::unoptimized(256), 4);
        assert_eq!(a.trace_fingerprint(), b.trace_fingerprint());
        assert!(a.trace_eq(&b));
        // Different process counts genuinely change the trace.
        let c = Layout::build(&prog, &LayoutPlan::unoptimized(8), 2);
        assert!(!a.trace_eq(&c));
    }

    #[test]
    fn padded_fingerprints_differ_per_block_size() {
        let prog = fsr_lang::compile(
            "param NPROC = 2; shared int c[8];
             fn main() { forall p in 0 .. NPROC { c[p] = 1; } }",
        )
        .unwrap();
        let (c, _) = prog.object_by_name("c").unwrap();
        let mk = |block: u32| {
            let mut plan = LayoutPlan::unoptimized(block);
            plan.insert(c, ObjPlan::PadElems, "test");
            Layout::build(&prog, &plan, 2)
        };
        let a = mk(16);
        let b = mk(128);
        // Element padding spreads addresses by block size: distinct traces.
        assert!(!a.trace_eq(&b));
        assert_ne!(a.trace_fingerprint(), b.trace_fingerprint());
    }

    #[test]
    fn total_words_covers_all_regions() {
        let (_, _, l) = setup(
            "param NPROC = 4; shared int c[NPROC]; private int t[4];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 10 {
                 c[p] = c[p] + t[0]; } } }",
            4,
        );
        for r in l.regions() {
            assert!(r.end_word <= l.total_words());
        }
    }

    #[test]
    fn word_map_translates_every_resolvable_address() {
        // Struct array + lock + private scratch: exercises field offsets,
        // per-proc copies and element padding in one program.
        let prog = fsr_lang::compile(
            "param NPROC = 4; struct N { int a; int b[3]; }
             shared N nodes[8]; shared lock lk; private int t[2];
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); nodes[p].a = t[0]; unlock(lk); } }",
        )
        .unwrap();
        let (nodes, _) = prog.object_by_name("nodes").unwrap();
        let (lk, _) = prog.object_by_name("lk").unwrap();
        let unopt = Layout::build(&prog, &LayoutPlan::unoptimized(64), 4);
        let mut plan = LayoutPlan::unoptimized(64);
        plan.insert(nodes, ObjPlan::PadElems, "test");
        plan.insert(lk, ObjPlan::PadLock, "test");
        let padded = Layout::build(&prog, &plan, 4);
        assert!(unopt.direct_only() && padded.direct_only());
        let map = unopt.word_map_to(&padded).expect("translation compatible");
        assert_eq!(map.len(), unopt.total_words() as usize);
        // Every resolvable coordinate maps to the padded layout's own
        // resolution of the same coordinate.
        let mut checked = 0u32;
        for (oid, flat, sel, pid) in [
            (nodes, 0u64, None, 0u32),
            (nodes, 3, Some((FieldId(0), 0)), 0),
            (nodes, 3, Some((FieldId(1), 2)), 0),
            (nodes, 7, Some((FieldId(1), 0)), 0),
            (lk, 0, None, 0),
        ]
        .into_iter()
        .chain((0..4).map(|pid| (prog.object_by_name("t").unwrap().0, 1u64, None, pid)))
        {
            let a = direct(unopt.resolve(oid, flat, sel, pid));
            let b = direct(padded.resolve(oid, flat, sel, pid));
            assert_eq!(map[a as usize], b, "obj {oid:?} flat {flat} pid {pid}");
            checked += 1;
        }
        assert_eq!(checked, 9);
        // The reverse map round-trips.
        let back = padded.word_map_to(&unopt).expect("reverse map");
        for (w, &m) in map.iter().enumerate() {
            if m != u32::MAX {
                assert_eq!(back[m as usize], w as u32);
            }
        }
    }

    #[test]
    fn word_map_refuses_indirection_and_mismatched_geometry() {
        let (prog, plan, ind) = setup(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 var q;
                 for q in 0 .. NPROC + 1 { first[q] = q * 64; }
                 forall p in 0 .. NPROC { var i; var t;
                     for t in 0 .. 50 {
                     for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; } }
                 }
             }",
            4,
        );
        let (d, _) = prog.object_by_name("d").unwrap();
        assert!(matches!(plan.get(d), Some(ObjPlan::Indirect { .. })));
        assert!(!ind.direct_only());
        let unopt = Layout::build(&prog, &LayoutPlan::unoptimized(64), 4);
        assert!(
            unopt.word_map_to(&ind).is_none(),
            "indirection is interpreter state"
        );
        assert!(ind.word_map_to(&unopt).is_none());
        // Different program geometry: refused.
        let other = fsr_lang::compile(
            "param NPROC = 4; shared int c[8];
             fn main() { forall p in 0 .. NPROC { c[p] = 1; } }",
        )
        .unwrap();
        let ol = Layout::build(&other, &LayoutPlan::unoptimized(64), 4);
        assert!(unopt.word_map_to(&ol).is_none());
        // Different process counts: refused.
        let n2 = Layout::build(&prog, &LayoutPlan::unoptimized(64), 2);
        assert!(unopt.word_map_to(&n2).is_none());
    }

    #[test]
    fn try_build_accepts_ordinary_programs() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { c[p] = 1; } }",
        )
        .unwrap();
        for plan in [LayoutPlan::unoptimized(128), LayoutPlan::unoptimized(4)] {
            let l = Layout::try_build(&prog, &plan, 4).unwrap();
            assert_eq!(
                l.total_words(),
                Layout::build(&prog, &plan, 4).total_words()
            );
        }
    }

    #[test]
    fn try_build_rejects_address_space_overflow() {
        // 2^31 elements cannot be addressed in the 32-bit word space
        // even unpadded; `build` would silently truncate the footprint.
        let prog = fsr_lang::compile(
            "param NPROC = 2; shared int huge[2147483648];
             fn main() { forall p in 0 .. NPROC { huge[p] = 1; } }",
        )
        .unwrap();
        let e = Layout::try_build(&prog, &LayoutPlan::unoptimized(128), 2).unwrap_err();
        let LayoutError::AddressSpaceOverflow {
            words_bound,
            words_max,
        } = e;
        assert!(words_bound > words_max);
        assert_eq!(words_max, MAX_WORDS);
    }

    #[test]
    fn try_build_rejects_padding_blowup() {
        // 80M elements fit unpadded (~80M words) but one-block-per-element
        // padding at 128 B inflates them past the 2^30-word space.
        let src = "param NPROC = 2; shared int big[80000000];
             fn main() { forall p in 0 .. NPROC { big[p] = 1; } }";
        let prog = fsr_lang::compile(src).unwrap();
        assert!(Layout::try_build(&prog, &LayoutPlan::unoptimized(128), 2).is_ok());
        let (big, _) = prog.object_by_name("big").unwrap();
        let mut plan = LayoutPlan::unoptimized(128);
        plan.insert(big, ObjPlan::PadElems, "test");
        assert!(matches!(
            Layout::try_build(&prog, &plan, 2),
            Err(LayoutError::AddressSpaceOverflow { .. })
        ));
    }
}
