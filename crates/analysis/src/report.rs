//! Human-readable analysis reports.

use crate::classify::{Analysis, Pattern};
use fsr_lang::ast::Program;
use std::fmt::Write;

fn pattern_str(p: Pattern) -> &'static str {
    match p {
        Pattern::None => "-",
        Pattern::OneProc => "one-proc",
        Pattern::PerProcess => "per-process",
        Pattern::Shared => "shared",
    }
}

/// Render the per-data-structure classification table.
pub fn render(prog: &Program, a: &Analysis) -> String {
    let mut out = String::new();
    writeln!(out, "analysis for {} processes", a.nproc).unwrap();
    writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>10} {:>10} {:>8} {:>10}",
        "data structure", "writes", "reads", "w-weight", "r-weight", "owner", "partition"
    )
    .unwrap();
    let mut classes: Vec<_> = a.classes.iter().collect();
    classes.sort_by(|x, y| y.total_weight().total_cmp(&x.total_weight()));
    for c in classes {
        let obj = prog.object(c.obj);
        let name = match c.field {
            Some(f) => {
                let fname = match obj.elem {
                    fsr_lang::ast::ElemTy::Struct(sid) => {
                        prog.struct_(sid).fields[f.index()].name.clone()
                    }
                    _ => format!("f{}", f.0),
                };
                format!("{}.{}", obj.name, fname)
            }
            None => obj.name.clone(),
        };
        let owner = match c.owner_map {
            Some(crate::classify::OwnerMap::Dim { dim }) => format!("dim{dim}"),
            Some(crate::classify::OwnerMap::Chunk { chunk }) => format!("chunk{chunk}"),
            Some(crate::classify::OwnerMap::Interleave { stride, .. }) => {
                format!("cyc{stride}")
            }
            None => "-".to_string(),
        };
        writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>10.1} {:>10.1} {:>8} {:>10}",
            name,
            pattern_str(c.write.pattern),
            pattern_str(c.read.pattern),
            c.write.weight,
            c.read.weight,
            owner,
            if c.partition_assumed { "assumed" } else { "-" },
        )
        .unwrap();
    }
    out
}

/// Render the raw descriptors for one object (debugging aid).
pub fn render_rsds(prog: &Program, a: &Analysis, name: &str) -> Option<String> {
    let (oid, _) = prog.object_by_name(name)?;
    let mut out = String::new();
    for c in a.classes.iter().filter(|c| c.obj == oid) {
        writeln!(out, "{} field={:?}", name, c.field).unwrap();
        for r in &c.write.rsds {
            writeln!(out, "  W {}", r.render()).unwrap();
        }
        for r in &c.read.rsds {
            writeln!(out, "  R {}", r.render()).unwrap();
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_patterns() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { c[p] = 1; } }",
        )
        .unwrap();
        let a = crate::analyze(&prog).unwrap();
        let r = render(&prog, &a);
        assert!(r.contains("per-process"));
        assert!(r.contains('c'));
        let rsds = render_rsds(&prog, &a, "c").unwrap();
        assert!(rsds.contains("W ["));
    }
}
