//! Relational index domain: linear congruences + difference constraints
//! over loop induction variables, the process id, and symbolic partition
//! bounds.
//!
//! The bounded-regular-section layer ([`crate::section`]) degrades every
//! index it cannot express as a pdv-affine progression to
//! [`crate::section::Section::Unknown`], and the race pass then
//! suppresses the pair (precision over recall). This module runs a
//! second, relational abstract interpretation over the checked AST and
//! records, for every shared-array access site, a per-dimension
//! [`RelVal`]: pdv-affine range bounds (`lo`/`hi`), a linear congruence
//! (`value ≡ residue(pid) mod modulus`), a guaranteed dense-run width
//! (`span`), and a process-uniformity bit. The race pass uses these
//! facts to *re-judge* suppressed pairs (see [`judge_pair`]): a proven
//! per-(p,q) separation upgrades the pair to disjoint, while a
//! process-uniform index that provably covers the whole dimension
//! upgrades it to an overlap worth reporting.
//!
//! Two transfer rules do most of the recall work:
//!
//! * **wrap-to-full**: `x % m` where `x`'s feasible set contains dense
//!   runs of length `>= m` yields exactly `[0, m-1]` for *every*
//!   process — the result is uniform even when `x` itself is
//!   process-biased (`(prand(..) % N + k*NPROC + p) % N`).
//! * **congruence survival**: `x % m` preserves `x ≡ r (mod g)`
//!   whenever `g | m` and `x >= 0` (`(i + (n+1)*NPROC) % NB` keeps
//!   `i ≡ p (mod NPROC)`).
//!
//! Shared-array *contents* get the same treatment via a fixed-point
//! content map (`(obj, field) -> RelVal` join of all stored values), so
//! an index loaded from another array (`cell_count[px[i] / 16]`,
//! `gates[gates[i].fan1].val`) inherits the stored values' range. A
//! store whose value shares a dependency (a local slot or the process
//! id) with its own store index marks the entry *index-correlated*:
//! loading such an entry at a process-dependent index yields a
//! process-dependent value (the revolving / static partition-bound
//! arrays), which taints everything computed from it and keeps those
//! accesses suppressed. `prand` launders dependencies: its output set
//! is the full non-negative range no matter the seed.

use crate::lin::{Lin, PDV_SLOT};
use fsr_lang::ast::{
    BinOp, Block, Builtin, Callee, Expr, ExprKind, FieldId, FuncId, ObjId, ObjectKind, Place,
    Program, Stmt, StmtKind, Target, UnOp, VarRef,
};
use fsr_lang::diag::Span;
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound used for `prand`'s non-negative chaotic output.
const PRAND_MAX: i64 = (1 << 31) - 1;

/// Relational abstract value for one integer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelVal {
    /// Inclusive pdv-affine lower bound, if known.
    pub lo: Option<Lin>,
    /// Inclusive pdv-affine upper bound, if known.
    pub hi: Option<Lin>,
    /// Congruence modulus: `0` = none, else `>= 2` and
    /// `value ≡ residue (mod modulus)`.
    pub modulus: i64,
    /// Congruence residue (pdv-affine); meaningful iff `modulus >= 2`.
    pub residue: Lin,
    /// The feasible set contains, for every process, a dense integer run
    /// of length `>= span` (`span >= 1` always holds trivially).
    pub span: i64,
    /// The feasible-value *set* is identical for every process id.
    pub uniform: bool,
    /// Local slots (plus [`PDV_SLOT`]) the value depends on, used only
    /// for store/load index-correlation. `None` = unknown dependencies
    /// (treated as "depends on everything").
    pub deps: Option<BTreeSet<u32>>,
}

impl RelVal {
    pub fn unknown() -> RelVal {
        RelVal {
            lo: None,
            hi: None,
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: false,
            deps: None,
        }
    }

    pub fn constant(c: i64) -> RelVal {
        RelVal {
            lo: Some(Lin::constant(c)),
            hi: Some(Lin::constant(c)),
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: true,
            deps: Some(BTreeSet::new()),
        }
    }

    pub fn pdv() -> RelVal {
        RelVal {
            lo: Some(Lin::pdv()),
            hi: Some(Lin::pdv()),
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: false,
            deps: Some([PDV_SLOT].into_iter().collect()),
        }
    }

    /// The chaotic non-negative range `prand` produces: dense, uniform,
    /// dependency-free regardless of its seed.
    pub fn chaos() -> RelVal {
        RelVal {
            lo: Some(Lin::constant(0)),
            hi: Some(Lin::constant(PRAND_MAX)),
            modulus: 0,
            residue: Lin::constant(0),
            span: PRAND_MAX, // saturated; exact value is irrelevant past any array dim
            uniform: true,
            deps: Some(BTreeSet::new()),
        }
    }

    /// Exactly `[0, m-1]`, every value feasible for every process.
    fn full_mod(m: i64) -> RelVal {
        RelVal {
            lo: Some(Lin::constant(0)),
            hi: Some(Lin::constant(m - 1)),
            modulus: 0,
            residue: Lin::constant(0),
            span: m,
            uniform: true,
            deps: Some(BTreeSet::new()),
        }
    }

    /// Singleton value, if `lo == hi` and both are known.
    pub fn as_single(&self) -> Option<&Lin> {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    fn dep_union(a: &Option<BTreeSet<u32>>, b: &Option<BTreeSet<u32>>) -> Option<BTreeSet<u32>> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.union(y).cloned().collect()),
            _ => None,
        }
    }

    /// Concrete `[min, max]` of a pdv-affine bound over all pids.
    fn bound_range(l: &Lin, nproc: i64) -> Option<(i64, i64)> {
        if !l.is_pdv_affine() {
            return None;
        }
        let mut mn = i64::MAX;
        let mut mx = i64::MIN;
        for p in 0..nproc.max(1) {
            let v = l.eval_pdv(p)?;
            mn = mn.min(v);
            mx = mx.max(v);
        }
        Some((mn, mx))
    }

    /// Concrete min of `lo` / max of `hi` over all pids.
    pub fn concrete_bounds(&self, nproc: i64) -> (Option<i64>, Option<i64>) {
        let mn = self
            .lo
            .as_ref()
            .and_then(|l| Self::bound_range(l, nproc))
            .map(|(a, _)| a);
        let mx = self
            .hi
            .as_ref()
            .and_then(|l| Self::bound_range(l, nproc))
            .map(|(_, b)| b);
        (mn, mx)
    }

    /// Join (set union over-approximation).
    pub fn join(&self, other: &RelVal, nproc: i64) -> RelVal {
        let pick = |a: &Option<Lin>, b: &Option<Lin>, want_min: bool| -> Option<Lin> {
            let (x, y) = (a.as_ref()?, b.as_ref()?);
            if x == y {
                return Some(x.clone());
            }
            // Different Lins: a joined bound must dominate *both*
            // operands at every pid (keeping whichever has the looser
            // global extreme is unsound when the Lins cross over pids,
            // e.g. lo = pdv vs lo = 1). Keep a pointwise-looser
            // operand if one exists, else fall back to the constant
            // envelope, which dominates both by construction.
            let (xr, yr) = (Self::bound_range(x, nproc)?, Self::bound_range(y, nproc)?);
            let pointwise_le = |l: &Lin, r: &Lin| -> bool {
                (0..nproc.max(1)).all(|p| match (l.eval_pdv(p), r.eval_pdv(p)) {
                    (Some(lv), Some(rv)) => lv <= rv,
                    _ => false,
                })
            };
            if want_min {
                if pointwise_le(x, y) {
                    Some(x.clone())
                } else if pointwise_le(y, x) {
                    Some(y.clone())
                } else {
                    Some(Lin::constant(xr.0.min(yr.0)))
                }
            } else if pointwise_le(y, x) {
                Some(x.clone())
            } else if pointwise_le(x, y) {
                Some(y.clone())
            } else {
                Some(Lin::constant(xr.1.max(yr.1)))
            }
        };
        let (modulus, residue) = if self.modulus >= 2
            && self.modulus == other.modulus
            && self.residue == other.residue
        {
            (self.modulus, self.residue.clone())
        } else {
            (0, Lin::constant(0))
        };
        RelVal {
            lo: pick(&self.lo, &other.lo, true),
            hi: pick(&self.hi, &other.hi, false),
            modulus,
            residue,
            span: self.span.min(other.span).max(1),
            uniform: self.uniform && other.uniform,
            deps: Self::dep_union(&self.deps, &other.deps),
        }
    }

    /// Widen against a previous iterate: any bound that changed is
    /// dropped; congruence/span/uniform degrade monotonically via join.
    fn widen_from(&self, prev: &RelVal, nproc: i64) -> RelVal {
        let mut w = self.join(prev, nproc);
        if self.lo != prev.lo {
            w.lo = None;
        }
        if self.hi != prev.hi {
            w.hi = None;
        }
        w
    }

    pub fn add(&self, other: &RelVal) -> RelVal {
        let lift = |a: &Option<Lin>, b: &Option<Lin>| -> Option<Lin> {
            checked_add(a.as_ref()?, b.as_ref()?)
        };
        // Congruence of a sum: a singleton operand shifts the residue;
        // two real congruences combine at gcd.
        let (modulus, residue) = if let Some(s) = other.as_single() {
            if self.modulus >= 2 {
                (self.modulus, self.residue.add(s))
            } else {
                (0, Lin::constant(0))
            }
        } else if let Some(s) = self.as_single() {
            if other.modulus >= 2 {
                (other.modulus, other.residue.add(s))
            } else {
                (0, Lin::constant(0))
            }
        } else if self.modulus >= 2 && other.modulus >= 2 {
            let g = gcd(self.modulus, other.modulus);
            if g >= 2 {
                (g, self.residue.add(&other.residue))
            } else {
                (0, Lin::constant(0))
            }
        } else {
            (0, Lin::constant(0))
        };
        RelVal {
            lo: lift(&self.lo, &other.lo),
            hi: lift(&self.hi, &other.hi),
            modulus,
            residue: norm_res(residue, modulus),
            // Every element of the sum lies inside a shifted dense run
            // of the denser operand, so runs never get shorter than
            // either operand's guarantee.
            span: self.span.max(other.span),
            uniform: self.uniform && other.uniform,
            deps: Self::dep_union(&self.deps, &other.deps),
        }
    }

    pub fn neg(&self) -> RelVal {
        RelVal {
            lo: self.hi.as_ref().map(Lin::neg),
            hi: self.lo.as_ref().map(Lin::neg),
            modulus: self.modulus,
            residue: self.residue.neg(),
            span: self.span,
            uniform: self.uniform,
            deps: self.deps.clone(),
        }
    }

    pub fn sub(&self, other: &RelVal) -> RelVal {
        self.add(&other.neg())
    }

    pub fn mul_const(&self, c: i64) -> RelVal {
        if c == 0 {
            return RelVal::constant(0);
        }
        if c == 1 {
            return self.clone();
        }
        let scale = |l: &Option<Lin>| -> Option<Lin> { checked_scale(l.as_ref()?, c) };
        let (lo, hi) = if c > 0 {
            (scale(&self.lo), scale(&self.hi))
        } else {
            (scale(&self.hi), scale(&self.lo))
        };
        let (modulus, residue) = if self.as_single().is_some() {
            (0, Lin::constant(0)) // singleton bounds already say it all
        } else if self.modulus >= 2 {
            match self.modulus.checked_mul(c.abs()) {
                Some(m) => (m, self.residue.scale(c)),
                None => (0, Lin::constant(0)),
            }
        } else if c.abs() >= 2 {
            (c.abs(), Lin::constant(0)) // x*c ≡ 0 (mod |c|)
        } else {
            (0, Lin::constant(0))
        };
        RelVal {
            lo,
            hi,
            modulus,
            residue: norm_res(residue, modulus),
            span: if c == -1 { self.span } else { 1 },
            uniform: self.uniform,
            deps: self.deps.clone(),
        }
    }

    pub fn mul(&self, other: &RelVal, nproc: i64) -> RelVal {
        if let Some(c) = other.as_single().and_then(Lin::as_constant) {
            return self.mul_const(c);
        }
        if let Some(c) = self.as_single().and_then(Lin::as_constant) {
            return other.mul_const(c);
        }
        // General product: concrete corner bounds when available.
        let (alo, ahi) = self.concrete_bounds(nproc);
        let (blo, bhi) = other.concrete_bounds(nproc);
        let (mut lo, mut hi) = (None, None);
        if let (Some(al), Some(ah), Some(bl), Some(bh)) = (alo, ahi, blo, bhi) {
            let corners = [
                al.checked_mul(bl),
                al.checked_mul(bh),
                ah.checked_mul(bl),
                ah.checked_mul(bh),
            ];
            if corners.iter().all(Option::is_some) {
                let vals: Vec<i64> = corners.into_iter().flatten().collect();
                lo = Some(Lin::constant(*vals.iter().min().unwrap()));
                hi = Some(Lin::constant(*vals.iter().max().unwrap()));
            }
        }
        RelVal {
            lo,
            hi,
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: self.uniform && other.uniform,
            deps: Self::dep_union(&self.deps, &other.deps),
        }
    }

    /// `self % m` for a positive constant modulus (PSL `%` truncates
    /// toward zero like Rust's).
    pub fn rem_const(&self, m: i64, nproc: i64) -> RelVal {
        if m <= 0 {
            return RelVal {
                uniform: self.uniform,
                deps: self.deps.clone(),
                ..RelVal::unknown()
            };
        }
        if m == 1 {
            return RelVal::constant(0);
        }
        let (clo, chi) = self.concrete_bounds(nproc);
        let nonneg = clo.map(|l| l >= 0).unwrap_or(false);
        // Wrap-to-full: a dense run of >= m consecutive feasible values
        // covers every residue class, so the result is exactly
        // [0, m-1] for every process — uniform and dependency-free
        // even when the operand is process-biased. Only sound for
        // non-negative operands: truncating rem maps a run of m
        // consecutive negatives onto (-(m-1)..=0], not [0, m-1].
        if nonneg && self.span >= m {
            return RelVal::full_mod(m);
        }
        // No-wrap: the operand already lives in [0, m-1].
        if let (Some(l), Some(h)) = (clo, chi) {
            if l >= 0 && h < m {
                return self.clone();
            }
        }
        // Congruence survival: for x >= 0 and g | m, x % m ≡ x (mod g).
        let (modulus, residue) = if nonneg && self.modulus >= 2 && m % self.modulus == 0 {
            (self.modulus, self.residue.clone())
        } else {
            (0, Lin::constant(0))
        };
        RelVal {
            lo: Some(Lin::constant(if nonneg { 0 } else { -(m - 1) })),
            hi: Some(Lin::constant(m - 1)),
            modulus,
            residue,
            span: 1,
            uniform: self.uniform,
            deps: self.deps.clone(),
        }
    }

    /// `self / c` for a positive constant divisor (truncating).
    pub fn div_const(&self, c: i64, nproc: i64) -> RelVal {
        if c <= 0 {
            return RelVal {
                uniform: self.uniform,
                deps: self.deps.clone(),
                ..RelVal::unknown()
            };
        }
        if c == 1 {
            return self.clone();
        }
        let (clo, chi) = self.concrete_bounds(nproc);
        let (lo, hi) = match (clo, chi) {
            (Some(l), Some(h)) => (Some(Lin::constant(l / c)), Some(Lin::constant(h / c))),
            _ => (None, None),
        };
        RelVal {
            lo,
            hi,
            modulus: 0,
            residue: Lin::constant(0),
            // A dense run of length L maps onto a dense quotient run of
            // length >= L/c (truncating division is monotone with unit
            // steps).
            span: (self.span / c).max(1),
            uniform: self.uniform,
            deps: self.deps.clone(),
        }
    }

    /// `abs(self)`.
    pub fn abs(&self, nproc: i64) -> RelVal {
        let (clo, chi) = self.concrete_bounds(nproc);
        if clo.map(|l| l >= 0).unwrap_or(false) {
            return self.clone();
        }
        let hi = match (clo, chi) {
            (Some(l), Some(h)) => Some(Lin::constant(l.abs().max(h.abs()))),
            _ => None,
        };
        RelVal {
            lo: Some(Lin::constant(0)),
            hi,
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: self.uniform,
            deps: self.deps.clone(),
        }
    }

    /// A boolean-producing comparison/logical operator: value in
    /// `[0, 1]`, uniform iff both operands are.
    fn boolean(&self, other: &RelVal) -> RelVal {
        RelVal {
            lo: Some(Lin::constant(0)),
            hi: Some(Lin::constant(1)),
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: self.uniform && other.uniform,
            deps: Self::dep_union(&self.deps, &other.deps),
        }
    }

    /// Does the feasible set provably cover the full dimension
    /// `[0, dim-1]`, identically for every process?
    pub fn uniform_full(&self, dim: i64, nproc: i64) -> bool {
        if !self.uniform {
            return false;
        }
        let (lo, hi) = self.concrete_bounds(nproc);
        // The dense-run guarantee pins the run's *location* only when
        // the run must fill the whole interval `[lo, hi]` (then the
        // set IS that interval); coverage of `[0, dim-1]` follows from
        // the bounds. A mere `span >= dim` with looser bounds leaves
        // the run free to sit anywhere inside them.
        matches!(
            (lo, hi),
            (Some(l), Some(h)) if self.span > h - l && l <= 0 && h >= dim - 1
        )
    }
}

/// Canonicalize a residue's constant term into `[0, m)` so equal
/// congruences compare equal in joins.
fn norm_res(r: Lin, m: i64) -> Lin {
    if m >= 2 {
        Lin {
            c0: r.c0.rem_euclid(m),
            ..r
        }
    } else {
        r
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn checked_add(a: &Lin, b: &Lin) -> Option<Lin> {
    // Lin arithmetic wraps; guard against runaway constants from
    // chaos-range arithmetic silently overflowing.
    a.c0.checked_add(b.c0)?;
    let c = a.add(b);
    (c.c0.unsigned_abs() < (1 << 62)).then_some(c)
}

fn checked_scale(l: &Lin, k: i64) -> Option<Lin> {
    l.c0.checked_mul(k)?;
    let s = l.scale(k);
    (s.c0.unsigned_abs() < (1 << 62)).then_some(s)
}

/// Per-`(obj, field)` join of every stored value, plus whether any
/// store's value shares a dependency with its own store index.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentEntry {
    pub rel: RelVal,
    pub index_correlated: bool,
}

/// The relational facts for one program: per-dimension [`RelVal`]s for
/// every shared-data access site (keyed by the access's source span)
/// plus the shared-content map they were derived with.
#[derive(Debug, Clone, Default)]
pub struct RelFacts {
    /// Access-site span -> per-declared-dimension index values.
    pub at: BTreeMap<Span, Vec<RelVal>>,
    /// `(obj, field)` -> stored-value join.
    pub content: BTreeMap<(ObjId, Option<FieldId>), ContentEntry>,
    /// Process count the facts were computed at.
    pub nproc: i64,
}

impl RelFacts {
    pub fn idx(&self, span: Span) -> Option<&[RelVal]> {
        self.at.get(&span).map(Vec::as_slice)
    }
}

/// Dynamic value-range facts extracted from a recorded trace (the
/// `--refine` path): `(obj, field)` groups where two *different*
/// processes touched the same element inside the same barrier
/// generation with at least one write. Such an observation is a
/// concrete witness that a statically-unprovable overlap really
/// happens, so the race pass upgrades the pair instead of suppressing
/// it. The converse (no observed conflict) never *adds* suppression —
/// dynamic absence is not a proof.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineFacts {
    pub conflicting: BTreeSet<(ObjId, Option<FieldId>)>,
}

/// Verdict of re-judging one suppressed pair at one `(p, q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelVerdict {
    /// Provably disjoint for this `(p, q)`: range separation or
    /// congruence separation in some dimension.
    Disjoint,
    /// Provable (process-uniform, dimension-covering) overlap in every
    /// dimension: worth reporting.
    Overlap,
    /// No proof either way: stay suppressed.
    Unknown,
}

/// Re-judge a `Section::Unknown`-degraded pair using relational facts.
///
/// `dims` are the declared dimensions of the object. Disjointness needs
/// only one separating dimension; an overlap verdict needs *every*
/// dimension to either carry a uniform full-dimension index on one side
/// or agree on a singleton.
pub fn judge_pair(
    facts: &RelFacts,
    a_span: Span,
    b_span: Span,
    dims: &[i64],
    p: i64,
    q: i64,
) -> RelVerdict {
    let (Some(ra), Some(rb)) = (facts.idx(a_span), facts.idx(b_span)) else {
        return RelVerdict::Unknown;
    };
    if ra.len() != rb.len() || ra.len() != dims.len() {
        return RelVerdict::Unknown;
    }
    let mut all_overlap = !dims.is_empty();
    for d in 0..dims.len() {
        match judge_dim(&ra[d], &rb[d], dims[d], p, q, facts.nproc) {
            DimRel::Disjoint => return RelVerdict::Disjoint,
            DimRel::Overlap => {}
            DimRel::Unknown => all_overlap = false,
        }
    }
    if all_overlap {
        RelVerdict::Overlap
    } else {
        RelVerdict::Unknown
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DimRel {
    Disjoint,
    Overlap,
    Unknown,
}

fn judge_dim(a: &RelVal, b: &RelVal, dim: i64, p: i64, q: i64, nproc: i64) -> DimRel {
    // Range separation at this (p, q).
    let eval = |l: &Option<Lin>, pid: i64| -> Option<i64> { l.as_ref()?.eval_pdv(pid) };
    if let (Some(ahi), Some(blo)) = (eval(&a.hi, p), eval(&b.lo, q)) {
        if ahi < blo {
            return DimRel::Disjoint;
        }
    }
    if let (Some(bhi), Some(alo)) = (eval(&b.hi, q), eval(&a.lo, p)) {
        if bhi < alo {
            return DimRel::Disjoint;
        }
    }
    // Congruence separation: both residues known modulo a common g.
    if a.modulus >= 2 && b.modulus >= 2 {
        let g = gcd(a.modulus, b.modulus);
        if g >= 2 {
            if let (Some(ra), Some(rb)) = (a.residue.eval_pdv(p), b.residue.eval_pdv(q)) {
                if (ra - rb).rem_euclid(g) != 0 {
                    return DimRel::Disjoint;
                }
            }
        }
    }
    // Uniform full-dimension coverage on either side meets any feasible
    // index on the other.
    if a.uniform_full(dim, nproc) || b.uniform_full(dim, nproc) {
        return DimRel::Overlap;
    }
    // Agreeing singletons.
    if let (Some(sa), Some(sb)) = (a.as_single(), b.as_single()) {
        if let (Some(va), Some(vb)) = (sa.eval_pdv(p), sb.eval_pdv(q)) {
            if va == vb {
                return DimRel::Overlap;
            }
        }
    }
    DimRel::Unknown
}

/// A human-readable reason why a pair stayed suppressed, derived from
/// the rel facts of its two sides.
pub fn suppression_reason(facts: &RelFacts, a_span: Span, b_span: Span) -> &'static str {
    let sides = [facts.idx(a_span), facts.idx(b_span)];
    if sides.iter().any(Option::is_none) {
        return "no relational facts for the index expression";
    }
    let vals: Vec<&RelVal> = sides.into_iter().flatten().flat_map(|s| s.iter()).collect();
    if vals
        .iter()
        .any(|v| !v.uniform && v.lo.is_none() && v.hi.is_none())
    {
        return "index is data-dependent with no derivable bounds";
    }
    if vals.iter().any(|v| !v.uniform) {
        return "index range depends on run-time partition values";
    }
    "index ranges may alias but cover only part of the dimension"
}

// ---------------------------------------------------------------------
// The relational walker.
// ---------------------------------------------------------------------

/// Content-map fixed-point rounds; the penultimate round widens entries
/// still in motion so the final round is stable by construction.
const CONTENT_ROUNDS: usize = 4;
/// Call-inlining depth bound (the call graph is checked acyclic by the
/// front end, but stay defensive).
const MAX_DEPTH: usize = 16;

/// Compute relational facts for a checked program at `nproc` processes.
pub fn compute(prog: &Program, nproc: i64) -> RelFacts {
    let mut content: BTreeMap<(ObjId, Option<FieldId>), ContentEntry> = BTreeMap::new();
    // Ascend from "nothing stored": a store whose value read a
    // still-unwritten entry contributes nothing that round, so
    // self-referential updates (`x[i] = x[i] + ..`) cannot poison the
    // entry before its generating stores have registered.
    for round in 0..CONTENT_ROUNDS {
        let mut w = RelWalker {
            prog,
            nproc,
            content: &content,
            next_content: BTreeMap::new(),
            at: BTreeMap::new(),
            depth: 0,
            read_bottom: false,
        };
        w.run();
        let mut next = w.next_content;
        if round == CONTENT_ROUNDS - 2 {
            for (k, e) in next.iter_mut() {
                if let Some(prev) = content.get(k) {
                    if prev.rel != e.rel {
                        e.rel = e.rel.widen_from(&prev.rel, nproc);
                    }
                    e.index_correlated |= prev.index_correlated;
                }
            }
        }
        if next == content {
            break;
        }
        content = next;
    }
    // Final pass: record per-site index facts against the settled map.
    let mut w = RelWalker {
        prog,
        nproc,
        content: &content,
        next_content: BTreeMap::new(),
        at: BTreeMap::new(),
        depth: 0,
        read_bottom: false,
    };
    w.run();
    RelFacts {
        at: w.at,
        content,
        nproc,
    }
}

struct RelWalker<'a> {
    prog: &'a Program,
    nproc: i64,
    content: &'a BTreeMap<(ObjId, Option<FieldId>), ContentEntry>,
    next_content: BTreeMap<(ObjId, Option<FieldId>), ContentEntry>,
    at: BTreeMap<Span, Vec<RelVal>>,
    depth: usize,
    /// Set when a load hit a still-unwritten content entry; used to
    /// withhold the enclosing store's contribution this round.
    read_bottom: bool,
}

/// `None` = value unknown ([`RelVal::unknown`] on read).
type Env = Vec<Option<RelVal>>;

impl RelWalker<'_> {
    fn run(&mut self) {
        let Some(main) = self.prog.main else { return };
        let f = self.prog.func(main);
        let mut env: Env = vec![None; f.num_slots as usize];
        // The `Forall` arm binds the pdv slot when the walk reaches it;
        // everything before/after is the serial prologue/epilogue.
        self.block(&f.body, &mut env);
    }

    fn env_get(env: &Env, slot: u32) -> RelVal {
        env.get(slot as usize)
            .and_then(|v| v.clone())
            .unwrap_or_else(RelVal::unknown)
    }

    /// Slots assigned anywhere in a block (loop-carried smashing).
    fn assigned(block: &Block, out: &mut BTreeSet<u32>) {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::Assign {
                    target: Target::Local(slot),
                    ..
                } => {
                    out.insert(*slot);
                }
                StmtKind::VarDecl {
                    slot,
                    init: Some(_),
                    ..
                } => {
                    out.insert(*slot);
                }
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    Self::assigned(then_blk, out);
                    if let Some(e) = else_blk {
                        Self::assigned(e, out);
                    }
                }
                StmtKind::While { body, .. } => Self::assigned(body, out),
                StmtKind::For { slot, body, .. } | StmtKind::Forall { slot, body, .. } => {
                    out.insert(*slot);
                    Self::assigned(body, out);
                }
                StmtKind::Block(b) => Self::assigned(b, out),
                _ => {}
            }
        }
    }

    fn smash(env: &mut Env, slots: &BTreeSet<u32>, keep: Option<u32>) {
        for &s in slots {
            if Some(s) != keep && (s as usize) < env.len() {
                env[s as usize] = None;
            }
        }
    }

    fn block(&mut self, b: &Block, env: &mut Env) {
        for s in b.stmts.iter() {
            self.stmt(s, env);
        }
    }

    fn stmt(&mut self, s: &Stmt, env: &mut Env) {
        match &s.kind {
            StmtKind::VarDecl { slot, init, .. } => {
                let v = init.as_ref().map(|e| self.eval(e, env));
                if (*slot as usize) < env.len() {
                    env[*slot as usize] = v;
                }
            }
            StmtKind::Assign { target, value } => match target {
                Target::Local(slot) => {
                    let v = self.eval(value, env);
                    if (*slot as usize) < env.len() {
                        env[*slot as usize] = Some(v);
                    }
                }
                Target::Place(place) => {
                    let saved = self.read_bottom;
                    self.read_bottom = false;
                    let v = self.eval(value, env);
                    let value_read_bottom = self.read_bottom;
                    self.read_bottom |= saved;
                    self.store(place, v, env, value_read_bottom);
                }
                Target::Path(_) => {}
            },
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let _ = self.eval(cond, env);
                let mut then_env = env.clone();
                self.block(then_blk, &mut then_env);
                let mut else_env = env.clone();
                if let Some(e) = else_blk {
                    self.block(e, &mut else_env);
                }
                for i in 0..env.len() {
                    env[i] = match (&then_env[i], &else_env[i]) {
                        (Some(a), Some(b)) => Some(a.join(b, self.nproc)),
                        _ => None,
                    };
                }
            }
            StmtKind::While { cond, body } => {
                let mut carried = BTreeSet::new();
                Self::assigned(body, &mut carried);
                Self::smash(env, &carried, None);
                let _ = self.eval(cond, env);
                let mut benv = env.clone();
                self.block(body, &mut benv);
                // Carried slots stay smashed in the post-loop env.
            }
            StmtKind::For {
                slot,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let mut carried = BTreeSet::new();
                Self::assigned(body, &mut carried);
                Self::smash(env, &carried, Some(*slot));
                let lo_v = self.eval(lo, env);
                let hi_v = self.eval(hi, env);
                let step_c = step
                    .as_ref()
                    .map(|e| self.eval(e, env))
                    .and_then(|v| v.as_single().and_then(Lin::as_constant))
                    .unwrap_or(1);
                let iv = self.induction_value(&lo_v, &hi_v, step_c);
                if (*slot as usize) < env.len() {
                    env[*slot as usize] = Some(iv);
                }
                let mut benv = env.clone();
                self.block(body, &mut benv);
                if (*slot as usize) < env.len() {
                    env[*slot as usize] = None;
                }
            }
            StmtKind::Forall { slot, body, .. } => {
                if (*slot as usize) < env.len() {
                    env[*slot as usize] = Some(RelVal::pdv());
                }
                self.block(body, env);
            }
            StmtKind::Lock { .. } | StmtKind::Unlock { .. } | StmtKind::Barrier { .. } => {}
            StmtKind::CallStmt { callee, args, .. } => {
                let argv: Vec<RelVal> = args.iter().map(|a| self.eval(a, env)).collect();
                if let Some(Callee::User(fid)) = callee {
                    self.call(*fid, argv);
                }
            }
            StmtKind::Return(Some(e)) => {
                let _ = self.eval(e, env);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b, env),
        }
    }

    /// Abstract value of a `for` induction variable across the whole
    /// iteration space.
    fn induction_value(&self, lo: &RelVal, hi: &RelVal, step: i64) -> RelVal {
        let one = RelVal::constant(1);
        let hi_m1 = hi.sub(&one);
        if step == 1 {
            // v takes every integer in [lo, hi-1]: the guaranteed
            // per-process dense run is (min possible hi-1) - (max
            // possible lo) + 1, evaluated per pid.
            let mut span = i64::MAX;
            for p in 0..self.nproc.max(1) {
                let start_max = lo.hi.as_ref().and_then(|l| l.eval_pdv(p));
                let end_min = hi_m1.lo.as_ref().and_then(|l| l.eval_pdv(p));
                match (start_max, end_min) {
                    (Some(s), Some(e)) if e >= s => span = span.min(e - s + 1),
                    _ => {
                        span = 1;
                        break;
                    }
                }
            }
            if span == i64::MAX {
                span = 1;
            }
            RelVal {
                lo: lo.lo.clone(),
                hi: hi_m1.hi.clone(),
                modulus: 0,
                residue: Lin::constant(0),
                span: span.max(1),
                uniform: lo.uniform && hi.uniform,
                deps: RelVal::dep_union(&lo.deps, &hi.deps),
            }
        } else if step > 1 {
            let (modulus, residue) = match lo.as_single() {
                Some(l) => (step, norm_res(l.clone(), step)),
                None => (0, Lin::constant(0)),
            };
            RelVal {
                lo: lo.lo.clone(),
                hi: hi_m1.hi.clone(),
                modulus,
                residue,
                span: 1,
                uniform: lo.uniform && hi.uniform,
                deps: RelVal::dep_union(&lo.deps, &hi.deps),
            }
        } else {
            // Negative/zero step: iterates downward while v > hi.
            RelVal {
                lo: hi.lo.as_ref().map(|l| l.add(&Lin::constant(1))),
                hi: lo.hi.clone(),
                modulus: 0,
                residue: Lin::constant(0),
                span: 1,
                uniform: lo.uniform && hi.uniform,
                deps: RelVal::dep_union(&lo.deps, &hi.deps),
            }
        }
    }

    fn call(&mut self, fid: FuncId, args: Vec<RelVal>) {
        if self.depth >= MAX_DEPTH {
            return;
        }
        self.depth += 1;
        let f = self.prog.func(fid);
        let mut env: Env = vec![None; f.num_slots as usize];
        for (i, v) in args.into_iter().enumerate() {
            if i < env.len() {
                env[i] = Some(v);
            }
        }
        // Bodies are re-walked per call site (the call graph is checked
        // acyclic and small), so facts at a span join across contexts.
        self.block(&f.body, &mut env);
        self.depth -= 1;
    }

    /// Record a shared-data access site's per-dimension index facts,
    /// joining across loop contexts and call sites.
    fn record(&mut self, place: &Place, idx_vals: &[RelVal]) {
        if self.prog.object(place.obj).kind != ObjectKind::SharedData {
            return;
        }
        let joined = match self.at.remove(&place.span) {
            Some(prev) if prev.len() == idx_vals.len() => prev
                .iter()
                .zip(idx_vals)
                .map(|(a, b)| a.join(b, self.nproc))
                .collect(),
            _ => idx_vals.to_vec(),
        };
        self.at.insert(place.span, joined);
    }

    fn store(&mut self, place: &Place, val: RelVal, env: &mut Env, value_read_bottom: bool) {
        let idx_vals: Vec<RelVal> = place.idx.iter().map(|e| self.eval(e, env)).collect();
        if let Some((_, Some(fi))) = &place.field {
            let _ = self.eval(fi, env);
        }
        self.record(place, &idx_vals);
        if self.prog.object(place.obj).kind != ObjectKind::SharedData || value_read_bottom {
            return;
        }
        let key = (place.obj, place.field.as_ref().map(|(f, _)| *f));
        let mut idx_deps: BTreeSet<u32> = BTreeSet::new();
        let mut idx_deps_known = true;
        for iv in &idx_vals {
            match &iv.deps {
                Some(d) => idx_deps.extend(d.iter().copied()),
                None => idx_deps_known = false,
            }
        }
        let correlated = match (&val.deps, idx_deps_known) {
            (Some(vd), true) => vd.iter().any(|d| idx_deps.contains(d)),
            // Unknown dependencies on either side: assume correlated.
            _ => true,
        };
        let entry = ContentEntry {
            rel: val,
            index_correlated: correlated,
        };
        let nproc = self.nproc;
        self.next_content
            .entry(key)
            .and_modify(|e| {
                e.rel = e.rel.join(&entry.rel, nproc);
                e.index_correlated |= entry.index_correlated;
            })
            .or_insert(entry);
    }

    fn load(&mut self, place: &Place, env: &mut Env) -> RelVal {
        let idx_vals: Vec<RelVal> = place.idx.iter().map(|e| self.eval(e, env)).collect();
        if let Some((_, Some(fi))) = &place.field {
            let _ = self.eval(fi, env);
        }
        self.record(place, &idx_vals);
        let key = (place.obj, place.field.as_ref().map(|(f, _)| *f));
        let Some(entry) = self.content.get(&key) else {
            if self.prog.object(place.obj).kind == ObjectKind::SharedData {
                self.read_bottom = true;
            }
            return RelVal::unknown();
        };
        let idx_uniform = idx_vals.iter().all(|v| v.uniform);
        let mut v = entry.rel.clone();
        // A correlated entry read at a process-dependent index yields a
        // process-dependent value (partition bounds). An uncorrelated
        // entry's value set is index-independent, so uniformity of the
        // stored values carries over regardless of the index.
        v.uniform = entry.rel.uniform && (idx_uniform || !entry.index_correlated);
        v.deps = if entry.index_correlated {
            // The chosen element's value tracks the index.
            let mut deps: Option<BTreeSet<u32>> = Some(BTreeSet::new());
            for iv in &idx_vals {
                deps = RelVal::dep_union(&deps, &iv.deps);
            }
            deps
        } else {
            // Laundered contents carry no usable correlation with the
            // seed index.
            Some(BTreeSet::new())
        };
        v
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> RelVal {
        match &e.kind {
            ExprKind::Int(v) => RelVal::constant(*v),
            ExprKind::Var(VarRef::Local(slot)) => {
                let mut v = Self::env_get(env, *slot);
                if let Some(d) = &mut v.deps {
                    d.insert(*slot);
                }
                v
            }
            ExprKind::Var(VarRef::Param(i)) => self
                .prog
                .params
                .get(*i as usize)
                .and_then(|p| p.value)
                .map(RelVal::constant)
                .unwrap_or_else(RelVal::unknown),
            ExprKind::Var(VarRef::Const(i)) => self
                .prog
                .consts
                .get(*i as usize)
                .and_then(|c| c.value)
                .map(RelVal::constant)
                .unwrap_or_else(RelVal::unknown),
            ExprKind::Load(place) => self.load(place, env),
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner, env);
                match op {
                    UnOp::Neg => v.neg(),
                    UnOp::Not => v.boolean(&RelVal::constant(0)),
                }
            }
            ExprKind::Binary(op, a, b) => {
                let va = self.eval(a, env);
                let vb = self.eval(b, env);
                self.binop(*op, va, vb)
            }
            ExprKind::Call(Callee::Builtin(b), args) => {
                let argv: Vec<RelVal> = args.iter().map(|a| self.eval(a, env)).collect();
                match b {
                    Builtin::Prand => RelVal::chaos(),
                    Builtin::Abs => argv
                        .first()
                        .map(|v| v.abs(self.nproc))
                        .unwrap_or_else(RelVal::unknown),
                    Builtin::Min | Builtin::Max => {
                        let (Some(x), Some(y)) = (argv.first(), argv.get(1)) else {
                            return RelVal::unknown();
                        };
                        self.min_max(*b == Builtin::Max, x, y)
                    }
                }
            }
            ExprKind::Call(Callee::User(fid), args) => {
                // Walk the callee for its access-site effects; scalar
                // return values are out of scope for the rel domain.
                let argv: Vec<RelVal> = args.iter().map(|a| self.eval(a, env)).collect();
                self.call(*fid, argv);
                RelVal::unknown()
            }
            ExprKind::Path(_) | ExprKind::CallNamed(..) => RelVal::unknown(),
        }
    }

    fn min_max(&self, is_max: bool, x: &RelVal, y: &RelVal) -> RelVal {
        let (xl, xh) = x.concrete_bounds(self.nproc);
        let (yl, yh) = y.concrete_bounds(self.nproc);
        let comb = |a: Option<i64>, b: Option<i64>| -> Option<Lin> {
            let (a, b) = (a?, b?);
            Some(Lin::constant(if is_max { a.max(b) } else { a.min(b) }))
        };
        RelVal {
            lo: comb(xl, yl),
            hi: comb(xh, yh),
            modulus: 0,
            residue: Lin::constant(0),
            span: 1,
            uniform: x.uniform && y.uniform,
            deps: RelVal::dep_union(&x.deps, &y.deps),
        }
    }

    fn binop(&mut self, op: BinOp, a: RelVal, b: RelVal) -> RelVal {
        // Exact fold for two singleton constants.
        if let (Some(ca), Some(cb)) = (
            a.as_single().and_then(Lin::as_constant),
            b.as_single().and_then(Lin::as_constant),
        ) {
            if let Some(v) = fold_const(op, ca, cb) {
                return RelVal::constant(v);
            }
        }
        match op {
            BinOp::Add => a.add(&b),
            BinOp::Sub => a.sub(&b),
            BinOp::Mul => a.mul(&b, self.nproc),
            BinOp::Rem => match b.as_single().and_then(Lin::as_constant) {
                Some(m) => a.rem_const(m, self.nproc),
                None => RelVal {
                    uniform: a.uniform && b.uniform,
                    deps: RelVal::dep_union(&a.deps, &b.deps),
                    ..RelVal::unknown()
                },
            },
            BinOp::Div => match b.as_single().and_then(Lin::as_constant) {
                Some(c) => a.div_const(c, self.nproc),
                None => RelVal {
                    uniform: a.uniform && b.uniform,
                    deps: RelVal::dep_union(&a.deps, &b.deps),
                    ..RelVal::unknown()
                },
            },
            BinOp::Shl => match b.as_single().and_then(Lin::as_constant) {
                Some(c) if (0..62).contains(&c) => a.mul_const(1i64 << c),
                _ => RelVal::unknown(),
            },
            BinOp::Shr => match b.as_single().and_then(Lin::as_constant) {
                Some(c) if (0..62).contains(&c) => a.div_const(1i64 << c, self.nproc),
                _ => RelVal::unknown(),
            },
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => a.boolean(&b),
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => RelVal {
                uniform: a.uniform && b.uniform,
                deps: RelVal::dep_union(&a.deps, &b.deps),
                ..RelVal::unknown()
            },
        }
    }
}

fn fold_const(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.checked_add(b)?,
        BinOp::Sub => a.checked_sub(b)?,
        BinOp::Mul => a.checked_mul(b)?,
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.checked_div(b)?
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.checked_rem(b)?
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => ((a != 0) && (b != 0)) as i64,
        BinOp::Or => ((a != 0) || (b != 0)) as i64,
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => {
            if !(0..62).contains(&b) {
                return None;
            }
            a.checked_shl(b as u32)?
        }
        BinOp::Shr => {
            if !(0..62).contains(&b) {
                return None;
            }
            a >> b
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        fsr_lang::compile_with_params(src, &[("NPROC", 4), ("SCALE", 1)]).unwrap()
    }

    #[test]
    fn wrap_to_full_makes_uniform() {
        // span >= modulus => exactly [0, m-1], uniform, no deps.
        let mut biased = RelVal::chaos().add(&RelVal::pdv());
        assert!(!biased.uniform);
        biased = biased.rem_const(100, 4);
        assert!(biased.uniform);
        assert_eq!(biased.concrete_bounds(4), (Some(0), Some(99)));
        assert_eq!(biased.span, 100);
    }

    #[test]
    fn no_wrap_is_identity() {
        // p in [0,4) stays itself under % 16.
        let p = RelVal::pdv();
        let r = p.rem_const(16, 4);
        assert_eq!(r.as_single(), Some(&Lin::pdv()));
        assert!(!r.uniform);
    }

    #[test]
    fn division_scales_span() {
        // [0, 767] dense / 16 covers [0, 47] densely.
        let full = RelVal::full_mod(768);
        let q = full.div_const(16, 4);
        assert_eq!(q.concrete_bounds(4), (Some(0), Some(47)));
        assert_eq!(q.span, 48);
        assert!(q.uniform_full(48, 4));
    }

    #[test]
    fn congruence_survives_dividing_modulus() {
        // i = 4k + p  =>  (i + 8) % 192 ≡ p (mod 4).
        let k = RelVal {
            lo: Some(Lin::constant(0)),
            hi: Some(Lin::constant(47)),
            modulus: 0,
            residue: Lin::constant(0),
            span: 48,
            uniform: true,
            deps: Some(BTreeSet::new()),
        };
        let i = k.mul_const(4).add(&RelVal::pdv());
        assert_eq!(i.modulus, 4);
        assert_eq!(i.residue, Lin::pdv());
        let j = i.add(&RelVal::constant(8)).rem_const(192, 4);
        assert_eq!(j.modulus, 4);
        assert_eq!(j.residue, Lin::pdv());
        // Residues p vs q differ mod 4 for p != q in [0, 4).
        assert_eq!(judge_dim(&j, &i, 192, 1, 2, 4), DimRel::Disjoint);
    }

    #[test]
    fn pdv_affine_ranges_separate_per_pair() {
        // a = [64p, 64p+63]: disjoint across distinct pids.
        let base = RelVal::pdv().mul_const(64);
        let a = RelVal {
            lo: base.lo.clone(),
            hi: base.hi.clone().map(|h| h.add(&Lin::constant(63))),
            ..base
        };
        assert_eq!(judge_dim(&a, &a, 256, 0, 1, 4), DimRel::Disjoint);
        assert_eq!(judge_dim(&a, &a, 256, 3, 0, 4), DimRel::Disjoint);
        // Same pid overlaps (not judged disjoint).
        assert_ne!(judge_dim(&a, &a, 256, 2, 2, 4), DimRel::Disjoint);
    }

    #[test]
    fn uniform_full_requires_exact_coverage() {
        let full = RelVal::full_mod(48);
        assert!(full.uniform_full(48, 4));
        assert!(!full.uniform_full(49, 4));
        let mut partial = RelVal::full_mod(48);
        partial.span = 1;
        assert!(!partial.uniform_full(48, 4));
        let mut biased = RelVal::full_mod(48);
        biased.uniform = false;
        assert!(!biased.uniform_full(48, 4));
    }

    #[test]
    fn partition_loads_taint_loop_bounds() {
        // The revolving-partition shape: bounds loaded from an array
        // whose stores correlate with their index must not look
        // process-uniform (that would fabricate an overlap proof).
        let prog = compile(
            r#"
            param NPROC = 4;
            param SCALE = 1;
            const Z = 64;
            shared int zf[NPROC + 1];
            shared int zone[Z];
            fn main() {
                forall p in 0 .. NPROC {
                    if (p == 0) {
                        var q;
                        for q in 0 .. NPROC + 1 {
                            zf[q] = (q * (Z / NPROC) + 3) % Z;
                        }
                    }
                    barrier;
                    var j;
                    for j in zf[p] .. zf[p] + Z / NPROC {
                        var jj = j % Z;
                        zone[jj] = zone[jj] + 1;
                    }
                }
            }
            "#,
        );
        let facts = compute(&prog, 4);
        let zf = prog.object_by_name("zf").unwrap().0;
        let e = facts.content.get(&(zf, None)).unwrap();
        assert!(e.index_correlated, "zf stores correlate with index");
        for vals in facts.at.values() {
            for v in vals {
                assert!(
                    !v.uniform_full(64, 4),
                    "taint lost: uniform-full index on revolving partition"
                );
            }
        }
        assert!(!facts.at.is_empty());
    }

    #[test]
    fn chaotic_content_loads_stay_uniform() {
        // The particle-in-cell shape: contents seeded by prand are
        // uncorrelated, so a derived cell index is uniform full-range.
        let prog = compile(
            r#"
            param NPROC = 4;
            param SCALE = 1;
            const N = 64;
            const CELLS = 16;
            shared int px[N];
            shared int hist[CELLS];
            fn main() {
                forall p in 0 .. NPROC {
                    var k;
                    for k in 0 .. N / NPROC {
                        var i = k * NPROC + p;
                        px[i] = prand(i) % (CELLS * 4);
                    }
                    barrier;
                    for k in 0 .. N / NPROC {
                        var i = k * NPROC + p;
                        var c = px[i] / 4;
                        hist[c] = hist[c] + 1;
                    }
                }
            }
            "#,
        );
        let facts = compute(&prog, 4);
        let px = prog.object_by_name("px").unwrap().0;
        let e = facts.content.get(&(px, None)).unwrap();
        assert!(!e.index_correlated, "prand launders the seed");
        assert!(e.rel.uniform);
        let hit = facts
            .at
            .values()
            .any(|vals| vals.iter().any(|v| v.uniform_full(16, 4)));
        assert!(hit, "expected a uniform-full hist index");
    }

    #[test]
    fn self_referential_updates_do_not_poison_content() {
        // x[i] = (x[i] + ..) % N must keep x's entry uniform-full: the
        // strict-bottom fixpoint withholds the self-referential store
        // until the prand store has registered, and wrap-to-full then
        // re-uniformizes the update.
        let prog = compile(
            r#"
            param NPROC = 4;
            param SCALE = 1;
            const N = 64;
            shared int x[N * 2];
            fn main() {
                forall p in 0 .. NPROC {
                    var k;
                    for k in 0 .. N / NPROC {
                        var i = k * NPROC + p;
                        x[i] = prand(i) % (N * 2);
                    }
                    barrier;
                    for k in 0 .. N / NPROC {
                        var i = k * NPROC + p;
                        x[i] = (x[i] + p + 1) % (N * 2);
                    }
                }
            }
            "#,
        );
        let facts = compute(&prog, 4);
        let x = prog.object_by_name("x").unwrap().0;
        let e = facts.content.get(&(x, None)).unwrap();
        assert!(e.rel.uniform, "wrap-to-full keeps contents uniform");
        assert!(e.rel.uniform_full(128, 4));
    }

    #[test]
    fn judge_pair_disjoint_wins_over_overlap() {
        // dim0 uniform-full both sides, dim1 pdv-singletons: disjoint
        // for p != q (any separating dim wins), overlap for p == q.
        let mut facts = RelFacts {
            nproc: 4,
            ..Default::default()
        };
        let sa = Span::new(1, 2);
        let sb = Span::new(3, 4);
        facts
            .at
            .insert(sa, vec![RelVal::full_mod(16), RelVal::pdv()]);
        facts
            .at
            .insert(sb, vec![RelVal::full_mod(16), RelVal::pdv()]);
        assert_eq!(
            judge_pair(&facts, sa, sb, &[16, 4], 0, 1),
            RelVerdict::Disjoint
        );
        assert_eq!(
            judge_pair(&facts, sa, sb, &[16, 4], 2, 2),
            RelVerdict::Overlap
        );
    }

    #[test]
    fn scalars_are_never_rejudged() {
        let mut facts = RelFacts {
            nproc: 4,
            ..Default::default()
        };
        let sa = Span::new(1, 2);
        let sb = Span::new(3, 4);
        facts.at.insert(sa, vec![]);
        facts.at.insert(sb, vec![]);
        let no_dims: &[i64] = &[];
        assert_eq!(
            judge_pair(&facts, sa, sb, no_dims, 0, 1),
            RelVerdict::Unknown
        );
    }
}
