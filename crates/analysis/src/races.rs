//! Interprocedural lockset + non-concurrency race detection (lint pass).
//!
//! The paper's analysis assumes its SPMD inputs are correctly
//! synchronized; this pass checks that assumption. For every pair of
//! accesses to the same shared data structure where at least one is a
//! write, a race is reported unless one of the following holds:
//!
//! 1. **Per-process disjointness** — the accesses touch provably
//!    disjoint elements for every pair of distinct processes
//!    ([`Section::concretize`] + exact progression intersection).
//! 2. **Non-concurrency** — the accesses are ordered by barriers
//!    ([`PhaseSpan::strictly_before`]), including the phase-*residue*
//!    refinement for accesses repeating in fixed-barrier-count loops.
//! 3. **Mutual exclusion** — a common lock is held on every path to both
//!    accesses (lockset from the interprocedural summary walk, with
//!    `lock(lk[p])` element locksets compared per process pair).
//!
//! The pass is tuned for **zero false positives** on well-formed
//! programs: a conflicting pair whose overlap cannot be *proven*
//! (symbolic partition bounds, data-dependent indices) is suppressed and
//! counted in [`RaceReport::suppressed_pairs`] rather than reported.
//! This trades soundness for precision — the trace-backed validation
//! harness (`fsr-lint --validate`) quantifies what the suppression
//! costs on each workload.

use crate::classify::Analysis;
use crate::phase::{PhaseSpan, PHASE_MAX};
use crate::rel::{self, RefineFacts, RelVerdict};
use crate::section::{progressions_intersect, Concrete};
use crate::summary::{FinalAccess, LockIdx};
use fsr_lang::ast::{ElemTy, FieldId, ObjId, ObjectKind, Program};
use fsr_lang::diag::{Code, Diagnostic, Diagnostics};
use std::collections::{BTreeMap, BTreeSet};

/// One `(obj, field)` group whose conflicting pairs were all suppressed,
/// with a human-readable reason derived from the relational facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressedGroup {
    pub obj: ObjId,
    pub field: Option<FieldId>,
    /// Why the overlap stayed unprovable (see [`rel::suppression_reason`]).
    pub reason: &'static str,
}

/// Result of the race lint pass.
#[derive(Debug, Clone)]
pub struct RaceReport {
    pub diagnostics: Diagnostics,
    /// `(object, field)` pairs with at least one reported race.
    pub racy: BTreeSet<(ObjId, Option<FieldId>)>,
    /// Conflicting pairs suppressed because the element overlap could not
    /// be proven (symbolic partition bounds / data-dependent indices).
    /// Always equals `suppressed.len()`.
    pub suppressed_pairs: usize,
    /// Per-group suppression reasons, sorted by `(obj, field)`.
    pub suppressed: Vec<SuppressedGroup>,
}

impl RaceReport {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_clean()
    }

    /// Objects with at least one racy access (any field).
    pub fn racy_objects(&self) -> BTreeSet<ObjId> {
        self.racy.iter().map(|(o, _)| *o).collect()
    }
}

/// Human-readable label for an `(object, field)` access group.
pub fn access_label(prog: &Program, obj: ObjId, field: Option<FieldId>) -> String {
    let o = prog.object(obj);
    match field {
        Some(f) => {
            let fname = match o.elem {
                ElemTy::Struct(sid) => prog.struct_(sid).fields[f.index()].name.clone(),
                _ => format!("f{}", f.0),
            };
            format!("{}.{}", o.name, fname)
        }
        None => o.name.clone(),
    }
}

/// Three-valued element-overlap verdict for one process pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Overlap {
    No,
    Possible,
    Definite,
}

/// Verdict of the lockset comparison for one process pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockVerdict {
    /// Neither side holds any lock.
    None,
    /// A common lock (same object, same element) is definitely held.
    Common,
    /// An incomparable element index is involved — a common lock cannot
    /// be ruled out.
    Maybe,
    /// Locks are held but provably no element is common.
    Disjoint,
}

/// Run the race lint over an analyzed program.
pub fn detect(prog: &Program, analysis: &Analysis) -> RaceReport {
    detect_with(prog, analysis, None)
}

/// [`detect`] with optional dynamic refinement facts from a recorded
/// trace: a statically-unprovable (`Possible`) overlap whose group was
/// observed conflicting at run time is reported instead of suppressed.
pub fn detect_with(
    prog: &Program,
    analysis: &Analysis,
    refine: Option<&RefineFacts>,
) -> RaceReport {
    let mut diagnostics = Diagnostics::new();
    let mut racy = BTreeSet::new();
    let mut suppressed_groups = Vec::new();

    for &span in &analysis.summary.barrier_mismatches {
        diagnostics.push(Diagnostic::warning(
            Code::BarrierCountMismatch,
            "branch arms cross different numbers of barriers; processes \
             taking different arms rendezvous at different points",
            span,
        ));
    }

    // Group parallel-region accesses to shared data by (obj, field).
    // Serial prologue/epilogue accesses are ordered against every
    // parallel access by the forall spawn/join barriers, and against
    // each other by program order (single process), so they are skipped.
    let mut groups: BTreeMap<(ObjId, Option<FieldId>), Vec<&FinalAccess>> = BTreeMap::new();
    for acc in &analysis.summary.accesses {
        if prog.object(acc.obj).kind != ObjectKind::SharedData || acc.serial {
            continue;
        }
        groups.entry((acc.obj, acc.field)).or_default().push(acc);
    }

    let nproc = analysis.nproc;
    for ((oid, field), accs) in &groups {
        if !accs.iter().any(|a| a.is_write) {
            continue;
        }
        let dims: Vec<i64> = prog.object(*oid).dims.iter().map(|&d| d as i64).collect();
        let mut w001: Option<(&FinalAccess, &FinalAccess)> = None;
        let mut w002: Option<(&FinalAccess, &FinalAccess)> = None;
        let mut possible_only = false;
        let mut supp_example: Option<(&FinalAccess, &FinalAccess)> = None;
        let observed_conflict = refine.is_some_and(|r| r.conflicting.contains(&(*oid, *field)));
        for i in 0..accs.len() {
            for j in i..accs.len() {
                let (a, b) = (accs[i], accs[j]);
                if !a.is_write && !b.is_write {
                    continue;
                }
                if !concurrent(a, b) {
                    continue;
                }
                for p in 0..nproc {
                    if !a.rsd.procs.includes(p) {
                        continue;
                    }
                    for q in 0..nproc {
                        if p == q || !b.rsd.procs.includes(q) {
                            continue;
                        }
                        match pair_overlap(a, b, p, q, &dims) {
                            Overlap::No => continue,
                            Overlap::Possible => {
                                // Re-judge with the relational domain:
                                // a proven separation drops the pair, a
                                // proven (uniform, full-dimension)
                                // overlap reports it, and a dynamic
                                // conflict witness from a recorded
                                // trace breaks the remaining ties.
                                match rel::judge_pair(
                                    &analysis.summary.rel,
                                    a.span,
                                    b.span,
                                    &dims,
                                    p,
                                    q,
                                ) {
                                    RelVerdict::Disjoint => continue,
                                    RelVerdict::Overlap => {}
                                    RelVerdict::Unknown => {
                                        if !observed_conflict {
                                            possible_only = true;
                                            supp_example.get_or_insert((a, b));
                                            continue;
                                        }
                                    }
                                }
                            }
                            Overlap::Definite => {}
                        }
                        match common_lock(a, b, p, q) {
                            LockVerdict::Common | LockVerdict::Maybe => continue,
                            LockVerdict::None => {
                                w001.get_or_insert((a, b));
                            }
                            LockVerdict::Disjoint => {
                                w002.get_or_insert((a, b));
                            }
                        }
                    }
                }
            }
        }
        let name = access_label(prog, *oid, *field);
        if let Some((a, b)) = w001 {
            let mut d = Diagnostic::warning(
                Code::UnsynchronizedWriteShare,
                format!(
                    "`{name}` may be accessed by multiple processes in the \
                     same phase with no lock held (at least one access is a \
                     write)"
                ),
                a.span,
            );
            if b.span != a.span {
                d = d.with_related(b.span, "conflicting access here");
            }
            diagnostics.push(d);
            racy.insert((*oid, *field));
        }
        if let Some((a, b)) = w002 {
            let mut d = Diagnostic::warning(
                Code::LockNotHeldOnAllPaths,
                format!(
                    "`{name}` is lock-guarded, but conflicting accesses do \
                     not share a common lock element on every path"
                ),
                a.span,
            );
            if b.span != a.span {
                d = d.with_related(b.span, "conflicting access here");
            }
            diagnostics.push(d);
            racy.insert((*oid, *field));
        }
        if possible_only && w001.is_none() && w002.is_none() {
            let reason = match supp_example {
                Some((a, b)) => rel::suppression_reason(&analysis.summary.rel, a.span, b.span),
                None => "index ranges may alias but cover only part of the dimension",
            };
            suppressed_groups.push(SuppressedGroup {
                obj: *oid,
                field: *field,
                reason,
            });
        }
    }

    diagnostics.sort();
    RaceReport {
        diagnostics,
        racy,
        suppressed_pairs: suppressed_groups.len(),
        suppressed: suppressed_groups,
    }
}

/// May the two accesses execute in the same phase?
fn concurrent(a: &FinalAccess, b: &FinalAccess) -> bool {
    let (pa, pb) = (a.rsd.phase, b.rsd.phase);
    if pa.strictly_before(pb) || pb.strictly_before(pa) {
        return false;
    }
    match (a.residue, b.residue) {
        (Some((r1, m1)), Some((r2, m2))) => {
            // Both repeat periodically: a common phase exists iff the two
            // congruences are jointly satisfiable (CRT condition).
            let g = gcd_u32(m1, m2);
            g < 2 || r1 % g == r2 % g
        }
        (Some((r, m)), None) => residue_meets_span(r, m, pa.lo, pb),
        (None, Some((r, m))) => residue_meets_span(r, m, pb.lo, pa),
        (None, None) => true,
    }
}

/// Does the phase set `{x >= lo : x ≡ r (mod m)}` intersect `span`?
fn residue_meets_span(r: u32, m: u32, lo: u32, span: PhaseSpan) -> bool {
    if span.hi == PHASE_MAX {
        // The other access repeats without a known period: cannot exclude.
        return true;
    }
    let l = i64::from(span.lo.max(lo));
    let h = i64::from(span.hi);
    let m = i64::from(m);
    let first = l + (i64::from(r) - l).rem_euclid(m);
    first <= h
}

fn gcd_u32(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Element-overlap verdict for `a` on process `p` vs `b` on process `q`.
fn pair_overlap(a: &FinalAccess, b: &FinalAccess, p: i64, q: i64, dims: &[i64]) -> Overlap {
    if a.rsd.sections.len() != b.rsd.sections.len() {
        // Mixed whole-object/per-element views of the same object.
        return Overlap::Possible;
    }
    let mut verdict = Overlap::Definite;
    for (k, (sa, sb)) in a.rsd.sections.iter().zip(&b.rsd.sections).enumerate() {
        let dim = dims.get(k).copied().unwrap_or(1);
        let (ca, cb) = (sa.concretize(p, dim), sb.concretize(q, dim));
        if !ca.is_exact() || !cb.is_exact() {
            // Symbolic partition bounds or data-dependent indices: the
            // overlap cannot be decided here (the caller re-judges with
            // the relational domain).
            verdict = Overlap::Possible;
            continue;
        }
        match (ca, cb) {
            (Concrete::Empty, _) | (_, Concrete::Empty) => return Overlap::No,
            (
                Concrete::Progression {
                    lo: l1,
                    hi: h1,
                    stride: s1,
                },
                Concrete::Progression {
                    lo: l2,
                    hi: h2,
                    stride: s2,
                },
            ) => {
                if !progressions_intersect(l1, h1, s1, l2, h2, s2) {
                    return Overlap::No;
                }
            }
            _ => unreachable!("is_exact covers Empty/Progression only"),
        }
    }
    verdict
}

/// Lockset comparison for `a` on process `p` vs `b` on process `q`.
fn common_lock(a: &FinalAccess, b: &FinalAccess, p: i64, q: i64) -> LockVerdict {
    if a.locks.is_empty() && b.locks.is_empty() {
        return LockVerdict::None;
    }
    let mut maybe = false;
    for la in &a.locks {
        for lb in &b.locks {
            if la.obj != lb.obj {
                continue;
            }
            match (&la.idx, &lb.idx) {
                (LockIdx::Scalar, LockIdx::Scalar) => return LockVerdict::Common,
                (LockIdx::Lin(x), LockIdx::Lin(y)) => {
                    match (x.eval_pdv(p), y.eval_pdv(q)) {
                        (Some(i), Some(j)) if i == j => return LockVerdict::Common,
                        (Some(_), Some(_)) => {} // provably different elements
                        _ => maybe = true,
                    }
                }
                _ => maybe = true,
            }
        }
    }
    if maybe {
        LockVerdict::Maybe
    } else {
        LockVerdict::Disjoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> RaceReport {
        let prog = fsr_lang::compile(src).unwrap();
        let analysis = crate::analyze(&prog).unwrap();
        detect(&prog, &analysis)
    }

    fn codes(r: &RaceReport) -> Vec<&'static str> {
        r.diagnostics
            .list
            .iter()
            .filter_map(|d| d.code.map(|c| c.id()))
            .collect()
    }

    #[test]
    fn per_process_disjoint_is_clean() {
        let r = lint(
            "param NPROC = 4; shared int a[NPROC];
             fn main() { forall p in 0 .. NPROC { a[p] = a[p] + 1; } }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unlocked_shared_counter_races() {
        let r = lint(
            "param NPROC = 4; shared int hot;
             fn main() { forall p in 0 .. NPROC { hot = hot + 1; } }",
        );
        assert_eq!(codes(&r), vec!["FSR-W001"]);
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int hot;
             fn main() { forall p in 0 .. NPROC { hot = hot + 1; } }",
        )
        .unwrap();
        let (hot, _) = prog.object_by_name("hot").unwrap();
        assert!(r.racy.contains(&(hot, None)));
    }

    #[test]
    fn scalar_lock_guards_counter() {
        let r = lint(
            "param NPROC = 4; shared int hot; shared lock lk;
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); hot = hot + 1; unlock(lk);
             } }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn lock_flows_through_calls() {
        let r = lint(
            "param NPROC = 4; shared int hot; shared lock lk;
             fn bump() { hot = hot + 1; }
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); bump(); unlock(lk);
             } }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn per_process_element_lock_does_not_guard() {
        // lk[p] and lk[q] are different locks for p != q.
        let r = lint(
            "param NPROC = 4; shared int hot; shared lock lk[NPROC];
             fn main() { forall p in 0 .. NPROC {
                 lock(lk[p]); hot = hot + 1; unlock(lk[p]);
             } }",
        );
        assert_eq!(codes(&r), vec!["FSR-W002"]);
    }

    #[test]
    fn common_element_lock_guards() {
        let r = lint(
            "param NPROC = 4; shared int hot; shared lock lk[NPROC];
             fn main() { forall p in 0 .. NPROC {
                 lock(lk[0]); hot = hot + 1; unlock(lk[0]);
             } }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn barrier_orders_phases() {
        let r = lint(
            "param NPROC = 4; shared int buf[64];
             fn main() { forall p in 0 .. NPROC {
                 if (p == 0) { var i; for i in 0 .. 64 { buf[i] = p; } }
                 barrier;
                 var j; var s; s = 0;
                 for j in 0 .. 64 { s = s + buf[j]; }
             } }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn missing_barrier_races() {
        let r = lint(
            "param NPROC = 4; shared int buf[64];
             fn main() { forall p in 0 .. NPROC {
                 if (p == 0) { var i; for i in 0 .. 64 { buf[i] = p; } }
                 var j; var s; s = 0;
                 for j in 0 .. 64 { s = s + buf[j]; }
             } }",
        );
        assert_eq!(codes(&r), vec!["FSR-W001"]);
    }

    #[test]
    fn residue_separates_producer_consumer_timestep() {
        // Producer phase and consumer phase alternate: with both barriers
        // present the write (even phases) and the read (odd phases) are
        // never concurrent even though both spans are unbounded.
        let r = lint(
            "param NPROC = 4; shared int buf[64];
             fn main() { forall p in 0 .. NPROC {
                 var t;
                 for t in 0 .. 8 {
                     if (p == 0) { var i; for i in 0 .. 64 { buf[i] = t; } }
                     barrier;
                     var j; var s; s = 0;
                     for j in 0 .. 64 { s = s + buf[j]; }
                     barrier;
                 }
             } }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn dropped_second_barrier_races_across_iterations() {
        // Without the trailing barrier the next iteration's producer
        // writes race with the current iteration's consumer reads.
        let r = lint(
            "param NPROC = 4; shared int buf[64];
             fn main() { forall p in 0 .. NPROC {
                 var t;
                 for t in 0 .. 8 {
                     if (p == 0) { var i; for i in 0 .. 64 { buf[i] = t; } }
                     barrier;
                     var j; var s; s = 0;
                     for j in 0 .. 64 { s = s + buf[j]; }
                 }
             } }",
        );
        assert_eq!(codes(&r), vec!["FSR-W001"]);
    }

    #[test]
    fn barrier_count_mismatch_in_branch() {
        let r = lint(
            "param NPROC = 4; shared int a[NPROC];
             fn main() { forall p in 0 .. NPROC {
                 var t;
                 for t in 0 .. 6 {
                     if (t % 3 == 0) { barrier; }
                     a[p] = a[p] + t;
                     barrier;
                 }
             } }",
        );
        assert!(codes(&r).contains(&"FSR-W003"), "{:?}", r.diagnostics);
    }

    #[test]
    fn symbolic_partition_is_suppressed_not_reported() {
        let r = lint(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 var k;
                 for k in 0 .. NPROC + 1 { first[k] = k * 64; }
                 forall p in 0 .. NPROC {
                     var i;
                     for i in first[p] .. first[p + 1] { d[i] = d[i] + 1; }
                 }
             }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert!(r.suppressed_pairs > 0);
    }

    #[test]
    fn overlapping_chunks_race() {
        // Off-by-one chunk boundaries: p's last element is p+1's first.
        let r = lint(
            "param NPROC = 4; shared int d[70];
             fn main() { forall p in 0 .. NPROC {
                 var i;
                 for i in p * 16 .. p * 16 + 17 { d[i] = d[i] + 1; }
             } }",
        );
        assert_eq!(codes(&r), vec!["FSR-W001"]);
    }

    #[test]
    fn serial_prologue_and_epilogue_are_ordered() {
        let r = lint(
            "param NPROC = 4; shared int d[NPROC]; shared int total;
             fn main() {
                 var i;
                 for i in 0 .. NPROC { d[i] = 0; }
                 forall p in 0 .. NPROC { d[p] = d[p] + 1; }
                 total = 0;
                 for i in 0 .. NPROC { total = total + d[i]; }
             }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }
}
