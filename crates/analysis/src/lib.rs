//! Compile-time analysis of explicitly parallel PSL programs.
//!
//! Implements the three analysis stages of Jeremiassen & Eggers
//! (PPoPP'95) for pinpointing data structures susceptible to false
//! sharing:
//!
//! 1. **Per-process control-flow analysis** — which code each process
//!    executes, tracked through `pid == c` guards on the process
//!    differentiating variable (PDV) and interprocedural PDV propagation
//!    (see [`summary`]).
//! 2. **Non-concurrency analysis** — barrier synchronization splits the
//!    program into phases; every access carries the span of phases it may
//!    execute in (see [`phase`]). Phases validate partition-array
//!    assumptions ("the partition is fixed before it is used").
//! 3. **Summary side-effect analysis with static profiling** — per-process
//!    access summaries as bounded regular section descriptors with
//!    execution-frequency weights (see [`section`], [`summary`]).
//!
//! [`classify`] turns raw summaries into per-data-structure sharing
//! patterns and owner maps, which `fsr-transform` maps to the paper's
//! four transformations.
//!
//! # Example
//! ```
//! let src = "param NPROC = 4; shared int c[NPROC];
//!            fn main() { forall p in 0 .. NPROC { c[p] = c[p] + 1; } }";
//! let prog = fsr_lang::compile(src).unwrap();
//! let analysis = fsr_analysis::analyze(&prog).unwrap();
//! let (oid, _) = prog.object_by_name("c").unwrap();
//! let class = analysis.class_for(oid, None).unwrap();
//! assert_eq!(class.write.pattern, fsr_analysis::Pattern::PerProcess);
//! ```

pub mod callgraph;
pub mod classify;
pub mod lin;
pub mod phase;
pub mod races;
pub mod rel;
pub mod report;
pub mod section;
pub mod summary;

pub use classify::{AccessClass, Analysis, OwnerMap, Pattern, SideSummary, MAX_DESCRIPTORS};
pub use phase::{phase_profile, PhaseProfile, PhaseSpan};
pub use races::{access_label, detect, detect_with, RaceReport, SuppressedGroup};
pub use rel::{RefineFacts, RelFacts, RelVal, RelVerdict};
pub use section::{Bound, ProcCond, Rsd, Section};
pub use summary::{FinalAccess, LockIdx, LockSym, ProgramSummary};

use fsr_lang::ast::Program;
use fsr_lang::diag::Error;

/// Number of processes the program is analyzed for, taken from the
/// `forall` bounds (which must be compile-time constants — typically
/// `0 .. NPROC`).
pub fn nproc_of(prog: &Program) -> Option<i64> {
    let main = prog.func(prog.main?);
    for s in &main.body.stmts {
        if let fsr_lang::ast::StmtKind::Forall { lo, hi, .. } = &s.kind {
            let lo = const_of(prog, lo)?;
            let hi = const_of(prog, hi)?;
            return Some((hi - lo).max(1));
        }
    }
    None
}

fn const_of(prog: &Program, e: &fsr_lang::ast::Expr) -> Option<i64> {
    fsr_lang::check::const_eval(prog, e).ok()
}

/// Why a program has no usable process count (see [`require_nproc`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NprocError {
    /// No `main`, or `main`'s body has no top-level `forall`.
    NoForall,
    /// The `forall` bounds are not compile-time constants.
    NonConstBounds,
    /// The process count falls outside what the simulator supports.
    OutOfRange(i64),
}

impl std::fmt::Display for NprocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NprocError::NoForall => {
                write!(f, "no top-level forall in main: process count undeclared")
            }
            NprocError::NonConstBounds => {
                write!(f, "forall bounds are not compile-time constants")
            }
            NprocError::OutOfRange(n) => {
                write!(f, "process count {n} outside supported range 1..=64")
            }
        }
    }
}

impl std::error::Error for NprocError {}

/// Strict variant of [`nproc_of`]: a missing or non-constant process
/// declaration is an error, not a silent uniprocessor default. The
/// simulation pipeline uses this so a malformed front end cannot
/// masquerade as a 1-processor run; [`analyze`] stays lenient (analysis
/// of serial programs is still meaningful).
pub fn require_nproc(prog: &Program) -> Result<i64, NprocError> {
    let main = prog.main.ok_or(NprocError::NoForall)?;
    for s in &prog.func(main).body.stmts {
        if let fsr_lang::ast::StmtKind::Forall { lo, hi, .. } = &s.kind {
            let (lo, hi) = match (const_of(prog, lo), const_of(prog, hi)) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => return Err(NprocError::NonConstBounds),
            };
            let n = (hi - lo).max(1);
            if !(1..=64).contains(&n) {
                return Err(NprocError::OutOfRange(n));
            }
            return Ok(n);
        }
    }
    Err(NprocError::NoForall)
}

/// Run the complete three-stage analysis on a checked program.
pub fn analyze(prog: &Program) -> Result<Analysis, Error> {
    let graph = callgraph::build(prog)?;
    let summary = summary::summarize(prog, &graph)?;
    let nproc = nproc_of(prog).unwrap_or(1);
    Ok(classify::classify(prog, summary, nproc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nproc_from_param() {
        let prog = fsr_lang::compile("param NPROC = 12; fn main() { forall p in 0 .. NPROC { } }")
            .unwrap();
        assert_eq!(nproc_of(&prog), Some(12));
    }

    #[test]
    fn nproc_from_expression() {
        let prog =
            fsr_lang::compile("param NPROC = 8; fn main() { forall p in 1 .. NPROC - 1 { } }")
                .unwrap();
        assert_eq!(nproc_of(&prog), Some(6));
    }

    #[test]
    fn require_nproc_rejects_missing_forall() {
        // The checker rejects forall-less sources, so exercise the
        // defense on a raw Program (what a future front end could hand
        // the driver).
        let prog = fsr_lang::ast::Program::default();
        assert_eq!(require_nproc(&prog), Err(NprocError::NoForall));
        // The lenient accessor still defaults for analysis purposes.
        assert_eq!(nproc_of(&prog), None);
    }

    #[test]
    fn require_nproc_rejects_oversized_counts() {
        let prog = fsr_lang::compile("param NPROC = 100; fn main() { forall p in 0 .. NPROC { } }")
            .unwrap();
        assert_eq!(require_nproc(&prog), Err(NprocError::OutOfRange(100)));
    }

    #[test]
    fn require_nproc_accepts_constant_bounds() {
        let prog = fsr_lang::compile("param NPROC = 12; fn main() { forall p in 0 .. NPROC { } }")
            .unwrap();
        assert_eq!(require_nproc(&prog), Ok(12));
    }

    #[test]
    fn analyze_end_to_end() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC]; shared lock lk;
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); c[p] = c[p] + 1; unlock(lk);
             } }",
        )
        .unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.nproc, 4);
        assert!(a.total_weight > 0.0);
        let (lk, _) = prog.object_by_name("lk").unwrap();
        // Lock accesses are classified too (shared writes).
        let lkc = a.class_for(lk, None).unwrap();
        assert_eq!(lkc.write.pattern, Pattern::Shared);
    }
}
