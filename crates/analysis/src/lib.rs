//! Compile-time analysis of explicitly parallel PSL programs.
//!
//! Implements the three analysis stages of Jeremiassen & Eggers
//! (PPoPP'95) for pinpointing data structures susceptible to false
//! sharing:
//!
//! 1. **Per-process control-flow analysis** — which code each process
//!    executes, tracked through `pid == c` guards on the process
//!    differentiating variable (PDV) and interprocedural PDV propagation
//!    (see [`summary`]).
//! 2. **Non-concurrency analysis** — barrier synchronization splits the
//!    program into phases; every access carries the span of phases it may
//!    execute in (see [`phase`]). Phases validate partition-array
//!    assumptions ("the partition is fixed before it is used").
//! 3. **Summary side-effect analysis with static profiling** — per-process
//!    access summaries as bounded regular section descriptors with
//!    execution-frequency weights (see [`section`], [`summary`]).
//!
//! [`classify`] turns raw summaries into per-data-structure sharing
//! patterns and owner maps, which `fsr-transform` maps to the paper's
//! four transformations.
//!
//! # Example
//! ```
//! let src = "param NPROC = 4; shared int c[NPROC];
//!            fn main() { forall p in 0 .. NPROC { c[p] = c[p] + 1; } }";
//! let prog = fsr_lang::compile(src).unwrap();
//! let analysis = fsr_analysis::analyze(&prog).unwrap();
//! let (oid, _) = prog.object_by_name("c").unwrap();
//! let class = analysis.class_for(oid, None).unwrap();
//! assert_eq!(class.write.pattern, fsr_analysis::Pattern::PerProcess);
//! ```

pub mod callgraph;
pub mod classify;
pub mod lin;
pub mod phase;
pub mod races;
pub mod report;
pub mod section;
pub mod summary;

pub use classify::{AccessClass, Analysis, OwnerMap, Pattern, SideSummary, MAX_DESCRIPTORS};
pub use phase::PhaseSpan;
pub use races::{access_label, detect, RaceReport};
pub use section::{Bound, ProcCond, Rsd, Section};
pub use summary::{FinalAccess, LockIdx, LockSym, ProgramSummary};

use fsr_lang::ast::Program;
use fsr_lang::diag::Error;

/// Number of processes the program is analyzed for, taken from the
/// `forall` bounds (which must be compile-time constants — typically
/// `0 .. NPROC`).
pub fn nproc_of(prog: &Program) -> Option<i64> {
    let main = prog.func(prog.main?);
    for s in &main.body.stmts {
        if let fsr_lang::ast::StmtKind::Forall { lo, hi, .. } = &s.kind {
            let lo = const_of(prog, lo)?;
            let hi = const_of(prog, hi)?;
            return Some((hi - lo).max(1));
        }
    }
    None
}

fn const_of(prog: &Program, e: &fsr_lang::ast::Expr) -> Option<i64> {
    fsr_lang::check::const_eval(prog, e).ok()
}

/// Run the complete three-stage analysis on a checked program.
pub fn analyze(prog: &Program) -> Result<Analysis, Error> {
    let graph = callgraph::build(prog)?;
    let summary = summary::summarize(prog, &graph)?;
    let nproc = nproc_of(prog).unwrap_or(1);
    Ok(classify::classify(prog, summary, nproc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nproc_from_param() {
        let prog = fsr_lang::compile("param NPROC = 12; fn main() { forall p in 0 .. NPROC { } }")
            .unwrap();
        assert_eq!(nproc_of(&prog), Some(12));
    }

    #[test]
    fn nproc_from_expression() {
        let prog =
            fsr_lang::compile("param NPROC = 8; fn main() { forall p in 1 .. NPROC - 1 { } }")
                .unwrap();
        assert_eq!(nproc_of(&prog), Some(6));
    }

    #[test]
    fn analyze_end_to_end() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC]; shared lock lk;
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); c[p] = c[p] + 1; unlock(lk);
             } }",
        )
        .unwrap();
        let a = analyze(&prog).unwrap();
        assert_eq!(a.nproc, 4);
        assert!(a.total_weight > 0.0);
        let (lk, _) = prog.object_by_name("lk").unwrap();
        // Lock accesses are classified too (shared writes).
        let lkc = a.class_for(lk, None).unwrap();
        assert_eq!(lkc.write.pattern, Pattern::Shared);
    }
}
