//! Sharing-pattern classification: the bridge from raw access summaries
//! to transformation decisions.
//!
//! For every accessed (object, field) pair the classifier decides, for
//! reads and writes separately, whether the access pattern is
//! *per-process* (pairwise disjoint regular sections across distinct
//! pids), *one-process*, or *shared*, and whether it exhibits spatial
//! locality (dominant unit stride). For per-process writes it derives the
//! *owner map* — the function from element index to owning process — that
//! group & transpose needs, and records when disjointness rests on the
//! partition-array assumption (validated against barrier phases).

use crate::section::{ProcCond, Rsd, Section};
use crate::summary::{FinalAccess, ProgramSummary};
use fsr_lang::ast::{FieldId, ObjId, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Maximum regular section descriptors kept per (object, field, kind)
/// before merging — the paper keeps "a small preset limit" and reports
/// that no benchmark array needed more than 10.
pub const MAX_DESCRIPTORS: usize = 10;

/// How element indices map to owning processes, for transposable
/// per-process data. All variants are derived from the write descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OwnerMap {
    /// A (possibly minor) array dimension equals the pid: `a[i][p]` or
    /// `a[p]`.
    Dim { dim: usize },
    /// Blocked 1-D decomposition `a[p*chunk .. (p+1)*chunk]`.
    Chunk { chunk: i64 },
    /// Cyclic 1-D decomposition `a[i*stride + p + base]`.
    Interleave { stride: i64, base: i64 },
}

impl OwnerMap {
    /// Owning process of a flattened element index (row-major), for an
    /// object with the given dims.
    pub fn owner(&self, flat: u64, dims: &[u32], nproc: i64) -> i64 {
        match *self {
            OwnerMap::Dim { dim } => {
                let (d0, d1) = match dims.len() {
                    0 => (1u64, 1u64),
                    1 => (dims[0] as u64, 1),
                    _ => (dims[0] as u64, dims[1] as u64),
                };
                let _ = d0;
                let idx = if dims.len() <= 1 {
                    flat
                } else if dim == 0 {
                    flat / d1
                } else {
                    flat % d1
                };
                (idx as i64).min(nproc - 1)
            }
            OwnerMap::Chunk { chunk } => ((flat as i64) / chunk.max(1)).min(nproc - 1),
            OwnerMap::Interleave { stride, base } => {
                (((flat as i64) - base).rem_euclid(stride.max(1))).min(nproc - 1)
            }
        }
    }
}

/// Access pattern of one side (reads or writes) of an (object, field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Pattern {
    /// No accesses of this kind.
    None,
    /// All accesses from a single process.
    OneProc,
    /// Pairwise disjoint across distinct processes.
    PerProcess,
    /// Overlapping across processes.
    Shared,
}

/// Summary of one access kind for a data structure.
#[derive(Debug, Clone)]
pub struct SideSummary {
    pub pattern: Pattern,
    pub weight: f64,
    /// Weight-dominant unit-stride fraction: 1.0 = all accesses are
    /// sequential unit-stride (spatial locality present).
    pub unit_stride_frac: f64,
    pub rsds: Vec<Rsd>,
    /// The descriptors that defined `pattern` (initialization-epoch
    /// descriptors excluded); owner maps are derived from these.
    pub pattern_rsds: Vec<Rsd>,
}

impl SideSummary {
    fn empty() -> SideSummary {
        SideSummary {
            pattern: Pattern::None,
            weight: 0.0,
            unit_stride_frac: 0.0,
            rsds: Vec::new(),
            pattern_rsds: Vec::new(),
        }
    }

    /// Spatial locality = most of the access weight is unit stride.
    pub fn has_spatial_locality(&self) -> bool {
        self.unit_stride_frac >= 0.5
    }
}

/// Classification of one (object, field) data structure.
#[derive(Debug, Clone)]
pub struct AccessClass {
    pub obj: ObjId,
    pub field: Option<FieldId>,
    pub read: SideSummary,
    pub write: SideSummary,
    /// Owner map when writes are per-process and statically transposable.
    pub owner_map: Option<OwnerMap>,
    /// Disjointness relies on the (validated) partition-array assumption.
    pub partition_assumed: bool,
}

impl AccessClass {
    pub fn total_weight(&self) -> f64 {
        self.read.weight + self.write.weight
    }
}

/// The complete analysis result handed to the transformation heuristics.
#[derive(Debug)]
pub struct Analysis {
    pub nproc: i64,
    pub classes: Vec<AccessClass>,
    pub total_weight: f64,
    pub summary: ProgramSummary,
    /// Partition arrays whose setup-before-use assumption was validated.
    pub validated_partitions: BTreeSet<ObjId>,
}

impl Analysis {
    pub fn class_for(&self, obj: ObjId, field: Option<FieldId>) -> Option<&AccessClass> {
        self.classes
            .iter()
            .find(|c| c.obj == obj && c.field == field)
    }
}

/// Classify a program summary.
pub fn classify(prog: &Program, summary: ProgramSummary, nproc: i64) -> Analysis {
    // 1. Validate partition arrays: every object used as a symbolic bound
    //    must have all its writes strictly before the phases of the
    //    accesses that rely on it.
    let mut partition_candidates: BTreeMap<ObjId, crate::phase::PhaseSpan> = BTreeMap::new();
    for acc in &summary.accesses {
        for sec in &acc.rsd.sections {
            for arr in sec.partition_arrays() {
                partition_candidates
                    .entry(arr)
                    .and_modify(|p| *p = p.join(acc.rsd.phase))
                    .or_insert(acc.rsd.phase);
            }
        }
    }
    let mut validated_partitions = BTreeSet::new();
    for (&arr, &use_phase) in &partition_candidates {
        match summary.write_phases.get(&arr) {
            None => {
                // Never written: trivially stable (all zeros — degenerate
                // but stable).
                validated_partitions.insert(arr);
            }
            Some(wp) => {
                if wp.strictly_before(use_phase) {
                    validated_partitions.insert(arr);
                }
            }
        }
    }

    // 2. Group accesses by (obj, field, is_write).
    let mut by_key: BTreeMap<(ObjId, Option<FieldId>, bool), Vec<Rsd>> = BTreeMap::new();
    let mut total_weight = 0.0;
    for FinalAccess {
        obj,
        field,
        is_write,
        rsd,
        ..
    } in &summary.accesses
    {
        total_weight += rsd.weight;
        by_key
            .entry((*obj, *field, *is_write))
            .or_default()
            .push(rsd.clone());
    }

    // 3. Build classes.
    let mut keys: BTreeSet<(ObjId, Option<FieldId>)> = BTreeSet::new();
    for (obj, field, _) in by_key.keys() {
        keys.insert((*obj, *field));
    }
    let mut classes = Vec::new();
    for (obj, field) in keys {
        let dims = &prog.object(obj).dims;
        let writes = by_key.get(&(obj, field, true)).cloned().unwrap_or_default();
        let reads = by_key
            .get(&(obj, field, false))
            .cloned()
            .unwrap_or_default();
        let writes = limit_descriptors(writes);
        let reads = limit_descriptors(reads);
        let (wsum, w_assumed) = side_summary(&writes, dims, nproc, &validated_partitions);
        let (rsum, r_assumed) = side_summary(&reads, dims, nproc, &validated_partitions);
        let owner_map = if wsum.pattern == Pattern::PerProcess {
            derive_owner_map(&wsum.pattern_rsds, dims, nproc)
        } else {
            None
        };
        classes.push(AccessClass {
            obj,
            field,
            read: rsum,
            write: wsum,
            owner_map,
            partition_assumed: w_assumed || r_assumed,
        });
    }
    Analysis {
        nproc,
        classes,
        total_weight,
        summary,
        validated_partitions,
    }
}

/// Enforce the descriptor limit by merging the lightest descriptors.
fn limit_descriptors(mut rsds: Vec<Rsd>) -> Vec<Rsd> {
    // First coalesce *identical-section* descriptors (common: the same
    // statement read and reread).
    let mut merged: Vec<Rsd> = Vec::new();
    for r in rsds.drain(..) {
        if let Some(m) = merged
            .iter_mut()
            .find(|m| m.sections == r.sections && m.procs == r.procs)
        {
            m.weight += r.weight;
            m.phase = m.phase.join(r.phase);
            if m.inner_stride != r.inner_stride {
                m.inner_stride = None;
            }
            continue;
        }
        merged.push(r);
    }
    while merged.len() > MAX_DESCRIPTORS {
        // Merge the two lightest descriptors.
        merged.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        let b = merged.pop().unwrap();
        let a = merged.pop().unwrap();
        merged.push(merge_rsds(a, b));
    }
    merged
}

fn merge_rsds(a: Rsd, b: Rsd) -> Rsd {
    let sections = a
        .sections
        .iter()
        .zip(&b.sections)
        .map(|(x, y)| crate::section::merge_sections(x, y))
        .collect();
    Rsd {
        sections,
        weight: a.weight + b.weight,
        phase: a.phase.join(b.phase),
        procs: if a.procs == b.procs {
            a.procs
        } else {
            ProcCond::All
        },
        inner_stride: if a.inner_stride == b.inner_stride {
            a.inner_stride
        } else {
            None
        },
    }
}

/// Classify one side; returns the summary and whether per-process-ness
/// relied on the partition assumption.
fn side_summary(
    rsds: &[Rsd],
    dims: &[u32],
    nproc: i64,
    validated: &BTreeSet<ObjId>,
) -> (SideSummary, bool) {
    if rsds.is_empty() {
        return (SideSummary::empty(), false);
    }
    let weight: f64 = rsds.iter().map(|r| r.weight).sum();
    let unit_w: f64 = rsds
        .iter()
        .filter(|r| r.inner_stride == Some(1))
        .map(|r| r.weight)
        .sum();
    let unit_stride_frac = if weight > 0.0 { unit_w / weight } else { 0.0 };

    // Single-process?
    let single = rsds.iter().all(|r| matches!(r.procs, ProcCond::One(_)))
        && rsds.windows(2).all(|w| w[0].procs == w[1].procs);
    if single {
        return (
            SideSummary {
                pattern: Pattern::OneProc,
                weight,
                unit_stride_frac,
                rsds: rsds.to_vec(),
                pattern_rsds: rsds.to_vec(),
            },
            false,
        );
    }

    // Dominant-pattern rule (stage-2 non-concurrency analysis): a
    // single-process *initialization epoch* — descriptors performed by
    // one process in phases strictly before every other descriptor —
    // does not define the sharing pattern the data should be restructured
    // for: it can cause at most one round of cold/true-sharing misses,
    // never recurring false sharing. Exclude such descriptors from the
    // disjointness test (they still count toward weights).
    let is_init = |r: &Rsd| -> bool {
        matches!(r.procs, ProcCond::One(_))
            && rsds
                .iter()
                .filter(|o| !matches!(o.procs, ProcCond::One(_)))
                .all(|o| r.phase.strictly_before(o.phase))
    };
    let dominant: Vec<&Rsd> = if rsds.iter().any(|r| !is_init(r)) {
        rsds.iter().filter(|r| !is_init(r)).collect()
    } else {
        rsds.iter().collect()
    };

    // Are the symbolic partition arrays involved all validated? If not,
    // the assumption may not be used.
    let all_partitions_valid = dominant.iter().all(|r| {
        r.sections
            .iter()
            .flat_map(|s| s.partition_arrays())
            .all(|a| validated.contains(&a))
    });

    let disjoint_with = |assume: bool| -> bool {
        for a in &dominant {
            for b in &dominant {
                for p in 0..nproc {
                    for q in 0..nproc {
                        if p != q && a.overlaps_for(p, b, q, dims, assume) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    };

    let (pattern, assumed) = if disjoint_with(false) {
        (Pattern::PerProcess, false)
    } else if all_partitions_valid && disjoint_with(true) {
        (Pattern::PerProcess, true)
    } else {
        (Pattern::Shared, false)
    };
    let pattern_rsds: Vec<Rsd> = dominant.iter().map(|r| (*r).clone()).collect();
    (
        SideSummary {
            pattern,
            weight,
            unit_stride_frac,
            rsds: rsds.to_vec(),
            pattern_rsds,
        },
        assumed,
    )
}

/// Derive the owner map from per-process write descriptors.
fn derive_owner_map(writes: &[Rsd], dims: &[u32], nproc: i64) -> Option<OwnerMap> {
    use crate::section::Bound;

    // Dim case: some dimension is Elem(pid) in every descriptor.
    'dims: for (d, &dim) in dims.iter().enumerate() {
        for r in writes {
            match &r.sections[d] {
                Section::Elem(Bound::Lin(l)) if l.is_exactly_pdv() => {}
                _ => continue 'dims,
            }
        }
        if dim as i64 >= nproc {
            return Some(OwnerMap::Dim { dim: d });
        }
    }

    if dims.len() != 1 {
        return None;
    }

    // Chunk case: Range{lo = a·pid, hi = a·pid + k, stride 1} with k < a.
    let mut chunk: Option<i64> = None;
    let mut all_chunk = true;
    for r in writes {
        match &r.sections[0] {
            Section::Range {
                lo: Bound::Lin(lo),
                hi: Bound::Lin(hi),
                stride: 1,
            } if lo.is_pdv_affine() && hi.is_pdv_affine() => {
                let a = lo.pdv_coef();
                if a <= 0 || lo.c0 != 0 || hi.pdv_coef() != a || hi.c0 >= a || hi.c0 < 0 {
                    all_chunk = false;
                    break;
                }
                match chunk {
                    None => chunk = Some(a),
                    Some(c) if c == a => {}
                    _ => {
                        all_chunk = false;
                        break;
                    }
                }
            }
            Section::Elem(Bound::Lin(l)) if l.is_pdv_affine() && l.pdv_coef() > 0 => {
                // A point inside a chunk: compatible when coef matches and
                // offset is within the chunk.
                let a = l.pdv_coef();
                if l.c0 < 0 || l.c0 >= a {
                    all_chunk = false;
                    break;
                }
                match chunk {
                    None => chunk = Some(a),
                    Some(c) if c == a => {}
                    _ => {
                        all_chunk = false;
                        break;
                    }
                }
            }
            _ => {
                all_chunk = false;
                break;
            }
        }
    }
    if all_chunk {
        if let Some(c) = chunk {
            return Some(OwnerMap::Chunk { chunk: c });
        }
    }

    // Interleave case: Range{lo = pid + base, stride = s} for all.
    let mut inter: Option<(i64, i64)> = None;
    for r in writes {
        match &r.sections[0] {
            Section::Range {
                lo: Bound::Lin(lo),
                stride,
                ..
            } if lo.pdv_coef() == 1 && *stride >= nproc => {
                let key = (*stride, lo.c0);
                match inter {
                    None => inter = Some(key),
                    Some(k) if k == key => {}
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
    inter.map(|(stride, base)| OwnerMap::Interleave { stride, base })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, summary};

    fn analyze(src: &str) -> (fsr_lang::Program, Analysis) {
        let prog = fsr_lang::compile(src).unwrap();
        let g = callgraph::build(&prog).unwrap();
        let s = summary::summarize(&prog, &g).unwrap();
        let nproc = prog.param_value("NPROC").unwrap_or(4);
        let a = classify(&prog, s, nproc);
        (prog, a)
    }

    fn class<'a>(prog: &fsr_lang::Program, a: &'a Analysis, name: &str) -> &'a AccessClass {
        let (oid, _) = prog.object_by_name(name).unwrap();
        a.class_for(oid, None).expect("class exists")
    }

    #[test]
    fn per_proc_vector_is_dim_owned() {
        let (p, a) = analyze(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 100 { c[p] = c[p] + 1; } } }",
        );
        let c = class(&p, &a, "c");
        assert_eq!(c.write.pattern, Pattern::PerProcess);
        assert_eq!(c.read.pattern, Pattern::PerProcess);
        assert_eq!(c.owner_map, Some(OwnerMap::Dim { dim: 0 }));
        assert!(!c.partition_assumed);
    }

    #[test]
    fn transposed_2d_is_minor_dim_owned() {
        let (p, a) = analyze(
            "param NPROC = 4; shared int hist[64][NPROC];
             fn main() { forall p in 0 .. NPROC { var i; for i in 0 .. 64 {
                 hist[i][p] = hist[i][p] + 1; } } }",
        );
        let c = class(&p, &a, "hist");
        assert_eq!(c.write.pattern, Pattern::PerProcess);
        assert_eq!(c.owner_map, Some(OwnerMap::Dim { dim: 1 }));
    }

    #[test]
    fn chunked_owner_map() {
        let (p, a) = analyze(
            "param NPROC = 4; const CH = 16; shared int d[64];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in p * CH .. p * CH + CH { d[i] = 1; } } }",
        );
        let c = class(&p, &a, "d");
        assert_eq!(c.write.pattern, Pattern::PerProcess);
        assert_eq!(c.owner_map, Some(OwnerMap::Chunk { chunk: 16 }));
    }

    #[test]
    fn interleaved_owner_map() {
        let (p, a) = analyze(
            "param NPROC = 4; shared int d[64];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 16 { d[i * NPROC + p] = 1; } } }",
        );
        let c = class(&p, &a, "d");
        assert_eq!(c.write.pattern, Pattern::PerProcess);
        assert_eq!(
            c.owner_map,
            Some(OwnerMap::Interleave { stride: 4, base: 0 })
        );
    }

    #[test]
    fn shared_scalar_is_shared() {
        let (p, a) = analyze(
            "param NPROC = 4; shared int total; shared lock lk;
             fn main() { forall p in 0 .. NPROC {
                 lock(lk); total = total + 1; unlock(lk); } }",
        );
        let c = class(&p, &a, "total");
        assert_eq!(c.write.pattern, Pattern::Shared);
        assert_eq!(c.read.pattern, Pattern::Shared);
        assert!(c.owner_map.is_none());
    }

    #[test]
    fn partition_assumption_validated_by_phases() {
        // Partition arrays written in the serial prologue (phase 0),
        // used in the parallel phase — valid.
        let (p, a) = analyze(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 var q;
                 for q in 0 .. NPROC + 1 { first[q] = q * 64; }
                 forall p in 0 .. NPROC {
                     var i;
                     for i in first[p] .. first[p + 1] { d[i] = 1; }
                 }
             }",
        );
        let c = class(&p, &a, "d");
        assert_eq!(c.write.pattern, Pattern::PerProcess);
        assert!(c.partition_assumed);
        let (fid, _) = p.object_by_name("first").unwrap();
        assert!(a.validated_partitions.contains(&fid));
    }

    #[test]
    fn revolving_partition_fails_validation() {
        // The partition is rewritten every outer iteration *in the same
        // phases* it is used — the Topopt pattern the static analysis
        // cannot prove disjoint.
        let (p, a) = analyze(
            "param NPROC = 4; shared int first[NPROC + 1]; shared int d[256];
             fn main() {
                 forall p in 0 .. NPROC {
                     var t; var i;
                     for t in 0 .. 10 {
                         if (p == 0) {
                             var q;
                             for q in 0 .. NPROC + 1 { first[q] = (q * 64 + t) % 256; }
                         }
                         barrier;
                         for i in first[p] .. first[p + 1] { d[i] = 1; }
                         barrier;
                     }
                 }
             }",
        );
        let c = class(&p, &a, "d");
        // Cannot prove disjoint: remains Shared.
        assert_eq!(c.write.pattern, Pattern::Shared);
        let (fid, _) = p.object_by_name("first").unwrap();
        assert!(!a.validated_partitions.contains(&fid));
    }

    #[test]
    fn one_proc_writer_detected() {
        let (p, a) = analyze(
            "param NPROC = 4; shared int flag;
             fn main() { forall p in 0 .. NPROC {
                 if (p == 0) { flag = 1; }
                 var v = flag;
             } }",
        );
        let c = class(&p, &a, "flag");
        assert_eq!(c.write.pattern, Pattern::OneProc);
        assert_eq!(c.read.pattern, Pattern::Shared);
    }

    #[test]
    fn unit_stride_fraction_reflects_loops() {
        let (p, a) = analyze(
            "param NPROC = 4; shared int d[256];
             fn main() { forall p in 0 .. NPROC {
                 var i;
                 for i in 0 .. 256 { d[i] = d[i] + 1; }
             } }",
        );
        let c = class(&p, &a, "d");
        assert!(c.write.has_spatial_locality());
        assert!(c.read.has_spatial_locality());
        assert_eq!(c.write.pattern, Pattern::Shared);
    }

    #[test]
    fn descriptor_limit_merges() {
        // 12 distinct point accesses to one array exceed the limit.
        let mut src = String::from(
            "param NPROC = 2; shared int d[64];
             fn main() { forall p in 0 .. NPROC {\n",
        );
        for k in 0..12 {
            src.push_str(&format!("d[{}] = 1;\n", k * 3));
        }
        src.push_str("} }");
        let (p, a) = analyze(&src);
        let c = class(&p, &a, "d");
        assert!(c.write.rsds.len() <= MAX_DESCRIPTORS);
        assert_eq!(c.write.pattern, Pattern::Shared);
    }

    #[test]
    fn owner_map_owner_function() {
        let m = OwnerMap::Dim { dim: 1 };
        // dims [8][4]: flat = i*4 + p
        assert_eq!(m.owner(0, &[8, 4], 4), 0);
        assert_eq!(m.owner(5, &[8, 4], 4), 1);
        assert_eq!(m.owner(7, &[8, 4], 4), 3);
        let c = OwnerMap::Chunk { chunk: 16 };
        assert_eq!(c.owner(0, &[64], 4), 0);
        assert_eq!(c.owner(31, &[64], 4), 1);
        assert_eq!(c.owner(63, &[64], 4), 3);
        let i = OwnerMap::Interleave { stride: 4, base: 0 };
        assert_eq!(i.owner(0, &[64], 4), 0);
        assert_eq!(i.owner(5, &[64], 4), 1);
        assert_eq!(i.owner(7, &[64], 4), 3);
    }

    #[test]
    fn field_level_classes_for_structs() {
        let (p, a) = analyze(
            "param NPROC = 4; struct N { int v; int w; } shared N nodes[16];
             fn main() { forall p in 0 .. NPROC {
                 nodes[p].v = 1;
                 nodes[prand(p) % 16].w = 2;
             } }",
        );
        let (oid, _) = p.object_by_name("nodes").unwrap();
        let v = a.class_for(oid, Some(FieldId(0))).unwrap();
        let w = a.class_for(oid, Some(FieldId(1))).unwrap();
        assert_eq!(v.write.pattern, Pattern::PerProcess);
        assert_eq!(w.write.pattern, Pattern::Shared);
    }
}
