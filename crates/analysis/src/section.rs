//! Bounded regular section descriptors (RSDs) and their algebra.
//!
//! Following Havlak & Kennedy, a bounded regular section descriptor
//! describes the portion of an array a piece of code accesses, one
//! [`Section`] per dimension. PSL's descriptors carry affine bounds over
//! the PDV ([`crate::lin::Lin`]) and *opaque per-process symbols*
//! ([`Bound::Sym`]) for partition-array patterns like
//! `for i in first[pid] .. last[pid]`.
//!
//! Disjointness of two descriptors across distinct process ids — the key
//! question for per-process write detection — is decided *exactly* for
//! affine bounds by brute-force evaluation over all pid pairs (process
//! counts are small) with exact intersection of arithmetic progressions,
//! and *by assumption* for symbolic partition bounds (validated separately
//! by phase analysis; see `crate::classify`).
//!
//! Sections that degrade to [`Section::Unknown`] (data-dependent or
//! non-affine indices) are not the end of the road: the race pass
//! re-judges such points with the relational index domain
//! ([`crate::rel`]), which tracks congruences and value ranges the RSD
//! algebra cannot express.

use crate::lin::Lin;
use crate::phase::PhaseSpan;
use std::fmt;

/// A scalar position within one array dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// Affine in the PDV.
    Lin(Lin),
    /// The run-time value of partition array element `arr[idx] + off`.
    /// After full interprocedural substitution `idx` must be exactly the
    /// PDV for the bound to participate in partition-disjointness
    /// reasoning; otherwise the enclosing section degrades to `Unknown`.
    Sym {
        arr: fsr_lang::ast::ObjId,
        idx: Lin,
        off: i64,
    },
}

impl Bound {
    pub fn constant(c: i64) -> Bound {
        Bound::Lin(Lin::constant(c))
    }

    /// Evaluate for a concrete pid; `None` for symbolic bounds.
    pub fn eval(&self, pid: i64) -> Option<i64> {
        match self {
            Bound::Lin(l) => l.eval_pdv(pid),
            Bound::Sym { .. } => None,
        }
    }

    pub fn depends_on_pdv(&self) -> bool {
        match self {
            Bound::Lin(l) => l.depends_on_pdv(),
            Bound::Sym { .. } => true,
        }
    }
}

/// The accessed portion of one array dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Section {
    /// A single element.
    Elem(Bound),
    /// An inclusive strided range `lo, lo+stride, .., <= hi`.
    Range { lo: Bound, hi: Bound, stride: i64 },
    /// The entire dimension (unit stride assumed).
    All,
    /// Statically unanalyzable positions.
    Unknown,
}

impl Section {
    /// Whether the section's position varies with the PDV.
    pub fn depends_on_pdv(&self) -> bool {
        match self {
            Section::Elem(b) => b.depends_on_pdv(),
            Section::Range { lo, hi, .. } => lo.depends_on_pdv() || hi.depends_on_pdv(),
            Section::All | Section::Unknown => false,
        }
    }

    /// Whether both symbolic partition bounds come from the same array
    /// (the "assumed disjoint" candidate shape).
    pub fn partition_arrays(&self) -> Vec<fsr_lang::ast::ObjId> {
        let mut v = Vec::new();
        let mut push = |b: &Bound| {
            if let Bound::Sym { arr, .. } = b {
                v.push(*arr);
            }
        };
        match self {
            Section::Elem(b) => push(b),
            Section::Range { lo, hi, .. } => {
                push(lo);
                push(hi);
            }
            _ => {}
        }
        v
    }

    /// Concrete index set for process `pid` within a dimension of extent
    /// `dim`, as a strided inclusive range. `None` means "cannot evaluate"
    /// (symbolic / unknown): callers treat it per policy.
    pub fn concretize(&self, pid: i64, dim: i64) -> Concrete {
        match self {
            Section::Elem(b) => match b.eval(pid) {
                Some(v) => Concrete::Progression {
                    lo: v,
                    hi: v,
                    stride: 1,
                },
                None => Concrete::Symbolic,
            },
            Section::Range { lo, hi, stride } => match (lo.eval(pid), hi.eval(pid)) {
                (Some(l), Some(h)) => {
                    if l > h {
                        Concrete::Empty
                    } else {
                        Concrete::Progression {
                            lo: l,
                            hi: h,
                            stride: (*stride).max(1),
                        }
                    }
                }
                _ => Concrete::Symbolic,
            },
            Section::All => Concrete::Progression {
                lo: 0,
                hi: dim - 1,
                stride: 1,
            },
            Section::Unknown => Concrete::Opaque,
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = |b: &Bound| match b {
            Bound::Lin(l) => l.to_string(),
            Bound::Sym { arr, idx, off } => {
                if *off == 0 {
                    format!("<obj{}[{}]>", arr.0, idx)
                } else {
                    format!("<obj{}[{}]>{off:+}", arr.0, idx)
                }
            }
        };
        match self {
            Section::Elem(e) => write!(f, "[{}]", b(e)),
            Section::Range { lo, hi, stride } => {
                if *stride == 1 {
                    write!(f, "[{}:{}]", b(lo), b(hi))
                } else {
                    write!(f, "[{}:{}:{}]", b(lo), b(hi), stride)
                }
            }
            Section::All => write!(f, "[*]"),
            Section::Unknown => write!(f, "[?]"),
        }
    }
}

/// Concrete evaluation of a section for one pid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Concrete {
    Empty,
    /// `lo, lo+stride, ..., <= hi` (inclusive, stride >= 1).
    Progression {
        lo: i64,
        hi: i64,
        stride: i64,
    },
    /// Symbolic partition bounds — not evaluatable.
    Symbolic,
    /// Statically unknown positions — assume anything.
    Opaque,
}

impl Concrete {
    /// Whether the evaluation produced an exact index set (so overlap
    /// against another exact set is decidable). `Symbolic` and `Opaque`
    /// evaluations leave the verdict to the relational domain.
    pub fn is_exact(&self) -> bool {
        matches!(self, Concrete::Empty | Concrete::Progression { .. })
    }
}

/// Exact emptiness test for the intersection of two arithmetic
/// progressions `{lo1 + k·s1 ≤ hi1}` and `{lo2 + k·s2 ≤ hi2}`.
pub fn progressions_intersect(lo1: i64, hi1: i64, s1: i64, lo2: i64, hi2: i64, s2: i64) -> bool {
    if lo1 > hi1 || lo2 > hi2 {
        return false;
    }
    let lo = lo1.max(lo2);
    let hi = hi1.min(hi2);
    if lo > hi {
        return false;
    }
    // Solve lo1 + a·s1 = lo2 + b·s2 (mod): a value x ≡ lo1 (mod s1) and
    // x ≡ lo2 (mod s2) exists iff (lo2 - lo1) divisible by gcd(s1, s2);
    // then the common values form a progression with stride lcm(s1, s2)
    // starting at the smallest solution ≥ max(lo1, lo2).
    let g = gcd(s1, s2);
    if (lo2 - lo1) % g != 0 {
        return false;
    }
    // CRT: the common values form a progression with stride lcm(s1, s2).
    let (x0, l) = crt(lo1, s1, lo2, s2).expect("divisibility checked");
    // Smallest member of the combined progression that is >= lo
    // (x ≡ x0 (mod l) and x >= lo).
    let first = lo + (x0 - lo).rem_euclid(l);
    first <= hi
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Chinese remainder for x ≡ r1 (mod s1), x ≡ r2 (mod s2).
/// Returns (x0, lcm) with x0 the smallest non-negative-ish solution.
fn crt(r1: i64, s1: i64, r2: i64, s2: i64) -> Option<(i64, i64)> {
    let (g, p, _q) = ext_gcd(s1, s2);
    if (r2 - r1) % g != 0 {
        return None;
    }
    let l = s1 / g * s2;
    let diff = (r2 - r1) / g;
    // x = r1 + s1 * p * diff (mod l)
    let x = r1 as i128 + (s1 as i128) * (p as i128 % (s2 / g) as i128) * (diff as i128);
    let l128 = l as i128;
    let x0 = ((x % l128) + l128) % l128;
    Some((x0 as i64, l))
}

fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Do the concrete sections of two processes overlap? `symbolic_disjoint`
/// states whether symbolic partition bounds may be assumed disjoint
/// across distinct pids.
pub fn concrete_overlap(a: Concrete, b: Concrete, symbolic_disjoint: bool) -> bool {
    use Concrete::*;
    match (a, b) {
        (Empty, _) | (_, Empty) => false,
        (Symbolic, Symbolic) => !symbolic_disjoint,
        // A symbolic partition range vs anything concrete: unknown extent,
        // assume overlap (conservative).
        (Symbolic, _) | (_, Symbolic) => true,
        (Opaque, _) | (_, Opaque) => true,
        (
            Progression {
                lo: l1,
                hi: h1,
                stride: s1,
            },
            Progression {
                lo: l2,
                hi: h2,
                stride: s2,
            },
        ) => progressions_intersect(l1, h1, s1, l2, h2, s2),
    }
}

/// Which processes perform an access (stage-1 per-process control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcCond {
    /// All processes execute the access.
    All,
    /// Only the process with `pid == c`.
    One(i64),
}

impl ProcCond {
    pub fn includes(&self, pid: i64) -> bool {
        match self {
            ProcCond::All => true,
            ProcCond::One(c) => *c == pid,
        }
    }

    /// Number of processes covered.
    pub fn count(&self, nproc: i64) -> i64 {
        match self {
            ProcCond::All => nproc,
            ProcCond::One(_) => 1,
        }
    }
}

/// One weighted regular section descriptor: the per-dimension sections,
/// the estimated execution weight (static profiling), the phase span in
/// which the access occurs, and the set of processes that perform it.
#[derive(Debug, Clone)]
pub struct Rsd {
    pub sections: Vec<Section>,
    pub weight: f64,
    pub phase: PhaseSpan,
    pub procs: ProcCond,
    /// Innermost-loop stride of the access in flattened element units
    /// (None = not in a loop or unknown). Used by spatial-locality
    /// heuristics.
    pub inner_stride: Option<i64>,
}

impl Rsd {
    /// Does this descriptor (performed by process `p`) overlap `other`
    /// (performed by process `q`) on an array with extents `dims`?
    ///
    /// Descriptors overlap iff *every* dimension overlaps.
    pub fn overlaps_for(
        &self,
        p: i64,
        other: &Rsd,
        q: i64,
        dims: &[u32],
        symbolic_disjoint: bool,
    ) -> bool {
        if !self.procs.includes(p) || !other.procs.includes(q) {
            return false;
        }
        debug_assert_eq!(self.sections.len(), other.sections.len());
        self.sections
            .iter()
            .zip(&other.sections)
            .zip(dims.iter().map(|&d| d as i64).chain(std::iter::repeat(1)))
            .all(|((sa, sb), dim)| {
                concrete_overlap(
                    sa.concretize(p, dim),
                    sb.concretize(q, dim),
                    symbolic_disjoint,
                )
            })
    }

    /// Render with the program's object names for reports.
    pub fn render(&self) -> String {
        let secs: String = self.sections.iter().map(|s| s.to_string()).collect();
        let proc = match self.procs {
            ProcCond::All => String::new(),
            ProcCond::One(c) => format!(" @pid={c}"),
        };
        format!("{secs} w={:.1} ph={}{proc}", self.weight, self.phase)
    }
}

/// Merge two sections into one covering both (used when the descriptor
/// limit is exceeded). Loses precision monotonically.
pub fn merge_sections(a: &Section, b: &Section) -> Section {
    use Section::*;
    if a == b {
        return a.clone();
    }
    match (a, b) {
        (Unknown, _) | (_, Unknown) => Unknown,
        (All, _) | (_, All) => All,
        (Elem(Bound::Lin(x)), Elem(Bound::Lin(y))) => {
            // Two affine points merge into a range when their difference
            // is constant; otherwise give up.
            let d = y.sub(x);
            match d.as_constant() {
                Some(k) if k >= 0 => Range {
                    lo: Bound::Lin(x.clone()),
                    hi: Bound::Lin(y.clone()),
                    stride: k.max(1),
                },
                Some(_) => Range {
                    lo: Bound::Lin(y.clone()),
                    hi: Bound::Lin(x.clone()),
                    stride: (x.sub(y)).as_constant().unwrap_or(1).max(1),
                },
                None => Unknown,
            }
        }
        (
            Range {
                lo: l1,
                hi: h1,
                stride: s1,
            },
            Range {
                lo: l2,
                hi: h2,
                stride: s2,
            },
        ) => {
            // Merge ranges with affine bounds. The merged stride must
            // divide both strides *and* the phase offset between the two
            // anchors, or members of one input fall between the merged
            // progression's members.
            if let (Bound::Lin(l1), Bound::Lin(h1), Bound::Lin(l2), Bound::Lin(h2)) =
                (l1, h1, l2, h2)
            {
                let Some(phase) = l2.sub(l1).as_constant() else {
                    return Unknown;
                };
                let lo = if phase >= 0 { l1.clone() } else { l2.clone() };
                let hi = if h1.sub(h2).as_constant().map(|c| c >= 0) == Some(true) {
                    h1.clone()
                } else if h2.sub(h1).as_constant().is_some() {
                    h2.clone()
                } else {
                    return Unknown;
                };
                let stride = gcd(gcd(*s1, *s2), phase);
                Range {
                    lo: Bound::Lin(lo),
                    hi: Bound::Lin(hi),
                    stride,
                }
            } else {
                Unknown
            }
        }
        (Elem(e), r @ Range { .. }) | (r @ Range { .. }, Elem(e)) => {
            // Fold the element into the range when possible.
            merge_sections(
                &Range {
                    lo: e.clone(),
                    hi: e.clone(),
                    stride: 1,
                },
                r,
            )
        }
        _ => Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseSpan;

    fn lin(c0: i64, pdv: i64) -> Bound {
        Bound::Lin(Lin::pdv().scale(pdv).add(&Lin::constant(c0)))
    }

    #[test]
    fn progression_intersection_basics() {
        // Even vs odd never intersect.
        assert!(!progressions_intersect(0, 100, 2, 1, 101, 2));
        // Even vs even intersect.
        assert!(progressions_intersect(0, 100, 2, 50, 200, 2));
        // Disjoint intervals.
        assert!(!progressions_intersect(0, 9, 1, 10, 19, 1));
        // Touching.
        assert!(progressions_intersect(0, 10, 1, 10, 19, 1));
        // Stride 3 vs stride 5 meet at 15 given offsets 0.
        assert!(progressions_intersect(0, 20, 3, 0, 20, 5));
        // 1 mod 3 vs 2 mod 3: never.
        assert!(!progressions_intersect(1, 100, 3, 2, 100, 3));
        // CRT case: x ≡ 2 (mod 4), x ≡ 0 (mod 6) → x ≡ 6 (mod 12): in range?
        assert!(progressions_intersect(2, 20, 4, 0, 20, 6));
        assert!(!progressions_intersect(2, 5, 4, 0, 5, 6)); // first common is 6
    }

    #[test]
    fn progression_empty_ranges() {
        assert!(!progressions_intersect(5, 4, 1, 0, 10, 1));
    }

    #[test]
    fn elem_pdv_disjoint_across_pids() {
        // a[pid] for p vs q: disjoint.
        let s = Section::Elem(lin(0, 1));
        let a = s.concretize(0, 16);
        let b = s.concretize(1, 16);
        assert!(!concrete_overlap(a, b, false));
        // same pid overlaps itself
        assert!(concrete_overlap(a, s.concretize(0, 16), false));
    }

    #[test]
    fn chunked_ranges_disjoint() {
        // a[4p .. 4p+3]
        let s = Section::Range {
            lo: lin(0, 4),
            hi: lin(3, 4),
            stride: 1,
        };
        assert!(!concrete_overlap(
            s.concretize(0, 64),
            s.concretize(1, 64),
            false
        ));
        assert!(concrete_overlap(
            s.concretize(2, 64),
            s.concretize(2, 64),
            false
        ));
    }

    #[test]
    fn interleaved_strided_disjoint() {
        // a[p], a[p+P], ... : lo=p, hi=big, stride=P (P=4)
        let s = Section::Range {
            lo: lin(0, 1),
            hi: Bound::constant(63),
            stride: 4,
        };
        assert!(!concrete_overlap(
            s.concretize(0, 64),
            s.concretize(3, 64),
            false
        ));
        assert!(concrete_overlap(
            s.concretize(1, 64),
            s.concretize(1, 64),
            false
        ));
    }

    #[test]
    fn all_overlaps_everything_concrete() {
        let all = Section::All.concretize(0, 16);
        let e = Section::Elem(lin(3, 0)).concretize(5, 16);
        assert!(concrete_overlap(all, e, false));
    }

    #[test]
    fn symbolic_respects_assumption_flag() {
        let s = Section::Range {
            lo: Bound::Sym {
                arr: fsr_lang::ast::ObjId(7),
                idx: Lin::pdv(),
                off: 0,
            },
            hi: Bound::Sym {
                arr: fsr_lang::ast::ObjId(7),
                idx: Lin::pdv(),
                off: -1,
            },
            stride: 1,
        };
        let a = s.concretize(0, 100);
        let b = s.concretize(1, 100);
        assert!(concrete_overlap(a, b, false));
        assert!(!concrete_overlap(a, b, true));
    }

    #[test]
    fn rsd_overlap_respects_proccond() {
        let r = Rsd {
            sections: vec![Section::All],
            weight: 1.0,
            phase: PhaseSpan::point(0),
            procs: ProcCond::One(0),
            inner_stride: None,
        };
        // Only pid 0 performs it, so "performed by 1" never overlaps.
        assert!(!r.overlaps_for(1, &r, 0, &[16], false));
        assert!(r.overlaps_for(0, &r, 0, &[16], false));
    }

    #[test]
    fn rsd_multidim_needs_every_dim_overlap() {
        // a[i][pid]: dim0 all, dim1 pdv — disjoint across pids because
        // dim1 differs.
        let r = Rsd {
            sections: vec![Section::All, Section::Elem(lin(0, 1))],
            weight: 1.0,
            phase: PhaseSpan::point(0),
            procs: ProcCond::All,
            inner_stride: None,
        };
        assert!(!r.overlaps_for(0, &r, 1, &[8, 4], false));
        assert!(r.overlaps_for(2, &r, 2, &[8, 4], false));
    }

    #[test]
    fn merge_points_into_range() {
        let a = Section::Elem(lin(0, 1));
        let b = Section::Elem(lin(3, 1));
        let m = merge_sections(&a, &b);
        match m {
            Section::Range { stride, .. } => assert_eq!(stride, 3),
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn merge_with_unknown_degrades() {
        assert_eq!(
            merge_sections(&Section::Unknown, &Section::All),
            Section::Unknown
        );
    }

    #[test]
    fn merge_ranges_same_stride() {
        let a = Section::Range {
            lo: Bound::constant(0),
            hi: Bound::constant(10),
            stride: 2,
        };
        let b = Section::Range {
            lo: Bound::constant(4),
            hi: Bound::constant(20),
            stride: 2,
        };
        let m = merge_sections(&a, &b);
        assert_eq!(
            m,
            Section::Range {
                lo: Bound::constant(0),
                hi: Bound::constant(20),
                stride: 2
            }
        );
    }
}
