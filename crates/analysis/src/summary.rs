//! Interprocedural, flow-insensitive summary side-effect analysis with
//! static profiling (stage 3), per-process control-flow guards (stage 1)
//! and barrier phase tracking (stage 2).
//!
//! Functions are walked in callee-first order. Each walk produces a
//! [`FuncSummary`] whose access descriptors are expressed over the
//! function's *formal* slots; at every call site the callee's summary is
//! inlined with formals substituted by the abstract value of the actual
//! arguments. At the top (`main`), the `forall` induction variable maps to
//! the PDV, and the fully substituted descriptors become the program's
//! final access summary.

use crate::callgraph::CallGraph;
use crate::lin::Lin;
use crate::phase::{PhaseCounter, PhaseSpan, PHASE_MAX};
use crate::section::{Bound, ProcCond, Rsd, Section};
use fsr_lang::ast::*;
use fsr_lang::check::eval_binop;
use fsr_lang::diag::{Error, Span};
use std::collections::BTreeMap;

/// Static-profiling weight constants. These mirror the paper's use of
/// estimated execution frequency: exact trip counts where bounds are
/// static, coarse guesses otherwise, and probability 1/2 per branch side.
pub mod weights {
    /// Assumed trip count of loops with non-constant bounds.
    pub const UNKNOWN_TRIP: f64 = 8.0;
    /// Assumed trip count of `while` loops.
    pub const WHILE_TRIP: f64 = 8.0;
    /// Probability assigned to each side of a branch.
    pub const BRANCH_PROB: f64 = 0.5;
    /// Cap on a single loop's multiplier so deeply nested known loops
    /// cannot overflow the weight scale.
    pub const TRIP_CAP: f64 = 1.0e6;
}

/// Abstract value of an expression over the current function's slots.
#[derive(Debug, Clone)]
pub enum Abs {
    Lin(Lin),
    /// Value loaded from `arr[idx] + off` (1-D shared int array).
    Sym {
        arr: ObjId,
        idx: Lin,
        off: i64,
    },
    /// Anything else.
    Other,
}

impl Abs {
    fn constant(c: i64) -> Abs {
        Abs::Lin(Lin::constant(c))
    }

    fn as_lin(&self) -> Option<&Lin> {
        match self {
            Abs::Lin(l) => Some(l),
            _ => None,
        }
    }

    fn add_const(&self, k: i64) -> Abs {
        match self {
            Abs::Lin(l) => Abs::Lin(l.add(&Lin::constant(k))),
            Abs::Sym { arr, idx, off } => Abs::Sym {
                arr: *arr,
                idx: idx.clone(),
                off: off.wrapping_add(k),
            },
            Abs::Other => Abs::Other,
        }
    }
}

/// Which element of a lock object a lockset entry names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockIdx {
    /// A scalar lock (`shared lock lk;`).
    Scalar,
    /// An affine element index, possibly PDV-dependent (`lock(lk[p])`).
    Lin(Lin),
    /// A data-dependent element index (`lock(lk[region[c]])`): held, but
    /// which element cannot be compared statically.
    Unknown,
}

/// One held lock: the lock object plus which element of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSym {
    pub obj: ObjId,
    pub idx: LockIdx,
}

/// One summarized access, relative to the owning function: sections may
/// reference formal slots, phases are offsets from the function entry.
#[derive(Debug, Clone)]
pub struct AccessRec {
    pub obj: ObjId,
    pub field: Option<FieldId>,
    pub is_write: bool,
    pub sections: Vec<Section>,
    pub weight: f64,
    /// Phase span relative to function entry.
    pub phase: PhaseSpan,
    /// When the phase span is unbounded because the access repeats in a
    /// barrier-crossing loop with a *fixed* barrier count `m >= 2` per
    /// iteration, the access only occurs in phases `p ≡ r (mod m)` with
    /// `p >= phase.lo`. `None` means no such refinement is known.
    pub residue: Option<(u32, u32)>,
    /// Innermost guard of the form `lin == c`, if any.
    pub guard: Option<(Lin, i64)>,
    /// Recorded outside the parallel region: only the master executes it.
    pub serial: bool,
    pub inner_stride: Option<i64>,
    /// Locks held on every path reaching the access.
    pub locks: Vec<LockSym>,
    /// Source location of the access (for diagnostics).
    pub span: Span,
}

/// Summary of one function.
#[derive(Debug, Clone, Default)]
pub struct FuncSummary {
    pub accesses: Vec<AccessRec>,
    /// Barriers executed per invocation (minimum).
    pub phase_lo_delta: u32,
    /// True when the per-invocation barrier count is unbounded (barrier
    /// inside a loop).
    pub phase_unbounded: bool,
    /// Locks still held when the function returns (normally empty: every
    /// workload balances lock/unlock within a function).
    pub exit_locks: Vec<LockSym>,
    /// Spans of `if` statements whose arms cross different numbers of
    /// barriers (FSR-W003 candidates).
    pub barrier_mismatches: Vec<Span>,
}

/// A finalized access over the whole program: all bounds are PDV-affine
/// or symbolic partition bounds; guards are resolved into [`ProcCond`].
#[derive(Debug, Clone)]
pub struct FinalAccess {
    pub obj: ObjId,
    pub field: Option<FieldId>,
    pub is_write: bool,
    pub rsd: Rsd,
    /// Locks held on every path reaching the access (lock-array element
    /// indices degraded to [`LockIdx::Unknown`] unless PDV-affine).
    pub locks: Vec<LockSym>,
    /// Phase residue (see [`AccessRec::residue`]).
    pub residue: Option<(u32, u32)>,
    /// Recorded outside the forall (serial prologue/epilogue): ordered
    /// against all parallel accesses by the spawn/join barriers.
    pub serial: bool,
    /// Source location of the access.
    pub span: Span,
}

/// The program-level result of the summary walk.
#[derive(Debug, Clone)]
pub struct ProgramSummary {
    pub accesses: Vec<FinalAccess>,
    /// For every object written anywhere: the convex hull of write phases.
    /// Used to validate partition assumptions.
    pub write_phases: BTreeMap<ObjId, PhaseSpan>,
    /// Spans of branches whose arms cross different numbers of barriers,
    /// collected across all functions.
    pub barrier_mismatches: Vec<Span>,
    /// Relational index facts for every shared-data access site, used by
    /// the race pass to re-judge pairs whose sections degraded to
    /// [`Section::Unknown`] (see [`crate::rel`]).
    pub rel: crate::rel::RelFacts,
}

struct LoopCtx {
    slot: u32,
    lo: Abs,
    hi: Abs,
    step: Option<i64>,
}

struct Walker<'p> {
    prog: &'p Program,
    summaries: &'p [FuncSummary],
    /// Abstract value per local slot.
    env: Vec<Abs>,
    loops: Vec<LoopCtx>,
    weight: f64,
    phase: PhaseCounter,
    guard: Option<(Lin, i64)>,
    /// Inside the forall body (directly or via calls from it).
    in_parallel: bool,
    /// Lockset: locks held on the current path (stack order).
    held: Vec<LockSym>,
    /// `if` statements whose arms cross differing barrier counts.
    mismatches: Vec<Span>,
    out: Vec<AccessRec>,
}

impl<'p> Walker<'p> {
    fn record(&mut self, obj: ObjId, field: Option<FieldId>, is_write: bool, place: &Place) {
        let (sections, inner_stride) = self.build_sections(place);
        self.out.push(AccessRec {
            obj,
            field,
            is_write,
            sections,
            weight: self.weight,
            phase: self.phase.current(),
            residue: None,
            guard: self.guard.clone(),
            serial: !self.in_parallel,
            inner_stride,
            locks: self.held.clone(),
            span: place.span,
        });
    }

    /// Abstract-evaluate an expression, recording any loads it performs.
    fn eval(&mut self, e: &Expr) -> Abs {
        match &e.kind {
            ExprKind::Int(v) => Abs::constant(*v),
            ExprKind::Var(VarRef::Local(s)) => self.env[*s as usize].clone(),
            ExprKind::Var(VarRef::Param(i)) => {
                Abs::constant(self.prog.params[*i as usize].value.unwrap_or(0))
            }
            ExprKind::Var(VarRef::Const(i)) => {
                Abs::constant(self.prog.consts[*i as usize].value.unwrap_or(0))
            }
            ExprKind::Load(pl) => {
                // Evaluate index expressions first (they perform loads too),
                // then record the load itself.
                let idx_abs: Vec<Abs> = pl.idx.iter().map(|ie| self.eval(ie)).collect();
                if let Some((_, Some(fe))) = &pl.field {
                    self.eval(fe);
                }
                self.record(pl.obj, pl.field.as_ref().map(|(f, _)| *f), false, pl);
                // Symbolic value: 1-D shared int array, no field, affine idx.
                let obj = self.prog.object(pl.obj);
                if obj.kind == ObjectKind::SharedData
                    && obj.elem == ElemTy::Int
                    && obj.dims.len() == 1
                    && pl.field.is_none()
                {
                    if let Some(l) = idx_abs[0].as_lin() {
                        return Abs::Sym {
                            arr: pl.obj,
                            idx: l.clone(),
                            off: 0,
                        };
                    }
                }
                Abs::Other
            }
            ExprKind::Unary(op, a) => {
                let v = self.eval(a);
                match (op, v) {
                    (UnOp::Neg, Abs::Lin(l)) => Abs::Lin(l.neg()),
                    (UnOp::Not, Abs::Lin(l)) => match l.as_constant() {
                        Some(c) => Abs::constant((c == 0) as i64),
                        None => Abs::Other,
                    },
                    _ => Abs::Other,
                }
            }
            ExprKind::Binary(op, a, b) => {
                let va = self.eval(a);
                let vb = self.eval(b);
                match op {
                    BinOp::Add => match (&va, &vb) {
                        (Abs::Lin(x), Abs::Lin(y)) => Abs::Lin(x.add(y)),
                        (Abs::Sym { .. }, Abs::Lin(y)) => match y.as_constant() {
                            Some(k) => va.add_const(k),
                            None => Abs::Other,
                        },
                        (Abs::Lin(x), Abs::Sym { .. }) => match x.as_constant() {
                            Some(k) => vb.add_const(k),
                            None => Abs::Other,
                        },
                        _ => Abs::Other,
                    },
                    BinOp::Sub => match (&va, &vb) {
                        (Abs::Lin(x), Abs::Lin(y)) => Abs::Lin(x.sub(y)),
                        (Abs::Sym { .. }, Abs::Lin(y)) => match y.as_constant() {
                            Some(k) => va.add_const(-k),
                            None => Abs::Other,
                        },
                        _ => Abs::Other,
                    },
                    BinOp::Mul => match (&va, &vb) {
                        (Abs::Lin(x), Abs::Lin(y)) => match x.mul(y) {
                            Some(l) => Abs::Lin(l),
                            None => Abs::Other,
                        },
                        _ => Abs::Other,
                    },
                    _ => {
                        // Constant folding for the remaining operators.
                        match (
                            va.as_lin().and_then(Lin::as_constant),
                            vb.as_lin().and_then(Lin::as_constant),
                        ) {
                            (Some(x), Some(y)) => match eval_binop(*op, x, y) {
                                Ok(v) => Abs::constant(v),
                                Err(_) => Abs::Other,
                            },
                            _ => Abs::Other,
                        }
                    }
                }
            }
            ExprKind::Call(callee, args) => {
                let arg_abs: Vec<Abs> = args.iter().map(|a| self.eval(a)).collect();
                match callee {
                    Callee::Builtin(Builtin::Min) | Callee::Builtin(Builtin::Max) => {
                        // min/max of constants folds; otherwise opaque.
                        match (
                            arg_abs[0].as_lin().and_then(Lin::as_constant),
                            arg_abs[1].as_lin().and_then(Lin::as_constant),
                        ) {
                            (Some(x), Some(y)) => {
                                if matches!(callee, Callee::Builtin(Builtin::Min)) {
                                    Abs::constant(x.min(y))
                                } else {
                                    Abs::constant(x.max(y))
                                }
                            }
                            _ => Abs::Other,
                        }
                    }
                    Callee::Builtin(_) => Abs::Other,
                    Callee::User(f) => {
                        self.inline_call(*f, &arg_abs);
                        Abs::Other
                    }
                }
            }
            ExprKind::Path(_) | ExprKind::CallNamed(..) => unreachable!("checked program"),
        }
    }

    /// Inline the callee's summary at this call site.
    fn inline_call(&mut self, f: FuncId, args: &[Abs]) {
        let summary = &self.summaries[f.index()];
        let map: BTreeMap<u32, Abs> = args
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.clone()))
            .collect();
        let call_phase = self.phase.current();
        // A residue is only meaningful in the caller frame when the call
        // site sits at an exact phase point (the shift is then constant).
        let call_point = (call_phase.lo == call_phase.hi).then_some(call_phase.lo);
        for acc in &summary.accesses {
            let sections: Vec<Section> = acc
                .sections
                .iter()
                .map(|s| subst_section(s, &map))
                .collect();
            let phase = shift_phase(acc.phase, call_phase);
            let residue = match (call_point, acc.residue) {
                (Some(c), Some((r, m))) => Some(((c + r) % m, m)),
                _ => None,
            };
            let guard = match (&acc.guard, &self.guard) {
                (Some((l, c)), _) => subst_lin(l, &map).map(|l2| (l2, *c)).or(self.guard.clone()),
                (None, g) => g.clone(),
            };
            let mut locks = self.held.clone();
            locks.extend(acc.locks.iter().map(|l| subst_lock(l, &map)));
            self.out.push(AccessRec {
                obj: acc.obj,
                field: acc.field,
                is_write: acc.is_write,
                sections,
                weight: acc.weight * self.weight,
                phase,
                residue,
                guard,
                // A callee is serial iff the call site is outside the
                // parallel region (callee-internal flags are relative).
                serial: !self.in_parallel,
                inner_stride: acc.inner_stride,
                locks,
                span: acc.span,
            });
        }
        // Advance the phase counter by the callee's barrier delta.
        for _ in 0..summary.phase_lo_delta {
            self.phase.barrier();
        }
        if summary.phase_unbounded {
            self.phase.widen();
        }
        // Locks the callee leaves held become held at the call site.
        self.held
            .extend(summary.exit_locks.iter().map(|l| subst_lock(l, &map)));
    }

    /// Build per-dimension sections for a place, expanding enclosing loop
    /// variables, plus the innermost-loop flat stride.
    fn build_sections(&mut self, pl: &Place) -> (Vec<Section>, Option<i64>) {
        let obj = self.prog.object(pl.obj);
        let ndims = obj.dims.len();
        let mut idx_abs = Vec::with_capacity(ndims);
        for ie in &pl.idx {
            // Note: eval() records loads; index expressions were already
            // evaluated by the caller for Loads, but Stores reach here
            // first. To keep a single recording point, evaluation here is
            // *pure*: we re-derive the abstract value without recording.
            idx_abs.push(self.eval_pure(ie));
        }
        let sections: Vec<Section> = idx_abs.iter().map(|a| self.abs_to_section(a)).collect();

        // Innermost-loop stride in flattened element units.
        let inner_stride = self.flat_inner_stride(&idx_abs, obj);
        (sections, inner_stride)
    }

    /// Pure variant of `eval` used when the expression's loads were
    /// already recorded (index expressions are evaluated exactly once for
    /// recording purposes by `eval`/statement walkers).
    fn eval_pure(&mut self, e: &Expr) -> Abs {
        let keep = self.out.len();
        let v = self.eval(e);
        self.out.truncate(keep);
        v
    }

    fn flat_inner_stride(&self, idx_abs: &[Abs], obj: &ObjectDecl) -> Option<i64> {
        // flat = idx0 * dim1 + idx1 (2-D) or idx0 (1-D), in elements.
        let mut flat = Lin::constant(0);
        let mut mult = 1i64;
        for (k, a) in idx_abs.iter().enumerate().rev() {
            let l = a.as_lin()?;
            flat = flat.add(&l.scale(mult));
            if k > 0 {
                mult = mult.checked_mul(obj.dims[k] as i64)?;
            }
        }
        let innermost = self.loops.last()?;
        let c = flat.coefs.get(&innermost.slot).copied().unwrap_or(0);
        if c == 0 {
            return None;
        }
        Some(c.wrapping_mul(innermost.step.unwrap_or(1)))
    }

    /// Convert an abstract index value into a section, expanding loop
    /// variables from innermost to outermost.
    fn abs_to_section(&self, a: &Abs) -> Section {
        match a {
            Abs::Other => Section::Unknown,
            Abs::Sym { arr, idx, off } => Section::Elem(Bound::Sym {
                arr: *arr,
                idx: idx.clone(),
                off: *off,
            }),
            Abs::Lin(l) => {
                let mut sec = Section::Elem(Bound::Lin(l.clone()));
                // Expand loop vars innermost-first.
                for ctx in self.loops.iter().rev() {
                    sec = expand_loop_var(sec, ctx);
                }
                sec
            }
        }
    }
}

/// Substitute formals in a linear form with caller-frame linear values.
/// `None` when any formal maps to a non-linear abstract value.
fn subst_lin(l: &Lin, map: &BTreeMap<u32, Abs>) -> Option<Lin> {
    let mut out = Lin::constant(l.c0);
    for (&s, &c) in &l.coefs {
        match map.get(&s) {
            Some(Abs::Lin(repl)) => out = out.add(&repl.scale(c)),
            _ => return None,
        }
    }
    Some(out)
}

/// Substitute formals in a lockset entry. An element index that cannot be
/// expressed in the caller frame degrades to [`LockIdx::Unknown`] — the
/// lock is still held, it just cannot be compared by element.
fn subst_lock(l: &LockSym, map: &BTreeMap<u32, Abs>) -> LockSym {
    let idx = match &l.idx {
        LockIdx::Scalar => LockIdx::Scalar,
        LockIdx::Unknown => LockIdx::Unknown,
        LockIdx::Lin(lin) => match subst_lin(lin, map) {
            Some(lin) => LockIdx::Lin(lin),
            None => LockIdx::Unknown,
        },
    };
    LockSym { obj: l.obj, idx }
}

/// Substitute formals in a bound. Symbolic actuals are absorbed when the
/// bound is `1·slot + const`.
fn subst_bound(b: &Bound, map: &BTreeMap<u32, Abs>) -> Option<Bound> {
    match b {
        Bound::Lin(l) => {
            if let Some(out) = subst_lin(l, map) {
                return Some(Bound::Lin(out));
            }
            // Absorb a symbolic actual: l must be exactly `slot + c0`.
            if l.coefs.len() == 1 {
                let (&s, &c) = l.coefs.iter().next().unwrap();
                if c == 1 {
                    if let Some(Abs::Sym { arr, idx, off }) = map.get(&s) {
                        return Some(Bound::Sym {
                            arr: *arr,
                            idx: idx.clone(),
                            off: off.wrapping_add(l.c0),
                        });
                    }
                }
            }
            None
        }
        Bound::Sym { arr, idx, off } => subst_lin(idx, map).map(|idx| Bound::Sym {
            arr: *arr,
            idx,
            off: *off,
        }),
    }
}

fn subst_section(s: &Section, map: &BTreeMap<u32, Abs>) -> Section {
    match s {
        Section::All => Section::All,
        Section::Unknown => Section::Unknown,
        Section::Elem(b) => match subst_bound(b, map) {
            Some(b) => Section::Elem(b),
            None => Section::Unknown,
        },
        Section::Range { lo, hi, stride } => match (subst_bound(lo, map), subst_bound(hi, map)) {
            (Some(lo), Some(hi)) => Section::Range {
                lo,
                hi,
                stride: *stride,
            },
            _ => Section::Unknown,
        },
    }
}

/// Shift a callee-relative phase span to the caller's current counter.
fn shift_phase(rel: PhaseSpan, at: PhaseSpan) -> PhaseSpan {
    let lo = at.lo.saturating_add(rel.lo);
    let hi = if rel.hi == PHASE_MAX || at.hi == PHASE_MAX {
        PHASE_MAX
    } else {
        at.hi.saturating_add(rel.hi)
    };
    PhaseSpan { lo, hi }
}

/// Expand one loop variable occurring in a section's affine bounds.
fn expand_loop_var(sec: Section, ctx: &LoopCtx) -> Section {
    let step = ctx.step.unwrap_or(1).abs().max(1);
    match sec {
        Section::Elem(Bound::Lin(l)) => {
            let c = l.coefs.get(&ctx.slot).copied().unwrap_or(0);
            if c == 0 {
                return Section::Elem(Bound::Lin(l));
            }
            let mut rest = l.clone();
            rest.coefs.remove(&ctx.slot);
            // element = c·v + rest, v in [lo, hi-1] (exclusive upper).
            let stride = c.abs().wrapping_mul(step).max(1);
            let stride = if ctx.step.is_none() { 1 } else { stride };
            match (&ctx.lo, &ctx.hi) {
                (Abs::Lin(lo), Abs::Lin(hi)) => {
                    let hi1 = hi.sub(&Lin::constant(1));
                    let (blo, bhi) = if c > 0 {
                        (rest.add(&lo.scale(c)), rest.add(&hi1.scale(c)))
                    } else {
                        (rest.add(&hi1.scale(c)), rest.add(&lo.scale(c)))
                    };
                    Section::Range {
                        lo: Bound::Lin(blo),
                        hi: Bound::Lin(bhi),
                        stride,
                    }
                }
                (lo_abs, hi_abs) if c == 1 => {
                    // Symbolic bounds absorb only direct `v + const` forms.
                    match rest.as_constant() {
                        Some(k) => {
                            let lo_b = match lo_abs {
                                Abs::Lin(l) => Some(Bound::Lin(l.add(&Lin::constant(k)))),
                                Abs::Sym { arr, idx, off } => Some(Bound::Sym {
                                    arr: *arr,
                                    idx: idx.clone(),
                                    off: off.wrapping_add(k),
                                }),
                                Abs::Other => None,
                            };
                            let hi_b = match hi_abs {
                                Abs::Lin(l) => Some(Bound::Lin(l.add(&Lin::constant(k - 1)))),
                                Abs::Sym { arr, idx, off } => Some(Bound::Sym {
                                    arr: *arr,
                                    idx: idx.clone(),
                                    off: off.wrapping_add(k - 1),
                                }),
                                Abs::Other => None,
                            };
                            match (lo_b, hi_b) {
                                (Some(lo), Some(hi)) => Section::Range { lo, hi, stride },
                                _ => Section::Unknown,
                            }
                        }
                        None => Section::Unknown,
                    }
                }
                _ => Section::Unknown,
            }
        }
        Section::Range { lo, hi, stride } => {
            // Expand the var inside the bounds (outer loop var around an
            // already-expanded inner range).
            let expand_bound = |b: &Bound, toward_hi: bool| -> Option<(Bound, i64)> {
                match b {
                    Bound::Lin(l) => {
                        let c = l.coefs.get(&ctx.slot).copied().unwrap_or(0);
                        if c == 0 {
                            return Some((Bound::Lin(l.clone()), 0));
                        }
                        let mut rest = l.clone();
                        rest.coefs.remove(&ctx.slot);
                        let (lo_l, hi_l) = match (&ctx.lo, &ctx.hi) {
                            (Abs::Lin(lo), Abs::Lin(hi)) => (lo.clone(), hi.sub(&Lin::constant(1))),
                            _ => return None,
                        };
                        // Pick the bound value extremizing c·v.
                        let pick_hi = (c > 0) == toward_hi;
                        let v = if pick_hi { hi_l } else { lo_l };
                        Some((Bound::Lin(rest.add(&v.scale(c))), c))
                    }
                    Bound::Sym { idx, .. } => {
                        if idx.coefs.contains_key(&ctx.slot) {
                            None
                        } else {
                            Some((b.clone(), 0))
                        }
                    }
                }
            };
            match (expand_bound(&lo, false), expand_bound(&hi, true)) {
                (Some((lo2, c1)), Some((hi2, c2))) => {
                    let outer = c1.abs().max(c2.abs()).wrapping_mul(step);
                    let stride = if c1 == 0 && c2 == 0 {
                        stride
                    } else {
                        gcd_i64(stride, outer.max(1))
                    };
                    Section::Range {
                        lo: lo2,
                        hi: hi2,
                        stride,
                    }
                }
                _ => Section::Unknown,
            }
        }
        other => other,
    }
}

fn gcd_i64(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl<'p> Walker<'p> {
    fn walk_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.walk_stmt(s);
        }
    }

    /// Pre-scan: does this block contain a barrier or a call to a
    /// barrier-crossing function?
    fn has_barrier(&self, b: &Block) -> bool {
        b.stmts.iter().any(|s| self.stmt_has_barrier(s))
    }

    fn stmt_has_barrier(&self, s: &Stmt) -> bool {
        match &s.kind {
            StmtKind::Barrier { .. } => true,
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                self.has_barrier(then_blk) || else_blk.as_ref().is_some_and(|b| self.has_barrier(b))
            }
            StmtKind::While { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Forall { body, .. } => self.has_barrier(body),
            StmtKind::Block(b) => self.has_barrier(b),
            StmtKind::CallStmt {
                callee: Some(Callee::User(f)),
                ..
            } => {
                let s = &self.summaries[f.index()];
                s.phase_lo_delta > 0 || s.phase_unbounded
            }
            _ => {
                // Calls inside expressions: conservative scan.
                let mut found = false;
                visit_exprs(s, &mut |e| {
                    if let ExprKind::Call(Callee::User(f), _) = &e.kind {
                        let sm = &self.summaries[f.index()];
                        if sm.phase_lo_delta > 0 || sm.phase_unbounded {
                            found = true;
                        }
                    }
                });
                found
            }
        }
    }

    /// Slots assigned anywhere within a block (for loop-entry smashing).
    fn assigned_slots(b: &Block, out: &mut Vec<u32>) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::VarDecl { slot, .. } => out.push(*slot),
                StmtKind::Assign {
                    target: Target::Local(slot),
                    ..
                } => out.push(*slot),
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    Self::assigned_slots(then_blk, out);
                    if let Some(e) = else_blk {
                        Self::assigned_slots(e, out);
                    }
                }
                StmtKind::While { body, .. }
                | StmtKind::For { body, .. }
                | StmtKind::Forall { body, .. } => {
                    if let StmtKind::For { slot, .. } | StmtKind::Forall { slot, .. } = &s.kind {
                        out.push(*slot);
                    }
                    Self::assigned_slots(body, out);
                }
                StmtKind::Block(b) => Self::assigned_slots(b, out),
                _ => {}
            }
        }
    }

    fn smash_assigned(&mut self, b: &Block) {
        let mut slots = Vec::new();
        Self::assigned_slots(b, &mut slots);
        for s in slots {
            self.env[s as usize] = Abs::Other;
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::VarDecl { init, slot, .. } => {
                let v = match init {
                    Some(e) => self.eval(e),
                    None => Abs::constant(0),
                };
                self.env[*slot as usize] = v;
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval(value);
                match target {
                    Target::Local(slot) => self.env[*slot as usize] = v,
                    Target::Place(pl) => {
                        // Index expressions perform loads: record them.
                        for ie in &pl.idx {
                            self.eval(ie);
                        }
                        if let Some((_, Some(fe))) = &pl.field {
                            self.eval(fe);
                        }
                        self.record(pl.obj, pl.field.as_ref().map(|(f, _)| *f), true, pl);
                    }
                    Target::Path(_) => unreachable!("checked program"),
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.eval(cond);
                let saved_w = self.weight;
                let saved_guard = self.guard.clone();
                let saved_phase = self.phase;
                let saved_held = self.held.clone();
                self.weight *= weights::BRANCH_PROB;
                // Track `lin == c` guards for the then-branch.
                if let Some(g) = self.guard_of(cond) {
                    self.guard = Some(g);
                }
                self.walk_block(then_blk);
                let then_phase = self.phase;
                let then_held = std::mem::replace(&mut self.held, saved_held);
                self.guard = saved_guard.clone();
                self.phase = saved_phase;
                if let Some(e) = else_blk {
                    self.walk_block(e);
                }
                // Arms crossing different barrier counts mis-align the
                // rendezvous of processes taking different arms (FSR-W003).
                if (self.phase.lo, self.phase.hi) != (then_phase.lo, then_phase.hi) {
                    self.mismatches.push(s.span);
                }
                // Only locks held on *both* arms survive the join.
                self.held.retain(|l| then_held.contains(l));
                self.phase.join(then_phase);
                self.weight = saved_w;
                self.guard = saved_guard;
            }
            StmtKind::While { cond, body } => {
                self.eval(cond);
                self.smash_assigned(body);
                let saved_w = self.weight;
                self.weight = (self.weight * weights::WHILE_TRIP).min(f64::MAX / 4.0);
                let barriers = self.has_barrier(body);
                let entry = self.phase;
                let entry_held = self.held.clone();
                let mark = self.out.len();
                self.walk_block(body);
                if barriers {
                    self.widen_from(mark, entry);
                    self.phase.widen();
                }
                self.stabilize_locks(mark, &entry_held);
                self.weight = saved_w;
            }
            StmtKind::For {
                slot,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let lo_abs = self.eval(lo);
                let hi_abs = self.eval(hi);
                let step_val = step.as_ref().and_then(|e| {
                    let a = self.eval(e);
                    a.as_lin().and_then(Lin::as_constant)
                });
                let step_known = match step {
                    None => Some(1),
                    Some(_) => step_val,
                };
                // Trip-count estimate for static profiling.
                let trip = match (
                    lo_abs.as_lin().and_then(Lin::as_constant),
                    hi_abs.as_lin().and_then(Lin::as_constant),
                    step_known,
                ) {
                    (Some(l), Some(h), Some(st)) if st != 0 => {
                        let n = if st > 0 {
                            (h - l + st - 1).max(0) / st
                        } else {
                            (l - h + (-st) - 1).max(0) / -st
                        };
                        (n as f64).min(weights::TRIP_CAP)
                    }
                    _ => weights::UNKNOWN_TRIP,
                };
                self.smash_assigned(body);
                self.env[*slot as usize] = Abs::Lin(Lin::slot(*slot));
                self.loops.push(LoopCtx {
                    slot: *slot,
                    lo: lo_abs,
                    hi: hi_abs,
                    step: step_known,
                });
                let saved_w = self.weight;
                self.weight = (self.weight * trip.max(0.0)).min(f64::MAX / 4.0);
                let barriers = self.has_barrier(body);
                let entry = self.phase;
                let entry_held = self.held.clone();
                let mark = self.out.len();
                self.walk_block(body);
                if barriers {
                    self.widen_from(mark, entry);
                    self.phase.widen();
                }
                self.stabilize_locks(mark, &entry_held);
                self.weight = saved_w;
                self.loops.pop();
                self.env[*slot as usize] = Abs::Other;
            }
            StmtKind::Forall { slot, body, .. } => {
                // The forall induction variable *is* the PDV.
                self.env[*slot as usize] = Abs::Lin(Lin::pdv());
                // Implicit barrier at spawn.
                self.phase.barrier();
                let saved_guard = self.guard.take(); // parallel region: all procs
                let was_parallel = self.in_parallel;
                self.in_parallel = true;
                self.walk_block(body);
                self.in_parallel = was_parallel;
                self.guard = saved_guard;
                // Implicit barrier at join; post-forall code is serial again.
                self.phase.barrier();
                self.env[*slot as usize] = Abs::Other;
            }
            StmtKind::Barrier { .. } => self.phase.barrier(),
            StmtKind::Lock { target } => {
                if let Target::Place(pl) = target {
                    let idx_abs: Vec<Abs> = pl.idx.iter().map(|ie| self.eval(ie)).collect();
                    // Lock manipulation is a write to the lock word.
                    self.record(pl.obj, None, true, pl);
                    let sym = lock_sym(pl, &idx_abs);
                    self.held.push(sym);
                }
            }
            StmtKind::Unlock { target } => {
                if let Target::Place(pl) = target {
                    let idx_abs: Vec<Abs> = pl.idx.iter().map(|ie| self.eval(ie)).collect();
                    self.record(pl.obj, None, true, pl);
                    let sym = lock_sym(pl, &idx_abs);
                    // Release the most recent matching acquisition; if the
                    // element form differs, release by object (sound:
                    // shrinking the lockset can only add race reports).
                    if let Some(i) = self.held.iter().rposition(|h| *h == sym) {
                        self.held.remove(i);
                    } else if let Some(i) = self.held.iter().rposition(|h| h.obj == pl.obj) {
                        self.held.remove(i);
                    }
                }
            }
            StmtKind::CallStmt { callee, args, .. } => {
                let arg_abs: Vec<Abs> = args.iter().map(|a| self.eval(a)).collect();
                if let Some(Callee::User(f)) = callee {
                    self.inline_call(*f, &arg_abs);
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.eval(e);
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.walk_block(b),
        }
    }

    /// Widen the phase spans of accesses recorded since `mark` (they sit
    /// inside a barrier-crossing loop and repeat across phases). When the
    /// loop crosses a *fixed* count `d >= 2` of barriers per iteration,
    /// each access only repeats every `d` phases — record the congruence
    /// so non-concurrency analysis can still separate accesses landing in
    /// different slots of the iteration (e.g. a producer phase and a
    /// consumer phase of a timestep loop).
    fn widen_from(&mut self, mark: usize, entry: PhaseCounter) {
        let exit = self.phase;
        let delta = if entry.lo == entry.hi && exit.lo == exit.hi && exit.hi != PHASE_MAX {
            Some(exit.lo - entry.lo)
        } else {
            None
        };
        for a in &mut self.out[mark..] {
            a.residue = match (delta, a.residue) {
                (Some(d), _) if d < 2 => None,
                (Some(d), None) if a.phase.lo == a.phase.hi && a.phase.hi != PHASE_MAX => {
                    Some((a.phase.lo % d, d))
                }
                (Some(d), Some((r0, m0))) => {
                    // Already periodic from an inner loop: the outer loop
                    // shifts by multiples of d, so only the joint period
                    // gcd(m0, d) survives.
                    let g = gcd_i64(m0 as i64, d as i64) as u32;
                    if g >= 2 {
                        Some((r0 % g, g))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            a.phase.hi = PHASE_MAX;
        }
    }

    /// After walking a loop body once, reconcile the lockset: if the body
    /// does not leave the lockset exactly as it found it, accesses inside
    /// the body may see an iteration-dependent lockset, so keep only the
    /// locks held both at entry and at exit (under-approximating the
    /// lockset is sound — it can only produce more race reports).
    fn stabilize_locks(&mut self, mark: usize, entry_held: &[LockSym]) {
        if self.held == entry_held {
            return;
        }
        let stable: Vec<LockSym> = self
            .held
            .iter()
            .filter(|l| entry_held.contains(l))
            .cloned()
            .collect();
        for a in &mut self.out[mark..] {
            a.locks.retain(|l| stable.contains(l));
        }
        self.held = stable;
    }

    /// Extract a `lin == c` guard from a branch condition.
    fn guard_of(&mut self, cond: &Expr) -> Option<(Lin, i64)> {
        if let ExprKind::Binary(BinOp::Eq, a, b) = &cond.kind {
            let va = self.eval_pure(a);
            let vb = self.eval_pure(b);
            match (va.as_lin(), vb.as_lin()) {
                (Some(x), Some(y)) => {
                    if let Some(c) = y.as_constant() {
                        if !x.is_constant() {
                            return Some((x.clone(), c));
                        }
                    }
                    if let Some(c) = x.as_constant() {
                        if !y.is_constant() {
                            return Some((y.clone(), c));
                        }
                    }
                    None
                }
                _ => None,
            }
        } else {
            None
        }
    }
}

/// Build a lockset entry for a `lock`/`unlock` target.
fn lock_sym(pl: &Place, idx_abs: &[Abs]) -> LockSym {
    let idx = match idx_abs {
        [] => LockIdx::Scalar,
        [a] => match a.as_lin() {
            Some(l) => LockIdx::Lin(l.clone()),
            None => LockIdx::Unknown,
        },
        _ => LockIdx::Unknown,
    };
    LockSym { obj: pl.obj, idx }
}

fn visit_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    fn expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Unary(_, a) => expr(a, f),
            ExprKind::Binary(_, a, b) => {
                expr(a, f);
                expr(b, f);
            }
            ExprKind::Call(_, args) | ExprKind::CallNamed(_, args) => {
                for a in args {
                    expr(a, f);
                }
            }
            ExprKind::Load(pl) => {
                for i in &pl.idx {
                    expr(i, f);
                }
                if let Some((_, Some(fe))) = &pl.field {
                    expr(fe, f);
                }
            }
            _ => {}
        }
    }
    match &s.kind {
        StmtKind::VarDecl { init: Some(e), .. } | StmtKind::Return(Some(e)) => expr(e, f),
        StmtKind::Assign { value, .. } => expr(value, f),
        StmtKind::If { cond, .. } => expr(cond, f),
        StmtKind::While { cond, .. } => expr(cond, f),
        StmtKind::For { lo, hi, step, .. } => {
            expr(lo, f);
            expr(hi, f);
            if let Some(st) = step {
                expr(st, f);
            }
        }
        StmtKind::CallStmt { args, .. } => {
            for a in args {
                expr(a, f);
            }
        }
        _ => {}
    }
}

/// Walk one function and produce its summary.
fn summarize_func(prog: &Program, f: &Func, summaries: &[FuncSummary]) -> FuncSummary {
    let mut w = Walker {
        prog,
        summaries,
        env: (0..f.num_slots).map(|_| Abs::Other).collect(),
        loops: Vec::new(),
        weight: 1.0,
        phase: PhaseCounter::start(),
        guard: None,
        // Within a non-main function the parallel-ness is inherited from
        // the call site; the flag here only matters for `main` itself.
        in_parallel: false,
        held: Vec::new(),
        mismatches: Vec::new(),
        out: Vec::new(),
    };
    // Formals are symbolic slots.
    for i in 0..f.params.len() {
        w.env[i] = Abs::Lin(Lin::slot(i as u32));
    }
    w.walk_block(&f.body);
    FuncSummary {
        accesses: w.out,
        phase_lo_delta: w.phase.lo,
        phase_unbounded: w.phase.current().is_unbounded(),
        exit_locks: w.held,
        barrier_mismatches: w.mismatches,
    }
}

/// Run the full interprocedural summary analysis.
pub fn summarize(prog: &Program, graph: &CallGraph) -> Result<ProgramSummary, Error> {
    let mut summaries: Vec<FuncSummary> = vec![FuncSummary::default(); prog.funcs.len()];
    for &fid in &graph.bottom_up {
        let s = summarize_func(prog, prog.func(fid), &summaries);
        summaries[fid.index()] = s;
    }
    let main = prog.main.expect("checked program has main");
    let main_summary = &summaries[main.index()];

    // Finalize: every remaining slot must be the PDV; resolve guards.
    let mut accesses = Vec::with_capacity(main_summary.accesses.len());
    let mut write_phases: BTreeMap<ObjId, PhaseSpan> = BTreeMap::new();
    for acc in &main_summary.accesses {
        let sections: Vec<Section> = acc.sections.iter().map(finalize_section).collect();
        let procs = if acc.serial {
            // Serial prologue/epilogue: only the spawning process runs it.
            ProcCond::One(0)
        } else {
            match &acc.guard {
                None => ProcCond::All,
                Some((l, c)) => {
                    if l.is_exactly_pdv() {
                        ProcCond::One(*c)
                    } else if l.is_pdv_affine() && l.pdv_coef() != 0 {
                        // a·pid + b == c → pid == (c-b)/a when divisible.
                        let a = l.pdv_coef();
                        let b = l.c0;
                        if (c - b) % a == 0 {
                            ProcCond::One((c - b) / a)
                        } else {
                            ProcCond::All
                        }
                    } else {
                        ProcCond::All
                    }
                }
            }
        };
        if acc.is_write {
            write_phases
                .entry(acc.obj)
                .and_modify(|p| *p = p.join(acc.phase))
                .or_insert(acc.phase);
        }
        // Lock-array element indices must be PDV-affine to be compared
        // across processes; anything else degrades to Unknown (held, but
        // incomparable by element).
        let locks: Vec<LockSym> = acc
            .locks
            .iter()
            .map(|l| match &l.idx {
                LockIdx::Lin(lin) if !lin.is_pdv_affine() => LockSym {
                    obj: l.obj,
                    idx: LockIdx::Unknown,
                },
                _ => l.clone(),
            })
            .collect();
        accesses.push(FinalAccess {
            obj: acc.obj,
            field: acc.field,
            is_write: acc.is_write,
            rsd: Rsd {
                sections,
                weight: acc.weight,
                phase: acc.phase,
                procs,
                inner_stride: acc.inner_stride,
            },
            locks,
            residue: acc.residue,
            serial: acc.serial,
            span: acc.span,
        });
    }
    let barrier_mismatches: Vec<Span> = summaries
        .iter()
        .flat_map(|s| s.barrier_mismatches.iter().copied())
        .collect();
    Ok(ProgramSummary {
        accesses,
        write_phases,
        barrier_mismatches,
        rel: crate::rel::compute(prog, crate::nproc_of(prog).unwrap_or(1)),
    })
}

/// Degrade any section whose bounds still reference non-PDV slots.
fn finalize_section(s: &Section) -> Section {
    let ok_lin = |l: &Lin| l.is_pdv_affine();
    // Partition bounds may be indexed `pid + c` (e.g. `first[p+1]`); the
    // disjointness assumption covers any monotone partition array, so a
    // unit PDV coefficient suffices.
    let ok_bound = |b: &Bound| match b {
        Bound::Lin(l) => ok_lin(l),
        Bound::Sym { idx, .. } => idx.is_pdv_affine() && idx.pdv_coef() == 1,
    };
    match s {
        Section::Elem(b) if ok_bound(b) => s.clone(),
        Section::Range { lo, hi, .. } if ok_bound(lo) && ok_bound(hi) => s.clone(),
        Section::All => Section::All,
        _ => Section::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn summary(src: &str) -> ProgramSummary {
        let prog = fsr_lang::compile(src).unwrap();
        let g = callgraph::build(&prog).unwrap();
        summarize(&prog, &g).unwrap()
    }

    fn accesses_of<'a>(
        s: &'a ProgramSummary,
        prog: &fsr_lang::Program,
        name: &str,
    ) -> Vec<&'a FinalAccess> {
        let (oid, _) = prog.object_by_name(name).unwrap();
        s.accesses.iter().filter(|a| a.obj == oid).collect()
    }

    #[test]
    fn direct_pdv_index_becomes_pdv_elem() {
        let src = "param NPROC = 4; shared int a[NPROC];
                   fn main() { forall p in 0 .. NPROC { a[p] = a[p] + 1; } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        assert_eq!(accs.len(), 2); // one read, one write
        for a in accs {
            match &a.rsd.sections[0] {
                Section::Elem(Bound::Lin(l)) => assert!(l.is_exactly_pdv()),
                other => panic!("expected pdv elem, got {other:?}"),
            }
        }
    }

    #[test]
    fn pdv_flows_through_calls() {
        let src = "param NPROC = 4; shared int a[NPROC];
                   fn work(int me) { a[me] = 1; }
                   fn main() { forall p in 0 .. NPROC { work(p); } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        assert_eq!(accs.len(), 1);
        match &accs[0].rsd.sections[0] {
            Section::Elem(Bound::Lin(l)) => assert!(l.is_exactly_pdv()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn affine_pdv_expression_through_call() {
        let src = "param NPROC = 4; shared int a[64];
                   fn work(int base) { a[base + 1] = 1; }
                   fn main() { forall p in 0 .. NPROC { work(p * 2); } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        match &accs[0].rsd.sections[0] {
            Section::Elem(Bound::Lin(l)) => {
                assert_eq!(l.pdv_coef(), 2);
                assert_eq!(l.c0, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_expands_to_range_with_trip_weight() {
        let src = "param NPROC = 4; shared int a[64];
                   fn main() { forall p in 0 .. NPROC {
                       var i;
                       for i in 0 .. 16 { a[i] = 0; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        assert_eq!(accs.len(), 1);
        let a = accs[0];
        assert!((a.rsd.weight - 16.0).abs() < 1e-9);
        match &a.rsd.sections[0] {
            Section::Range { lo, hi, stride } => {
                assert_eq!(lo, &Bound::constant(0));
                assert_eq!(hi, &Bound::constant(15));
                assert_eq!(*stride, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(a.rsd.inner_stride, Some(1));
    }

    #[test]
    fn chunked_partition_range() {
        // a[p*16 .. p*16+16): classic blocked decomposition.
        let src = "param NPROC = 4; shared int a[64];
                   fn main() { forall p in 0 .. NPROC {
                       var i;
                       for i in p * 16 .. p * 16 + 16 { a[i] = 0; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        match &accs[0].rsd.sections[0] {
            Section::Range { lo, hi, stride } => {
                let Bound::Lin(lo) = lo else { panic!() };
                let Bound::Lin(hi) = hi else { panic!() };
                assert_eq!(lo.pdv_coef(), 16);
                assert_eq!(lo.c0, 0);
                assert_eq!(hi.pdv_coef(), 16);
                assert_eq!(hi.c0, 15);
                assert_eq!(*stride, 1);
            }
            other => panic!("{other:?}"),
        }
        // Disjoint across pids.
        let r = &accs[0].rsd;
        assert!(!r.overlaps_for(0, r, 1, &[64], false));
    }

    #[test]
    fn interleaved_access_keeps_stride() {
        // a[i*NPROC + p]: cyclic decomposition, stride NPROC.
        let src = "param NPROC = 4; shared int a[64];
                   fn main() { forall p in 0 .. NPROC {
                       var i;
                       for i in 0 .. 16 { a[i * NPROC + p] = 0; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        match &accs[0].rsd.sections[0] {
            Section::Range { stride, .. } => assert_eq!(*stride, 4),
            other => panic!("{other:?}"),
        }
        let r = &accs[0].rsd;
        assert!(!r.overlaps_for(0, r, 1, &[64], false));
        assert_eq!(r.inner_stride, Some(4));
    }

    #[test]
    fn partition_array_bounds_become_symbolic() {
        let src = "param NPROC = 4; shared int first[NPROC+1]; shared int data[256];
                   fn main() { forall p in 0 .. NPROC {
                       var i;
                       for i in first[p] .. first[p + 1] { data[i] = 1; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "data");
        match &accs[0].rsd.sections[0] {
            Section::Range { lo, hi, .. } => {
                assert!(matches!(lo, Bound::Sym { .. }));
                assert!(matches!(hi, Bound::Sym { .. }));
            }
            other => panic!("{other:?}"),
        }
        // Reads of the partition array itself are recorded.
        assert!(!accesses_of(&s, &prog, "first").is_empty());
    }

    #[test]
    fn guard_pid_eq_zero_restricts_procs() {
        let src = "param NPROC = 4; shared int a[64];
                   fn main() { forall p in 0 .. NPROC {
                       if (p == 0) { var i; for i in 0 .. 64 { a[i] = 0; } }
                       barrier;
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        assert_eq!(accs[0].rsd.procs, ProcCond::One(0));
    }

    #[test]
    fn barrier_advances_phase() {
        let src = "param NPROC = 2; shared int a; shared int b;
                   fn main() { forall p in 0 .. NPROC {
                       a = 1;
                       barrier;
                       b = 2;
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let pa = accesses_of(&s, &prog, "a")[0].rsd.phase;
        let pb = accesses_of(&s, &prog, "b")[0].rsd.phase;
        assert!(pa.strictly_before(pb));
        // Phase 1 = first parallel phase (0 is the serial prologue).
        assert_eq!(pa, PhaseSpan::point(1));
        assert_eq!(pb, PhaseSpan::point(2));
    }

    #[test]
    fn barrier_in_loop_widens_phases() {
        let src = "param NPROC = 2; shared int a;
                   fn main() { forall p in 0 .. NPROC {
                       var t;
                       for t in 0 .. 10 { a = t; barrier; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let pa = accesses_of(&s, &prog, "a")[0].rsd.phase;
        assert!(pa.is_unbounded());
    }

    #[test]
    fn serial_prologue_is_proc_zero_phase_zero() {
        let src = "param NPROC = 2; shared int a[64];
                   fn main() {
                       var i;
                       for i in 0 .. 64 { a[i] = 0; }
                       forall p in 0 .. NPROC { a[p] = 1; }
                   }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "a");
        let init = accs
            .iter()
            .find(|a| matches!(a.rsd.sections[0], Section::Range { .. }))
            .unwrap();
        assert_eq!(init.rsd.phase, PhaseSpan::point(0));
        // Serial-prologue writes happen with no guard, but only the
        // spawning process runs them; represented via write_phases for
        // partition validation rather than a proc guard.
        let par = accs
            .iter()
            .find(|a| matches!(a.rsd.sections[0], Section::Elem(_)))
            .unwrap();
        assert_eq!(par.rsd.phase, PhaseSpan::point(1));
    }

    #[test]
    fn callee_barriers_shift_caller_phases() {
        let src = "param NPROC = 2; shared int a; shared int b;
                   fn sync_work() { a = 1; barrier; }
                   fn main() { forall p in 0 .. NPROC {
                       sync_work();
                       b = 1;
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let pa = accesses_of(&s, &prog, "a")[0].rsd.phase;
        let pb = accesses_of(&s, &prog, "b")[0].rsd.phase;
        assert!(pa.strictly_before(pb));
    }

    #[test]
    fn branch_halves_weight() {
        let src = "param NPROC = 2; shared int a;
                   fn main() { forall p in 0 .. NPROC {
                       if (prand(p) > 0) { a = 1; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let a = accesses_of(&s, &prog, "a")[0];
        assert!((a.rsd.weight - 0.5).abs() < 1e-9);
    }

    #[test]
    fn data_dependent_index_is_unknown() {
        let src = "param NPROC = 2; shared int a[64];
                   fn main() { forall p in 0 .. NPROC {
                       a[prand(p) % 64] = 1;
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let a = accesses_of(&s, &prog, "a")[0];
        assert_eq!(a.rsd.sections[0], Section::Unknown);
    }

    #[test]
    fn two_dim_pdv_minor_detected() {
        // a[i][p]: PDV in the minor dimension — the transposable shape.
        let src = "param NPROC = 4; shared int a[16][NPROC];
                   fn main() { forall p in 0 .. NPROC {
                       var i;
                       for i in 0 .. 16 { a[i][p] = a[i][p] + 1; }
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let a = accesses_of(&s, &prog, "a")[0];
        assert!(matches!(a.rsd.sections[0], Section::Range { .. }));
        match &a.rsd.sections[1] {
            Section::Elem(Bound::Lin(l)) => assert!(l.is_exactly_pdv()),
            other => panic!("{other:?}"),
        }
        // Disjoint across pids thanks to dim 1.
        assert!(!a.rsd.overlaps_for(0, &a.rsd, 1, &[16, 4], false));
    }

    #[test]
    fn struct_field_accesses_keyed_by_field() {
        let src = "param NPROC = 2; struct Node { int val; int owner; }
                   shared Node nodes[8];
                   fn main() { forall p in 0 .. NPROC {
                       nodes[p].val = 1;
                       nodes[p].owner = p;
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let (oid, _) = prog.object_by_name("nodes").unwrap();
        let fields: Vec<Option<FieldId>> = s
            .accesses
            .iter()
            .filter(|a| a.obj == oid)
            .map(|a| a.field)
            .collect();
        assert!(fields.contains(&Some(FieldId(0))));
        assert!(fields.contains(&Some(FieldId(1))));
    }

    #[test]
    fn lock_recorded_as_write() {
        let src = "param NPROC = 2; shared lock lk[NPROC]; shared int a;
                   fn main() { forall p in 0 .. NPROC {
                       lock(lk[p]); a = a + 1; unlock(lk[p]);
                   } }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let accs = accesses_of(&s, &prog, "lk");
        assert_eq!(accs.len(), 2);
        assert!(accs.iter().all(|a| a.is_write));
    }

    #[test]
    fn write_phase_hull_recorded() {
        let src = "param NPROC = 2; shared int part[4]; shared int d[16];
                   fn main() {
                       part[0] = 0;
                       forall p in 0 .. NPROC { d[p] = part[p]; }
                   }";
        let prog = fsr_lang::compile(src).unwrap();
        let s = summary(src);
        let (pid_obj, _) = prog.object_by_name("part").unwrap();
        let wp = s.write_phases.get(&pid_obj).unwrap();
        assert_eq!(*wp, PhaseSpan::point(0));
    }
}
