//! Linear (affine) forms over function formals and the PDV.
//!
//! Index expressions in PSL are summarized as affine combinations
//! `c0 + Σ ci·slot_i` of function-local slots (formals, loop variables,
//! affine-valued locals) plus constants. During interprocedural
//! propagation, slots are substituted with the affine form of the actual
//! argument at each call site; in a fully substituted form the only slot
//! that may remain is the `forall` induction variable — the process
//! differentiating variable (PDV) — at which point the form reduces to
//! `c0 + c_pdv·pid`.

use std::collections::BTreeMap;
use std::fmt;

/// Sentinel slot id used for the PDV after full interprocedural
/// substitution. Real local slots are function-scoped and never compared
/// across functions, so a reserved id is safe.
pub const PDV_SLOT: u32 = u32::MAX;

/// An affine form `c0 + Σ coef·slot`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lin {
    pub c0: i64,
    /// slot -> coefficient; zero coefficients are never stored.
    pub coefs: BTreeMap<u32, i64>,
}

impl Lin {
    pub fn constant(c: i64) -> Lin {
        Lin {
            c0: c,
            coefs: BTreeMap::new(),
        }
    }

    pub fn slot(s: u32) -> Lin {
        let mut coefs = BTreeMap::new();
        coefs.insert(s, 1);
        Lin { c0: 0, coefs }
    }

    /// The PDV itself (`pid`).
    pub fn pdv() -> Lin {
        Lin::slot(PDV_SLOT)
    }

    pub fn is_constant(&self) -> bool {
        self.coefs.is_empty()
    }

    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.c0)
    }

    /// True when the form is `c0 + c·pid` (no other slots).
    pub fn is_pdv_affine(&self) -> bool {
        self.coefs.keys().all(|&s| s == PDV_SLOT)
    }

    /// Coefficient of the PDV (0 when absent).
    pub fn pdv_coef(&self) -> i64 {
        self.coefs.get(&PDV_SLOT).copied().unwrap_or(0)
    }

    /// True when the form mentions the PDV.
    pub fn depends_on_pdv(&self) -> bool {
        self.pdv_coef() != 0
    }

    /// True when the form is exactly `pid`.
    pub fn is_exactly_pdv(&self) -> bool {
        self.c0 == 0 && self.coefs.len() == 1 && self.pdv_coef() == 1
    }

    /// Evaluate with the PDV bound to `pid`. `None` if other slots remain.
    pub fn eval_pdv(&self, pid: i64) -> Option<i64> {
        if !self.is_pdv_affine() {
            return None;
        }
        Some(self.c0.wrapping_add(self.pdv_coef().wrapping_mul(pid)))
    }

    pub fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        out.c0 = out.c0.wrapping_add(other.c0);
        for (&s, &c) in &other.coefs {
            let e = out.coefs.entry(s).or_insert(0);
            *e = e.wrapping_add(c);
            if *e == 0 {
                out.coefs.remove(&s);
            }
        }
        out
    }

    pub fn neg(&self) -> Lin {
        Lin {
            c0: self.c0.wrapping_neg(),
            coefs: self
                .coefs
                .iter()
                .map(|(&s, &c)| (s, c.wrapping_neg()))
                .collect(),
        }
    }

    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.neg())
    }

    pub fn scale(&self, k: i64) -> Lin {
        if k == 0 {
            return Lin::constant(0);
        }
        Lin {
            c0: self.c0.wrapping_mul(k),
            coefs: self
                .coefs
                .iter()
                .map(|(&s, &c)| (s, c.wrapping_mul(k)))
                .collect(),
        }
    }

    /// Multiply two forms; linear only if at least one is constant.
    pub fn mul(&self, other: &Lin) -> Option<Lin> {
        if let Some(k) = self.as_constant() {
            Some(other.scale(k))
        } else {
            other.as_constant().map(|k| self.scale(k))
        }
    }

    /// Substitute `slot` with `repl` (used at call sites: formal -> actual).
    pub fn subst(&self, slot: u32, repl: &Lin) -> Lin {
        match self.coefs.get(&slot) {
            None => self.clone(),
            Some(&c) => {
                let mut base = self.clone();
                base.coefs.remove(&slot);
                base.add(&repl.scale(c))
            }
        }
    }

    /// Substitute every slot via the mapping; slots missing from the map
    /// yield `None` (the form cannot be expressed in the caller's frame).
    pub fn subst_all(&self, map: &BTreeMap<u32, Lin>) -> Option<Lin> {
        let mut out = Lin::constant(self.c0);
        for (&s, &c) in &self.coefs {
            let repl = map.get(&s)?;
            out = out.add(&repl.scale(c));
        }
        Some(out)
    }
}

impl fmt::Display for Lin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.c0 != 0 || self.coefs.is_empty() {
            write!(f, "{}", self.c0)?;
            first = false;
        }
        for (&s, &c) in &self.coefs {
            let name = if s == PDV_SLOT {
                "pid".to_string()
            } else {
                format!("s{s}")
            };
            if first {
                if c == 1 {
                    write!(f, "{name}")?;
                } else {
                    write!(f, "{c}*{name}")?;
                }
                first = false;
            } else if c == 1 {
                write!(f, "+{name}")?;
            } else if c == -1 {
                write!(f, "-{name}")?;
            } else if c < 0 {
                write!(f, "{c}*{name}")?;
            } else {
                write!(f, "+{c}*{name}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_arithmetic() {
        let a = Lin::constant(3);
        let b = Lin::constant(4);
        assert_eq!(a.add(&b).as_constant(), Some(7));
        assert_eq!(a.sub(&b).as_constant(), Some(-1));
        assert_eq!(a.mul(&b).unwrap().as_constant(), Some(12));
    }

    #[test]
    fn slot_coefficients_combine_and_cancel() {
        let x = Lin::slot(1);
        let e = x.scale(3).add(&x.scale(-3));
        assert!(e.is_constant());
        assert_eq!(e.as_constant(), Some(0));
    }

    #[test]
    fn mul_nonlinear_is_none() {
        let x = Lin::slot(1);
        assert!(x.mul(&x).is_none());
    }

    #[test]
    fn pdv_predicates() {
        let p = Lin::pdv();
        assert!(p.is_exactly_pdv());
        assert!(p.is_pdv_affine());
        assert_eq!(p.pdv_coef(), 1);
        let e = p.scale(2).add(&Lin::constant(5));
        assert!(!e.is_exactly_pdv());
        assert!(e.is_pdv_affine());
        assert_eq!(e.eval_pdv(3), Some(11));
        let mixed = e.add(&Lin::slot(2));
        assert!(!mixed.is_pdv_affine());
        assert_eq!(mixed.eval_pdv(3), None);
    }

    #[test]
    fn substitution_replaces_formal_with_actual() {
        // f(x) accesses a[2x+1]; call site passes x = pid+3.
        let idx = Lin::slot(0).scale(2).add(&Lin::constant(1));
        let actual = Lin::pdv().add(&Lin::constant(3));
        let out = idx.subst(0, &actual);
        // 2(pid+3)+1 = 2pid+7
        assert_eq!(out.pdv_coef(), 2);
        assert_eq!(out.c0, 7);
    }

    #[test]
    fn subst_all_fails_on_unmapped_slot() {
        let e = Lin::slot(0).add(&Lin::slot(1));
        let mut map = BTreeMap::new();
        map.insert(0, Lin::constant(1));
        assert!(e.subst_all(&map).is_none());
        map.insert(1, Lin::pdv());
        let r = e.subst_all(&map).unwrap();
        assert_eq!(r.c0, 1);
        assert_eq!(r.pdv_coef(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lin::constant(0).to_string(), "0");
        assert_eq!(Lin::pdv().to_string(), "pid");
        let e = Lin::pdv().scale(2).add(&Lin::constant(7));
        assert_eq!(e.to_string(), "7+2*pid");
    }
}
