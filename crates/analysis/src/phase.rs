//! Phase spans for non-concurrency analysis (stage 2).
//!
//! Barrier synchronization splits an SPMD program into *phases* that
//! cannot execute concurrently: everything before barrier k happens
//! before everything after it, on every process. Statically, each
//! statement is assigned a span of phases it may execute in. Straight-line
//! code gets a point span; code inside barrier-containing loops gets a
//! widened span (the loop body repeats across phases).
//!
//! Phase 0 is the serial prologue (code before the `forall`, executed by
//! the spawning process); the forall entry acts as an implicit barrier
//! starting phase 1.

use std::fmt;

/// Saturating upper bound used for "repeats indefinitely" (loops whose
/// barrier count per iteration is non-zero but whose trip count is
/// unknown).
pub const PHASE_MAX: u32 = u32::MAX;

/// An inclusive range of phase indices a statement may execute in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSpan {
    pub lo: u32,
    pub hi: u32,
}

impl PhaseSpan {
    pub fn point(p: u32) -> PhaseSpan {
        PhaseSpan { lo: p, hi: p }
    }

    pub fn new(lo: u32, hi: u32) -> PhaseSpan {
        debug_assert!(lo <= hi);
        PhaseSpan { lo, hi }
    }

    /// Union (convex hull).
    pub fn join(self, other: PhaseSpan) -> PhaseSpan {
        PhaseSpan {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// True when every phase in `self` is strictly before every phase in
    /// `other` — the non-concurrency guarantee used to validate partition
    /// assumptions ("written in a setup phase that completes before any
    /// use").
    pub fn strictly_before(self, other: PhaseSpan) -> bool {
        self.hi < other.lo
    }

    /// Can the two spans ever be the same phase?
    pub fn may_overlap(self, other: PhaseSpan) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    pub fn is_unbounded(self) -> bool {
        self.hi == PHASE_MAX
    }
}

impl fmt::Display for PhaseSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else if self.hi == PHASE_MAX {
            write!(f, "{}..∞", self.lo)
        } else {
            write!(f, "{}..{}", self.lo, self.hi)
        }
    }
}

/// Tracks the phase counter during the summary walk. Barriers advance the
/// counter; loops with interior barriers widen it to an unbounded span.
#[derive(Debug, Clone, Copy)]
pub struct PhaseCounter {
    /// Lowest phase the walker may currently be in.
    pub lo: u32,
    /// Highest phase the walker may currently be in.
    pub hi: u32,
}

impl PhaseCounter {
    pub fn start() -> PhaseCounter {
        PhaseCounter { lo: 0, hi: 0 }
    }

    pub fn current(&self) -> PhaseSpan {
        PhaseSpan {
            lo: self.lo,
            hi: self.hi,
        }
    }

    /// Cross a barrier.
    pub fn barrier(&mut self) {
        self.lo = self.lo.saturating_add(1);
        self.hi = self.hi.saturating_add(1);
    }

    /// Enter/exit a loop whose body contains barriers: once the loop may
    /// repeat, the phase is only bounded below.
    pub fn widen(&mut self) {
        self.hi = PHASE_MAX;
    }

    /// Merge two control-flow arms (if/else).
    pub fn join(&mut self, other: PhaseCounter) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_join() {
        let a = PhaseSpan::point(1);
        let b = PhaseSpan::point(3);
        assert_eq!(a.join(b), PhaseSpan::new(1, 3));
    }

    #[test]
    fn strictly_before_semantics() {
        assert!(PhaseSpan::point(1).strictly_before(PhaseSpan::point(2)));
        assert!(!PhaseSpan::point(2).strictly_before(PhaseSpan::point(2)));
        assert!(!PhaseSpan::new(1, 3).strictly_before(PhaseSpan::new(3, 4)));
        assert!(PhaseSpan::new(1, 2).strictly_before(PhaseSpan::new(3, PHASE_MAX)));
    }

    #[test]
    fn overlap_checks() {
        assert!(PhaseSpan::new(1, 3).may_overlap(PhaseSpan::new(3, 5)));
        assert!(!PhaseSpan::new(1, 2).may_overlap(PhaseSpan::new(3, 5)));
    }

    #[test]
    fn counter_barrier_advances() {
        let mut c = PhaseCounter::start();
        c.barrier();
        c.barrier();
        assert_eq!(c.current(), PhaseSpan::point(2));
    }

    #[test]
    fn counter_widen_saturates() {
        let mut c = PhaseCounter::start();
        c.barrier();
        c.widen();
        assert!(c.current().is_unbounded());
        c.barrier(); // saturates, no overflow
        assert!(c.current().is_unbounded());
        assert_eq!(c.current().lo, 2);
    }

    #[test]
    fn counter_join_merges_arms() {
        let mut a = PhaseCounter { lo: 2, hi: 2 };
        let b = PhaseCounter { lo: 4, hi: 5 };
        a.join(b);
        assert_eq!(a.lo, 2);
        assert_eq!(a.hi, 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhaseSpan::point(3).to_string(), "3");
        assert_eq!(PhaseSpan::new(1, 4).to_string(), "1..4");
        assert_eq!(PhaseSpan::new(1, PHASE_MAX).to_string(), "1..∞");
    }
}
