//! Phase spans for non-concurrency analysis (stage 2).
//!
//! Barrier synchronization splits an SPMD program into *phases* that
//! cannot execute concurrently: everything before barrier k happens
//! before everything after it, on every process. Statically, each
//! statement is assigned a span of phases it may execute in. Straight-line
//! code gets a point span; code inside barrier-containing loops gets a
//! widened span (the loop body repeats across phases).
//!
//! Phase 0 is the serial prologue (code before the `forall`, executed by
//! the spawning process); the forall entry acts as an implicit barrier
//! starting phase 1.

use fsr_lang::ast::{Block, Callee, Expr, ExprKind, Program, StmtKind};
use std::fmt;

/// Saturating upper bound used for "repeats indefinitely" (loops whose
/// barrier count per iteration is non-zero but whose trip count is
/// unknown).
pub const PHASE_MAX: u32 = u32::MAX;

/// An inclusive range of phase indices a statement may execute in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSpan {
    pub lo: u32,
    pub hi: u32,
}

impl PhaseSpan {
    pub fn point(p: u32) -> PhaseSpan {
        PhaseSpan { lo: p, hi: p }
    }

    pub fn new(lo: u32, hi: u32) -> PhaseSpan {
        debug_assert!(lo <= hi);
        PhaseSpan { lo, hi }
    }

    /// Union (convex hull).
    pub fn join(self, other: PhaseSpan) -> PhaseSpan {
        PhaseSpan {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// True when every phase in `self` is strictly before every phase in
    /// `other` — the non-concurrency guarantee used to validate partition
    /// assumptions ("written in a setup phase that completes before any
    /// use").
    pub fn strictly_before(self, other: PhaseSpan) -> bool {
        self.hi < other.lo
    }

    /// Can the two spans ever be the same phase?
    pub fn may_overlap(self, other: PhaseSpan) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    pub fn is_unbounded(self) -> bool {
        self.hi == PHASE_MAX
    }
}

impl fmt::Display for PhaseSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else if self.hi == PHASE_MAX {
            write!(f, "{}..∞", self.lo)
        } else {
            write!(f, "{}..{}", self.lo, self.hi)
        }
    }
}

/// Tracks the phase counter during the summary walk. Barriers advance the
/// counter; loops with interior barriers widen it to an unbounded span.
#[derive(Debug, Clone, Copy)]
pub struct PhaseCounter {
    /// Lowest phase the walker may currently be in.
    pub lo: u32,
    /// Highest phase the walker may currently be in.
    pub hi: u32,
}

impl PhaseCounter {
    pub fn start() -> PhaseCounter {
        PhaseCounter { lo: 0, hi: 0 }
    }

    pub fn current(&self) -> PhaseSpan {
        PhaseSpan {
            lo: self.lo,
            hi: self.hi,
        }
    }

    /// Cross a barrier.
    pub fn barrier(&mut self) {
        self.lo = self.lo.saturating_add(1);
        self.hi = self.hi.saturating_add(1);
    }

    /// Enter/exit a loop whose body contains barriers: once the loop may
    /// repeat, the phase is only bounded below.
    pub fn widen(&mut self) {
        self.hi = PHASE_MAX;
    }

    /// Merge two control-flow arms (if/else).
    pub fn join(&mut self, other: PhaseCounter) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
    }
}

/// Static barrier structure of a program — what the batch driver needs
/// to pick a trace-segmentation policy. Reuses the same [`PhaseCounter`]
/// walk as the non-concurrency pass (stage 2), so the phase arithmetic
/// cannot drift from the analysis the transformations trust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Barrier statements in the program (static count).
    pub num_barriers: u32,
    /// Phase span at the end of `main` — its `lo` is a lower bound on
    /// the number of dynamic phases every run crosses.
    pub static_phases: PhaseSpan,
    /// Whether any barrier executes inside a loop: the dynamic phase
    /// count then exceeds the static one (span widened to ∞).
    pub barriers_in_loops: bool,
}

impl PhaseProfile {
    /// Whether a trace of this program can split into more than one
    /// phase segment at barrier boundaries.
    pub fn splittable(&self) -> bool {
        self.num_barriers > 0
    }

    /// Lower bound on the number of phase segments in any trace (phases
    /// are segments: one more than the barriers crossed).
    pub fn min_segments(&self) -> u32 {
        self.static_phases.lo.saturating_add(1)
    }
}

/// Compute the [`PhaseProfile`] of a checked program by walking `main`
/// with the stage-2 [`PhaseCounter`]. Calls are handled transitively at
/// statement and expression level: a call that may reach a barrier
/// widens the span (the callee's barriers execute at an unknown static
/// offset).
pub fn phase_profile(prog: &Program) -> PhaseProfile {
    // Transitive "may execute a barrier" per function, to fixpoint.
    let mut has = vec![false; prog.funcs.len()];
    loop {
        let mut changed = false;
        for i in 0..prog.funcs.len() {
            if !has[i] && block_reaches_barrier(&prog.funcs[i].body, &has) {
                has[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut c = PhaseCounter::start();
    let mut in_loops = false;
    if let Some(main) = prog.main {
        walk(&prog.func(main).body, &mut c, &has, &mut in_loops);
    }
    PhaseProfile {
        num_barriers: prog.num_barriers,
        static_phases: c.current(),
        barriers_in_loops: in_loops,
    }
}

fn walk(blk: &Block, c: &mut PhaseCounter, has: &[bool], in_loops: &mut bool) {
    for s in &blk.stmts {
        match &s.kind {
            StmtKind::Barrier { .. } => c.barrier(),
            StmtKind::Forall { body, .. } => {
                // Forall entry is the implicit barrier starting phase 1;
                // the join at exit is another.
                c.barrier();
                walk(body, c, has, in_loops);
                c.barrier();
            }
            StmtKind::While { cond, body } => {
                if expr_reaches_barrier(cond, has) {
                    c.widen();
                }
                if block_reaches_barrier(body, has) {
                    walk(body, c, has, in_loops);
                    c.widen();
                    *in_loops = true;
                }
            }
            StmtKind::For {
                lo, hi, step, body, ..
            } => {
                for e in [Some(lo), Some(hi), step.as_ref()].into_iter().flatten() {
                    if expr_reaches_barrier(e, has) {
                        c.widen();
                    }
                }
                if block_reaches_barrier(body, has) {
                    walk(body, c, has, in_loops);
                    c.widen();
                    *in_loops = true;
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if expr_reaches_barrier(cond, has) {
                    c.widen();
                }
                let mut a = *c;
                walk(then_blk, &mut a, has, in_loops);
                let mut b = *c;
                if let Some(e) = else_blk {
                    walk(e, &mut b, has, in_loops);
                }
                a.join(b);
                *c = a;
            }
            StmtKind::Block(b) => walk(b, c, has, in_loops),
            StmtKind::CallStmt { callee, args, .. } => {
                let callee_hits = matches!(callee, Some(Callee::User(f)) if has[f.index()]);
                if callee_hits || args.iter().any(|a| expr_reaches_barrier(a, has)) {
                    c.widen();
                }
            }
            StmtKind::Assign { value, .. } => {
                if expr_reaches_barrier(value, has) {
                    c.widen();
                }
            }
            StmtKind::VarDecl { init, .. } => {
                if init.as_ref().is_some_and(|e| expr_reaches_barrier(e, has)) {
                    c.widen();
                }
            }
            StmtKind::Return(Some(e)) => {
                if expr_reaches_barrier(e, has) {
                    c.widen();
                }
            }
            StmtKind::Return(None)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Lock { .. }
            | StmtKind::Unlock { .. } => {}
        }
    }
}

/// Whether executing `blk` may reach a barrier, given per-function
/// reachability computed so far.
fn block_reaches_barrier(blk: &Block, has: &[bool]) -> bool {
    blk.stmts.iter().any(|s| match &s.kind {
        StmtKind::Barrier { .. } => true,
        // Forall entry/exit are implicit barriers.
        StmtKind::Forall { .. } => true,
        StmtKind::While { cond, body } => {
            expr_reaches_barrier(cond, has) || block_reaches_barrier(body, has)
        }
        StmtKind::For {
            lo, hi, step, body, ..
        } => {
            [Some(lo), Some(hi), step.as_ref()]
                .into_iter()
                .flatten()
                .any(|e| expr_reaches_barrier(e, has))
                || block_reaches_barrier(body, has)
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            expr_reaches_barrier(cond, has)
                || block_reaches_barrier(then_blk, has)
                || else_blk
                    .as_ref()
                    .is_some_and(|b| block_reaches_barrier(b, has))
        }
        StmtKind::Block(b) => block_reaches_barrier(b, has),
        StmtKind::CallStmt { callee, args, .. } => {
            matches!(callee, Some(Callee::User(f)) if has[f.index()])
                || args.iter().any(|a| expr_reaches_barrier(a, has))
        }
        StmtKind::Assign { value, .. } => expr_reaches_barrier(value, has),
        StmtKind::VarDecl { init, .. } => {
            init.as_ref().is_some_and(|e| expr_reaches_barrier(e, has))
        }
        StmtKind::Return(Some(e)) => expr_reaches_barrier(e, has),
        StmtKind::Return(None)
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Lock { .. }
        | StmtKind::Unlock { .. } => false,
    })
}

fn expr_reaches_barrier(e: &Expr, has: &[bool]) -> bool {
    match &e.kind {
        ExprKind::Unary(_, a) => expr_reaches_barrier(a, has),
        ExprKind::Binary(_, a, b) => expr_reaches_barrier(a, has) || expr_reaches_barrier(b, has),
        ExprKind::Call(callee, args) => {
            matches!(callee, Callee::User(f) if has[f.index()])
                || args.iter().any(|a| expr_reaches_barrier(a, has))
        }
        ExprKind::CallNamed(_, args) => args.iter().any(|a| expr_reaches_barrier(a, has)),
        ExprKind::Int(_) | ExprKind::Path(_) | ExprKind::Var(_) | ExprKind::Load(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_join() {
        let a = PhaseSpan::point(1);
        let b = PhaseSpan::point(3);
        assert_eq!(a.join(b), PhaseSpan::new(1, 3));
    }

    #[test]
    fn strictly_before_semantics() {
        assert!(PhaseSpan::point(1).strictly_before(PhaseSpan::point(2)));
        assert!(!PhaseSpan::point(2).strictly_before(PhaseSpan::point(2)));
        assert!(!PhaseSpan::new(1, 3).strictly_before(PhaseSpan::new(3, 4)));
        assert!(PhaseSpan::new(1, 2).strictly_before(PhaseSpan::new(3, PHASE_MAX)));
    }

    #[test]
    fn overlap_checks() {
        assert!(PhaseSpan::new(1, 3).may_overlap(PhaseSpan::new(3, 5)));
        assert!(!PhaseSpan::new(1, 2).may_overlap(PhaseSpan::new(3, 5)));
    }

    #[test]
    fn counter_barrier_advances() {
        let mut c = PhaseCounter::start();
        c.barrier();
        c.barrier();
        assert_eq!(c.current(), PhaseSpan::point(2));
    }

    #[test]
    fn counter_widen_saturates() {
        let mut c = PhaseCounter::start();
        c.barrier();
        c.widen();
        assert!(c.current().is_unbounded());
        c.barrier(); // saturates, no overflow
        assert!(c.current().is_unbounded());
        assert_eq!(c.current().lo, 2);
    }

    #[test]
    fn counter_join_merges_arms() {
        let mut a = PhaseCounter { lo: 2, hi: 2 };
        let b = PhaseCounter { lo: 4, hi: 5 };
        a.join(b);
        assert_eq!(a.lo, 2);
        assert_eq!(a.hi, 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhaseSpan::point(3).to_string(), "3");
        assert_eq!(PhaseSpan::new(1, 4).to_string(), "1..4");
        assert_eq!(PhaseSpan::new(1, PHASE_MAX).to_string(), "1..∞");
    }

    #[test]
    fn profile_of_straight_line_program_is_unsplittable() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { c[p] = c[p] + 1; } }",
        )
        .unwrap();
        let pr = phase_profile(&prog);
        assert_eq!(pr.num_barriers, 0);
        assert!(!pr.splittable());
        assert!(!pr.barriers_in_loops);
        // Forall entry + exit: two implicit phase advances.
        assert_eq!(pr.static_phases, PhaseSpan::point(2));
    }

    #[test]
    fn profile_counts_straight_line_barriers() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC {
                 c[p] = 1; barrier; c[p] = 2; barrier; c[p] = 3;
             } }",
        )
        .unwrap();
        let pr = phase_profile(&prog);
        assert_eq!(pr.num_barriers, 2);
        assert!(pr.splittable());
        assert!(!pr.barriers_in_loops);
        assert_eq!(pr.static_phases, PhaseSpan::point(4));
        assert!(pr.min_segments() >= 4);
    }

    #[test]
    fn profile_widens_barriers_inside_loops() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC];
             fn main() { forall p in 0 .. NPROC { var i;
                 for i in 0 .. 10 { c[p] = c[p] + 1; barrier; }
             } }",
        )
        .unwrap();
        let pr = phase_profile(&prog);
        assert_eq!(pr.num_barriers, 1);
        assert!(pr.splittable());
        assert!(pr.barriers_in_loops);
        assert!(pr.static_phases.is_unbounded());
    }

    #[test]
    fn profile_tracks_barriers_through_calls() {
        let prog = fsr_lang::compile(
            "param NPROC = 4; shared int c[NPROC];
             fn advance(int p) { c[p] = c[p] + 1; barrier; }
             fn main() { forall p in 0 .. NPROC { advance(p); } }",
        )
        .unwrap();
        let pr = phase_profile(&prog);
        assert_eq!(pr.num_barriers, 1);
        assert!(pr.splittable());
        // A call that may reach a barrier widens the span.
        assert!(pr.static_phases.is_unbounded());
    }
}
