//! Call graph construction and bottom-up ordering.
//!
//! The interprocedural side-effect analysis processes functions in
//! reverse topological (callee-first) order, substituting callee
//! summaries into callers at each call site. PSL's analyzable subset
//! excludes recursion (the paper's restricted C model has none in
//! practice); recursive programs are rejected with a diagnostic.

use fsr_lang::ast::*;
use fsr_lang::diag::{Error, Span, Stage};
use std::collections::HashSet;

/// The call graph: `callees[f]` lists functions `f` calls (deduplicated).
#[derive(Debug, Clone)]
pub struct CallGraph {
    pub callees: Vec<Vec<FuncId>>,
    /// Functions in callee-before-caller order.
    pub bottom_up: Vec<FuncId>,
}

/// Build the call graph of a checked program and topologically order it.
pub fn build(prog: &Program) -> Result<CallGraph, Error> {
    let n = prog.funcs.len();
    let mut callees: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
    for (fi, f) in prog.funcs.iter().enumerate() {
        collect_block(&f.body, &mut callees[fi]);
    }
    let callees: Vec<Vec<FuncId>> = callees
        .into_iter()
        .map(|s| {
            let mut v: Vec<_> = s.into_iter().collect();
            v.sort();
            v
        })
        .collect();

    // Iterative DFS with cycle detection for the topological order.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark = vec![Mark::White; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if mark[root] != Mark::White {
            continue;
        }
        // stack of (node, next-callee-index)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        mark[root] = Mark::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < callees[node].len() {
                let child = callees[node][*next].index();
                *next += 1;
                match mark[child] {
                    Mark::White => {
                        mark[child] = Mark::Grey;
                        stack.push((child, 0));
                    }
                    Mark::Grey => {
                        return Err(Error::new(
                            Stage::Check,
                            format!(
                                "recursion involving `{}` is not supported by the analysis",
                                prog.funcs[child].name
                            ),
                            prog.funcs[child].span,
                        ));
                    }
                    Mark::Black => {}
                }
            } else {
                mark[node] = Mark::Black;
                order.push(FuncId(node as u32));
                stack.pop();
            }
        }
    }
    Ok(CallGraph {
        callees,
        bottom_up: order,
    })
}

fn collect_block(b: &Block, out: &mut HashSet<FuncId>) {
    for s in &b.stmts {
        collect_stmt(s, out);
    }
}

fn collect_stmt(s: &Stmt, out: &mut HashSet<FuncId>) {
    match &s.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                collect_expr(e, out);
            }
        }
        StmtKind::Assign { value, target } => {
            collect_expr(value, out);
            if let Target::Place(pl) = target {
                collect_place(pl, out);
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            collect_expr(cond, out);
            collect_block(then_blk, out);
            if let Some(e) = else_blk {
                collect_block(e, out);
            }
        }
        StmtKind::While { cond, body } => {
            collect_expr(cond, out);
            collect_block(body, out);
        }
        StmtKind::For {
            lo, hi, step, body, ..
        } => {
            collect_expr(lo, out);
            collect_expr(hi, out);
            if let Some(st) = step {
                collect_expr(st, out);
            }
            collect_block(body, out);
        }
        StmtKind::Forall { lo, hi, body, .. } => {
            collect_expr(lo, out);
            collect_expr(hi, out);
            collect_block(body, out);
        }
        StmtKind::CallStmt { callee, args, .. } => {
            if let Some(Callee::User(f)) = callee {
                out.insert(*f);
            }
            for a in args {
                collect_expr(a, out);
            }
        }
        StmtKind::Return(Some(e)) => collect_expr(e, out),
        StmtKind::Lock { target } | StmtKind::Unlock { target } => {
            if let Target::Place(pl) = target {
                collect_place(pl, out);
            }
        }
        StmtKind::Block(b) => collect_block(b, out),
        StmtKind::Barrier { .. }
        | StmtKind::Return(None)
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
}

fn collect_place(pl: &Place, out: &mut HashSet<FuncId>) {
    for e in &pl.idx {
        collect_expr(e, out);
    }
    if let Some((_, Some(e))) = &pl.field {
        collect_expr(e, out);
    }
}

fn collect_expr(e: &Expr, out: &mut HashSet<FuncId>) {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Var(_) => {}
        ExprKind::Load(pl) => collect_place(pl, out),
        ExprKind::Unary(_, a) => collect_expr(a, out),
        ExprKind::Binary(_, a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        ExprKind::Call(c, args) => {
            if let Callee::User(f) = c {
                out.insert(*f);
            }
            for a in args {
                collect_expr(a, out);
            }
        }
        ExprKind::Path(_) | ExprKind::CallNamed(..) => {
            unreachable!("call graph runs on checked programs")
        }
    }
}

/// Validate span for error reporting convenience.
pub fn _span_of(prog: &Program, f: FuncId) -> Span {
    prog.func(f).span
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Program {
        fsr_lang::compile(src).unwrap()
    }

    #[test]
    fn linear_chain_orders_callee_first() {
        let p = prog(
            "fn c() { barrier; } fn b() { c(); } fn a() { b(); }
             fn main() { forall p in 0..2 { a(); } }",
        );
        let g = build(&p).unwrap();
        let pos = |name: &str| {
            let (id, _) = p.func_by_name(name).unwrap();
            g.bottom_up.iter().position(|&f| f == id).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("main"));
    }

    #[test]
    fn diamond_is_fine() {
        let p = prog(
            "fn d() { barrier; } fn b() { d(); } fn c() { d(); } fn a() { b(); c(); }
             fn main() { forall p in 0..2 { a(); } }",
        );
        let g = build(&p).unwrap();
        assert_eq!(g.bottom_up.len(), 5);
    }

    #[test]
    fn calls_inside_expressions_counted() {
        let p = prog(
            "fn g() { return 1; } fn f() { var x = g() + g(); return x; }
             fn main() { forall p in 0..2 { var v = f(); } }",
        );
        let g_ = build(&p).unwrap();
        let (fid, _) = p.func_by_name("f").unwrap();
        let (gid, _) = p.func_by_name("g").unwrap();
        assert_eq!(g_.callees[fid.index()], vec![gid]);
    }

    #[test]
    fn rejects_direct_recursion() {
        let p = prog("fn f() { f(); } fn main() { forall p in 0..2 { f(); } }");
        let e = build(&p).unwrap_err();
        assert!(e.msg.contains("recursion"));
    }

    #[test]
    fn rejects_mutual_recursion() {
        let p = prog("fn f() { g(); } fn g() { f(); } fn main() { forall p in 0..2 { f(); } }");
        assert!(build(&p).is_err());
    }
}
