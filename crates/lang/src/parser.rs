//! Recursive-descent parser for PSL.

use crate::ast::*;
use crate::diag::{Error, Span, Stage};
use crate::token::{Spanned, Token};

/// Parser over a token stream (must end with [`Token::Eof`]).
pub struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    pub fn new(toks: Vec<Spanned>) -> Self {
        assert!(matches!(toks.last().map(|t| &t.tok), Some(Token::Eof)));
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<Span, Error> {
        if self.peek() == t {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{}`, found `{}`", t, self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(Stage::Parse, msg, self.span())
    }

    fn ident(&mut self) -> Result<(String, Span), Error> {
        match self.peek() {
            Token::Ident(_) => {
                let t = self.bump();
                if let Token::Ident(s) = t.tok {
                    Ok((s, t.span))
                } else {
                    unreachable!()
                }
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    /// Parse a complete program.
    pub fn program(mut self) -> Result<Program, Error> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Token::Eof => break,
                Token::KwParam => {
                    let span = self.bump().span;
                    let (name, _) = self.ident()?;
                    let default = if self.eat(&Token::Assign) {
                        let neg = self.eat(&Token::Minus);
                        match self.bump().tok {
                            Token::Int(v) => Some(if neg { -v } else { v }),
                            other => {
                                return Err(self.err(format!(
                                    "param default must be an integer literal, found `{other}`"
                                )))
                            }
                        }
                    } else {
                        None
                    };
                    self.expect(&Token::Semi)?;
                    prog.params.push(ParamDecl {
                        name,
                        default,
                        value: None,
                        span,
                    });
                }
                Token::KwConst => {
                    let span = self.bump().span;
                    let (name, _) = self.ident()?;
                    self.expect(&Token::Assign)?;
                    let expr = self.expr()?;
                    self.expect(&Token::Semi)?;
                    prog.consts.push(ConstDecl {
                        name,
                        expr,
                        value: None,
                        span,
                    });
                }
                Token::KwStruct => {
                    let s = self.struct_decl()?;
                    prog.structs.push(s);
                }
                Token::KwShared | Token::KwPrivate => {
                    let o = self.object_decl()?;
                    prog.objects.push(o);
                }
                Token::KwFn => {
                    let f = self.func_decl()?;
                    prog.funcs.push(f);
                }
                other => {
                    return Err(self.err(format!(
                        "expected item (param/const/struct/shared/private/fn), found `{other}`"
                    )))
                }
            }
        }
        Ok(prog)
    }

    fn struct_decl(&mut self) -> Result<StructDecl, Error> {
        let span = self.expect(&Token::KwStruct)?;
        let (name, _) = self.ident()?;
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Token::RBrace) {
            self.expect(&Token::KwInt)?;
            let (fname, fspan) = self.ident()?;
            let len_expr = if self.eat(&Token::LBracket) {
                let e = self.expr()?;
                self.expect(&Token::RBracket)?;
                Some(e)
            } else {
                None
            };
            self.expect(&Token::Semi)?;
            fields.push(FieldDecl {
                name: fname,
                len_expr,
                len: 0,
                offset_words: 0,
                span: fspan,
            });
        }
        Ok(StructDecl {
            name,
            fields,
            size_words: 0,
            span,
        })
    }

    fn object_decl(&mut self) -> Result<ObjectDecl, Error> {
        let shared = matches!(self.peek(), Token::KwShared);
        let span = self.bump().span;
        let (kind, elem_name) = match self.peek().clone() {
            Token::KwLock => {
                self.bump();
                if !shared {
                    return Err(self.err("locks must be `shared`"));
                }
                (ObjectKind::Lock, None)
            }
            Token::KwInt => {
                self.bump();
                (
                    if shared {
                        ObjectKind::SharedData
                    } else {
                        ObjectKind::PrivateData
                    },
                    None,
                )
            }
            Token::Ident(_) => {
                let (n, _) = self.ident()?;
                (
                    if shared {
                        ObjectKind::SharedData
                    } else {
                        ObjectKind::PrivateData
                    },
                    Some(n),
                )
            }
            other => return Err(self.err(format!("expected type, found `{other}`"))),
        };
        let (name, _) = self.ident()?;
        let mut dim_exprs = Vec::new();
        while self.eat(&Token::LBracket) {
            dim_exprs.push(self.expr()?);
            self.expect(&Token::RBracket)?;
            if dim_exprs.len() > 2 {
                return Err(self.err("at most 2 array dimensions are supported"));
            }
        }
        self.expect(&Token::Semi)?;
        Ok(ObjectDecl {
            name,
            kind,
            elem: ElemTy::Int, // patched by `check` for named struct types
            elem_name,
            dim_exprs,
            dims: vec![],
            span,
        })
    }

    fn func_decl(&mut self) -> Result<Func, Error> {
        let span = self.expect(&Token::KwFn)?;
        let (name, _) = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                self.expect(&Token::KwInt)?;
                let (p, _) = self.ident()?;
                params.push(p);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(&Token::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Func {
            name,
            params,
            body,
            num_slots: 0,
            slot_names: Vec::new(),
            returns_value: false,
            span,
        })
    }

    fn block(&mut self) -> Result<Block, Error> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Token::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Token::KwVar => {
                self.bump();
                let (name, _) = self.ident()?;
                let init = if self.eat(&Token::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Token::Semi)?;
                StmtKind::VarDecl {
                    name,
                    init,
                    slot: u32::MAX,
                }
            }
            Token::KwIf => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&Token::KwElse) {
                    if matches!(self.peek(), Token::KwIf) {
                        // `else if` sugar: wrap the nested if in a block.
                        let s = self.stmt()?;
                        Some(Block { stmts: vec![s] })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                }
            }
            Token::KwWhile => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            Token::KwFor | Token::KwForall => {
                let is_forall = matches!(self.peek(), Token::KwForall);
                self.bump();
                let (var, _) = self.ident()?;
                self.expect(&Token::KwIn)?;
                let lo = self.expr()?;
                self.expect(&Token::DotDot)?;
                let hi = self.expr()?;
                let step = if !is_forall && self.eat(&Token::KwStep) {
                    Some(self.expr()?)
                } else {
                    None
                };
                let body = self.block()?;
                if is_forall {
                    StmtKind::Forall {
                        var,
                        slot: u32::MAX,
                        lo,
                        hi,
                        body,
                    }
                } else {
                    StmtKind::For {
                        var,
                        slot: u32::MAX,
                        lo,
                        hi,
                        step,
                        body,
                    }
                }
            }
            Token::KwBarrier => {
                self.bump();
                self.expect(&Token::Semi)?;
                StmtKind::Barrier { id: u32::MAX }
            }
            Token::KwLock | Token::KwUnlock => {
                let is_lock = matches!(self.peek(), Token::KwLock);
                self.bump();
                self.expect(&Token::LParen)?;
                let path = self.path()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Semi)?;
                let target = Target::Path(path);
                if is_lock {
                    StmtKind::Lock { target }
                } else {
                    StmtKind::Unlock { target }
                }
            }
            Token::KwReturn => {
                self.bump();
                let e = if self.peek() == &Token::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Token::Semi)?;
                StmtKind::Return(e)
            }
            Token::KwBreak => {
                self.bump();
                self.expect(&Token::Semi)?;
                StmtKind::Break
            }
            Token::KwContinue => {
                self.bump();
                self.expect(&Token::Semi)?;
                StmtKind::Continue
            }
            Token::LBrace => StmtKind::Block(self.block()?),
            Token::Ident(_) => {
                // Either a call statement `f(a,b);` or an assignment
                // `path = e;`.
                if matches!(self.peek2(), Token::LParen) {
                    let (name, _) = self.ident()?;
                    self.expect(&Token::LParen)?;
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma)?;
                        }
                    }
                    self.expect(&Token::Semi)?;
                    StmtKind::CallStmt {
                        callee: None,
                        name,
                        args,
                    }
                } else {
                    let path = self.path()?;
                    self.expect(&Token::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    StmtKind::Assign {
                        target: Target::Path(path),
                        value,
                    }
                }
            }
            other => return Err(self.err(format!("expected statement, found `{other}`"))),
        };
        Ok(Stmt {
            kind,
            span: span.to(self.prev_span()),
        })
    }

    fn path(&mut self) -> Result<Path, Error> {
        let (base, span) = self.ident()?;
        let mut segs = Vec::new();
        loop {
            if self.eat(&Token::LBracket) {
                let e = self.expr()?;
                self.expect(&Token::RBracket)?;
                segs.push(PathSeg::Index(e));
            } else if self.eat(&Token::Dot) {
                let (f, _) = self.ident()?;
                segs.push(PathSeg::Field(f));
            } else {
                break;
            }
        }
        Ok(Path {
            base,
            segs,
            span: span.to(self.prev_span()),
        })
    }

    /// Full expression (lowest precedence).
    pub fn expr(&mut self) -> Result<Expr, Error> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, Error> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Token::OrOr => (BinOp::Or, 1),
                Token::AndAnd => (BinOp::And, 2),
                Token::Pipe => (BinOp::BitOr, 3),
                Token::Caret => (BinOp::BitXor, 4),
                Token::Amp => (BinOp::BitAnd, 5),
                Token::Eq => (BinOp::Eq, 6),
                Token::Ne => (BinOp::Ne, 6),
                Token::Lt => (BinOp::Lt, 7),
                Token::Le => (BinOp::Le, 7),
                Token::Gt => (BinOp::Gt, 7),
                Token::Ge => (BinOp::Ge, 7),
                Token::Shl => (BinOp::Shl, 8),
                Token::Shr => (BinOp::Shr, 8),
                Token::Plus => (BinOp::Add, 9),
                Token::Minus => (BinOp::Sub, 9),
                Token::Star => (BinOp::Mul, 10),
                Token::Slash => (BinOp::Div, 10),
                Token::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Error> {
        let span = self.span();
        match self.peek() {
            Token::Minus => {
                self.bump();
                let e = self.unary()?;
                let span = span.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                    span,
                })
            }
            Token::Bang => {
                self.bump();
                let e = self.unary()?;
                let span = span.to(e.span);
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                    span,
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, Error> {
        let span = self.span();
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::int(v, span))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(_) => {
                if matches!(self.peek2(), Token::LParen) {
                    let (name, _) = self.ident()?;
                    self.expect(&Token::LParen)?;
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma)?;
                        }
                    }
                    Ok(Expr {
                        kind: ExprKind::CallNamed(name, args),
                        span: span.to(self.prev_span()),
                    })
                } else {
                    let p = self.path()?;
                    let span = p.span;
                    Ok(Expr {
                        kind: ExprKind::Path(p),
                        span,
                    })
                }
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse(src: &str) -> Program {
        Parser::new(lex(src).unwrap()).program().unwrap()
    }

    fn parse_err(src: &str) -> Error {
        Parser::new(lex(src).unwrap()).program().unwrap_err()
    }

    #[test]
    fn parses_params_and_consts() {
        let p = parse("param NPROC = 8; param SEED; const N = NPROC * 2;");
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].default, Some(8));
        assert_eq!(p.params[1].default, None);
        assert_eq!(p.consts.len(), 1);
    }

    #[test]
    fn parses_negative_param_default() {
        let p = parse("param X = -3;");
        assert_eq!(p.params[0].default, Some(-3));
    }

    #[test]
    fn parses_struct_with_array_field() {
        let p = parse("struct Node { int val; int nbr[4]; }");
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert!(p.structs[0].fields[1].len_expr.is_some());
    }

    #[test]
    fn parses_object_decls() {
        let p = parse(
            "shared int a[4][8]; private int t[16]; shared lock l[4]; shared Node nodes[10]; shared int s;",
        );
        assert_eq!(p.objects.len(), 5);
        assert_eq!(p.objects[0].dim_exprs.len(), 2);
        assert_eq!(p.objects[1].kind, ObjectKind::PrivateData);
        assert_eq!(p.objects[2].kind, ObjectKind::Lock);
        assert_eq!(p.objects[3].elem_name.as_deref(), Some("Node"));
        assert!(p.objects[4].dim_exprs.is_empty());
    }

    #[test]
    fn rejects_three_dimensions() {
        let e = parse_err("shared int a[2][2][2];");
        assert!(e.msg.contains("2 array dimensions"));
    }

    #[test]
    fn rejects_private_lock() {
        let e = parse_err("private lock l;");
        assert!(e.msg.contains("expected type") || e.msg.contains("shared"));
    }

    #[test]
    fn parses_function_and_statements() {
        let p = parse(
            r#"
            fn work(int pid, int n) {
                var i;
                var sum = 0;
                for i in 0 .. n step 2 {
                    sum = sum + i;
                    if (sum > 10) { break; } else { continue; }
                }
                while (sum > 0) { sum = sum - 1; }
                barrier;
                return sum;
            }
            fn main() {
                forall p in 0 .. 4 { work(p, 10); }
            }
            "#,
        );
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.funcs[0].params, vec!["pid", "n"]);
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse("fn f(int x) { if (x == 0) { } else if (x == 1) { } else { } }");
        let StmtKind::If { else_blk, .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        let inner = else_blk.as_ref().unwrap();
        assert!(matches!(inner.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_lock_unlock() {
        let p = parse("fn f(int i) { lock(l[i]); unlock(l[i]); }");
        assert!(matches!(
            p.funcs[0].body.stmts[0].kind,
            StmtKind::Lock { .. }
        ));
        assert!(matches!(
            p.funcs[0].body.stmts[1].kind,
            StmtKind::Unlock { .. }
        ));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("fn f() { var x = 1 + 2 * 3; }");
        let StmtKind::VarDecl { init: Some(e), .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected + at top")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn precedence_compare_vs_logic() {
        let p = parse("fn f() { var x = 1 < 2 && 3 == 4 || 0; }");
        let StmtKind::VarDecl { init: Some(e), .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn parses_nested_path() {
        let p = parse("fn f(int i) { nodes[i].nbr[2] = g[i][0] + 1; }");
        let StmtKind::Assign {
            target: Target::Path(path),
            ..
        } = &p.funcs[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(path.base, "nodes");
        assert_eq!(path.segs.len(), 3);
    }

    #[test]
    fn parses_calls_in_expressions() {
        let p = parse("fn f(int i) { var x = prand(i) % min(i, 4); }");
        let StmtKind::VarDecl { init: Some(e), .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Rem, _, _)));
    }

    #[test]
    fn unary_ops_parse() {
        let p = parse("fn f() { var x = -1 + !0; }");
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let e = parse_err("fn f() { var x = 1 }");
        assert!(e.msg.contains("`;`"), "{}", e.msg);
    }

    #[test]
    fn error_on_stray_token_at_top_level() {
        let e = parse_err("== fn f() {}");
        assert!(e.msg.contains("expected item"));
    }
}
