//! Token definitions for PSL.

use crate::diag::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    // Literals and identifiers
    Int(i64),
    Ident(String),

    // Keywords
    KwParam,
    KwConst,
    KwStruct,
    KwShared,
    KwPrivate,
    KwLock,
    KwUnlock,
    KwFn,
    KwVar,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwForall,
    KwIn,
    KwStep,
    KwBarrier,
    KwReturn,
    KwBreak,
    KwContinue,
    KwInt,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    DotDot,

    // Operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,

    /// End of input sentinel.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "param" => Token::KwParam,
            "const" => Token::KwConst,
            "struct" => Token::KwStruct,
            "shared" => Token::KwShared,
            "private" => Token::KwPrivate,
            "lock" => Token::KwLock,
            "unlock" => Token::KwUnlock,
            "fn" => Token::KwFn,
            "var" => Token::KwVar,
            "if" => Token::KwIf,
            "else" => Token::KwElse,
            "while" => Token::KwWhile,
            "for" => Token::KwFor,
            "forall" => Token::KwForall,
            "in" => Token::KwIn,
            "step" => Token::KwStep,
            "barrier" => Token::KwBarrier,
            "return" => Token::KwReturn,
            "break" => Token::KwBreak,
            "continue" => Token::KwContinue,
            "int" => Token::KwInt,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::KwParam => write!(f, "param"),
            Token::KwConst => write!(f, "const"),
            Token::KwStruct => write!(f, "struct"),
            Token::KwShared => write!(f, "shared"),
            Token::KwPrivate => write!(f, "private"),
            Token::KwLock => write!(f, "lock"),
            Token::KwUnlock => write!(f, "unlock"),
            Token::KwFn => write!(f, "fn"),
            Token::KwVar => write!(f, "var"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwWhile => write!(f, "while"),
            Token::KwFor => write!(f, "for"),
            Token::KwForall => write!(f, "forall"),
            Token::KwIn => write!(f, "in"),
            Token::KwStep => write!(f, "step"),
            Token::KwBarrier => write!(f, "barrier"),
            Token::KwReturn => write!(f, "return"),
            Token::KwBreak => write!(f, "break"),
            Token::KwContinue => write!(f, "continue"),
            Token::KwInt => write!(f, "int"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::DotDot => write!(f, ".."),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Token,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Token::keyword("forall"), Some(Token::KwForall));
        assert_eq!(Token::keyword("barrier"), Some(Token::KwBarrier));
        assert_eq!(Token::keyword("notakeyword"), None);
    }

    #[test]
    fn display_round_trips_symbols() {
        assert_eq!(Token::DotDot.to_string(), "..");
        assert_eq!(Token::Shl.to_string(), "<<");
        assert_eq!(Token::Ident("abc".into()).to_string(), "abc");
    }
}
