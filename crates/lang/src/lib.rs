//! PSL — a small, explicitly parallel, C-like SPMD language.
//!
//! PSL is the source language for the false-sharing restructurer. It models
//! the restricted parallel-C dialect of Jeremiassen & Eggers (PPoPP'95):
//! coarse-grained SPMD programs with a single process-spawning `forall`,
//! process-differentiating variables (PDVs), barrier and lock
//! synchronization, and statically declared shared/private data (scalars,
//! 1-/2-D arrays, structs and arrays of structs). Pointers are absent; the
//! paper's own model restricts them to near-uselessness, and every analysis
//! in the compiler relies only on the features PSL keeps.
//!
//! The crate provides:
//! - [`lex`][]: tokenizer ([`token::Token`])
//! - [`parse`]: recursive-descent parser producing an [`ast::Program`]
//! - [`check`]: name resolution + typechecking producing a [`ast::Program`]
//!   with resolved symbol tables (errors via [`diag::Error`])
//! - [`pretty`]: source renderer (round-trips through the parser)
//!
//! # Example
//! ```
//! let src = r#"
//!     param NPROC = 4;
//!     shared int count[NPROC];
//!     fn main() {
//!         forall p in 0 .. NPROC {
//!             count[p] = count[p] + 1;
//!         }
//!     }
//! "#;
//! let program = fsr_lang::compile(src).unwrap();
//! assert_eq!(program.shared_objects().count(), 1);
//! ```

pub mod ast;
pub mod check;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::Program;
pub use diag::{Code, Diagnostic, Diagnostics, Error, Severity, Span};

/// Tokenize PSL source text.
pub fn lex(src: &str) -> Result<Vec<token::Spanned>, Error> {
    lexer::Lexer::new(src).run()
}

/// Parse PSL source text into an unchecked AST.
pub fn parse(src: &str) -> Result<ast::Program, Error> {
    let toks = lex(src)?;
    parser::Parser::new(toks).program()
}

/// Parse and typecheck PSL source text, using default values for all
/// `param` declarations.
pub fn compile(src: &str) -> Result<ast::Program, Error> {
    compile_with_params(src, &[])
}

/// Parse and typecheck PSL source text, overriding named `param`
/// declarations with the supplied values (e.g. `[("NPROC", 12)]`).
pub fn compile_with_params(src: &str, params: &[(&str, i64)]) -> Result<ast::Program, Error> {
    let mut prog = parse(src)?;
    check::bind_params(&mut prog, params)?;
    check::check(&mut prog)?;
    Ok(prog)
}
