//! Hand-written lexer for PSL.

use crate::diag::{Error, Span, Stage};
use crate::token::{Spanned, Token};

/// Streaming tokenizer over PSL source bytes.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending an [`Token::Eof`] sentinel.
    pub fn run(mut self) -> Result<Vec<Spanned>, Error> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.tok == Token::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Error::new(
                                Stage::Lex,
                                "unterminated block comment",
                                Span::new(start as u32, self.pos as u32),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Spanned, Error> {
        self.skip_trivia()?;
        let start = self.pos;
        let mk = |tok, start: usize, end: usize| Spanned {
            tok,
            span: Span::new(start as u32, end as u32),
        };
        if self.pos >= self.src.len() {
            return Ok(mk(Token::Eof, start, start));
        }
        let c = self.bump();
        let tok = match c {
            b'0'..=b'9' => {
                let mut v: i64 = (c - b'0') as i64;
                while self.peek().is_ascii_digit() {
                    let d = (self.bump() - b'0') as i64;
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(d))
                        .ok_or_else(|| {
                            Error::new(
                                Stage::Lex,
                                "integer literal overflows i64",
                                Span::new(start as u32, self.pos as u32),
                            )
                        })?;
                }
                Token::Int(v)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                Token::keyword(s).unwrap_or_else(|| Token::Ident(s.to_string()))
            }
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b'{' => Token::LBrace,
            b'}' => Token::RBrace,
            b'[' => Token::LBracket,
            b']' => Token::RBracket,
            b',' => Token::Comma,
            b';' => Token::Semi,
            b'.' => {
                if self.peek() == b'.' {
                    self.pos += 1;
                    Token::DotDot
                } else {
                    Token::Dot
                }
            }
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'*' => Token::Star,
            b'/' => Token::Slash,
            b'%' => Token::Percent,
            b'^' => Token::Caret,
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Token::Eq
                } else {
                    Token::Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Token::Ne
                } else {
                    Token::Bang
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Token::Le
                }
                b'<' => {
                    self.pos += 1;
                    Token::Shl
                }
                _ => Token::Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Token::Ge
                }
                b'>' => {
                    self.pos += 1;
                    Token::Shr
                }
                _ => Token::Gt,
            },
            b'&' => {
                if self.peek() == b'&' {
                    self.pos += 1;
                    Token::AndAnd
                } else {
                    Token::Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.pos += 1;
                    Token::OrOr
                } else {
                    Token::Pipe
                }
            }
            other => {
                return Err(Error::new(
                    Stage::Lex,
                    format!("unexpected character {:?}", other as char),
                    Span::new(start as u32, self.pos as u32),
                ))
            }
        };
        Ok(mk(tok, start, self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::new(src)
            .run()
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn lexes_simple_decl() {
        assert_eq!(
            toks("shared int a[8];"),
            vec![
                Token::KwShared,
                Token::KwInt,
                Token::Ident("a".into()),
                Token::LBracket,
                Token::Int(8),
                Token::RBracket,
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_dot_and_dotdot() {
        assert_eq!(
            toks("a.b 0..9"),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Int(0),
                Token::DotDot,
                Token::Int(9),
                Token::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || << >>"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::AndAnd,
                Token::OrOr,
                Token::Shl,
                Token::Shr,
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            toks("1 // c\n /* multi\nline */ 2"),
            vec![Token::Int(1), Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(Lexer::new("/* oops").run().is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(Lexer::new("a @ b").run().is_err());
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(Lexer::new("99999999999999999999999").run().is_err());
    }

    #[test]
    fn spans_point_at_lexemes() {
        let s = Lexer::new("ab  cd").run().unwrap();
        assert_eq!(s[0].span, crate::diag::Span::new(0, 2));
        assert_eq!(s[1].span, crate::diag::Span::new(4, 6));
    }

    #[test]
    fn keywords_not_idents() {
        assert_eq!(toks("barrier"), vec![Token::KwBarrier, Token::Eof]);
        assert_eq!(
            toks("barrierx"),
            vec![Token::Ident("barrierx".into()), Token::Eof]
        );
    }
}
