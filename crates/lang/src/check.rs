//! Name resolution, constant evaluation and typechecking for PSL.
//!
//! After [`check`] succeeds the program satisfies the invariants listed in
//! the [`crate::ast`] module docs: no unresolved [`ExprKind::Path`] /
//! [`ExprKind::CallNamed`] / [`Target::Path`] nodes remain, every constant
//! expression (array dims, struct field lengths, `const` items) is
//! evaluated, local slots are assigned, barrier statements are numbered,
//! and the single `forall` sits at the top level of `main`.

use crate::ast::*;
use crate::diag::{Error, Span, Stage};
use std::collections::HashMap;

/// Bind `param` declarations to concrete values. `overrides` wins over
/// source defaults; a param with neither is an error.
pub fn bind_params(prog: &mut Program, overrides: &[(&str, i64)]) -> Result<(), Error> {
    for (name, _) in overrides {
        if !prog.params.iter().any(|p| &p.name == name) {
            return Err(Error::new(
                Stage::Check,
                format!("override for unknown param `{name}`"),
                Span::default(),
            ));
        }
    }
    for p in &mut prog.params {
        let ov = overrides
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, v)| *v);
        p.value = ov.or(p.default);
        if p.value.is_none() {
            return Err(Error::new(
                Stage::Check,
                format!("param `{}` has no default and no override", p.name),
                p.span,
            ));
        }
    }
    Ok(())
}

fn err(msg: impl Into<String>, span: Span) -> Error {
    Error::new(Stage::Check, msg, span)
}

/// Evaluate a constant expression over params and already-evaluated consts.
/// Works on both pre-check (`Path`) and post-check (`Var`) forms, so
/// analyses running on checked programs can reuse it (e.g.
/// `fsr_analysis::const_of`).
pub fn const_eval(prog: &Program, e: &Expr) -> Result<i64, Error> {
    Ok(match &e.kind {
        ExprKind::Int(v) => *v,
        ExprKind::Path(p) if p.segs.is_empty() => {
            if let Some(pd) = prog.params.iter().find(|pd| pd.name == p.base) {
                pd.value
                    .ok_or_else(|| err(format!("param `{}` unbound", p.base), e.span))?
            } else if let Some(cd) = prog.consts.iter().find(|cd| cd.name == p.base) {
                cd.value.ok_or_else(|| {
                    err(format!("const `{}` used before definition", p.base), e.span)
                })?
            } else {
                return Err(err(format!("`{}` is not a param or const", p.base), e.span));
            }
        }
        ExprKind::Var(VarRef::Param(i)) => prog.params[*i as usize]
            .value
            .ok_or_else(|| err("param unbound", e.span))?,
        ExprKind::Var(VarRef::Const(i)) => prog.consts[*i as usize]
            .value
            .ok_or_else(|| err("const used before definition", e.span))?,
        ExprKind::Unary(op, a) => {
            let a = const_eval(prog, a)?;
            match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => (a == 0) as i64,
            }
        }
        ExprKind::Binary(op, a, b) => {
            let a = const_eval(prog, a)?;
            let b = const_eval(prog, b)?;
            eval_binop(*op, a, b).map_err(|m| err(m, e.span))?
        }
        _ => return Err(err("expression is not a compile-time constant", e.span)),
    })
}

/// Shared constant-fold semantics for binary operators (also used by the
/// interpreter's constant folding). Division/remainder by zero is an error
/// at compile time.
pub fn eval_binop(op: BinOp, a: i64, b: i64) -> Result<i64, String> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err("division by zero in constant expression".into());
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err("remainder by zero in constant expression".into());
            }
            a.wrapping_rem(b)
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => (a != 0 && b != 0) as i64,
        BinOp::Or => (a != 0 || b != 0) as i64,
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
    })
}

fn eval_dim(prog: &Program, e: &Expr) -> Result<u32, Error> {
    let v = const_eval(prog, e)?;
    if v <= 0 || v > u32::MAX as i64 {
        return Err(err(
            format!("array dimension must be positive, got {v}"),
            e.span,
        ));
    }
    Ok(v as u32)
}

/// What a top-level name refers to.
#[derive(Clone, Copy)]
enum GlobalRef {
    Param(u32),
    Const(u32),
    Object(ObjId),
    Func(FuncId),
}

struct Checker<'p> {
    prog: &'p Program,
    globals: HashMap<String, GlobalRef>,
    /// Lexical scope stack of local name -> slot.
    scopes: Vec<HashMap<String, u32>>,
    next_slot: u32,
    slot_names: Vec<String>,
    loop_depth: u32,
    next_barrier: u32,
    saw_forall: bool,
    in_main_top: bool,
    returns_value: bool,
}

impl<'p> Checker<'p> {
    fn lookup_local(&self, name: &str) -> Option<u32> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare_local(&mut self, name: &str, span: Span) -> Result<u32, Error> {
        if self.scopes.last().unwrap().contains_key(name) {
            return Err(err(
                format!("`{name}` already declared in this scope"),
                span,
            ));
        }
        if self.globals.contains_key(name) {
            return Err(err(format!("local `{name}` shadows a global"), span));
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slot_names.push(name.to_string());
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), slot);
        Ok(slot)
    }

    fn resolve_callee(&self, name: &str, span: Span) -> Result<Callee, Error> {
        if let Some(b) = Builtin::by_name(name) {
            return Ok(Callee::Builtin(b));
        }
        match self.globals.get(name) {
            Some(GlobalRef::Func(f)) => Ok(Callee::User(*f)),
            _ => Err(err(format!("call to unknown function `{name}`"), span)),
        }
    }

    fn check_call(&mut self, callee: Callee, args: &mut [Expr], span: Span) -> Result<(), Error> {
        let arity = match callee {
            Callee::Builtin(b) => b.arity(),
            Callee::User(f) => self.prog.func(f).params.len(),
        };
        if args.len() != arity {
            return Err(err(
                format!("call expects {arity} argument(s), got {}", args.len()),
                span,
            ));
        }
        for a in args {
            self.expr(a)?;
        }
        Ok(())
    }

    /// Resolve an unresolved path into a scalar var or a memory place.
    fn resolve_path(&mut self, path: &mut Path) -> Result<Resolved, Error> {
        if let Some(slot) = self.lookup_local(&path.base) {
            if !path.segs.is_empty() {
                return Err(err(
                    format!("local `{}` is a scalar and cannot be indexed", path.base),
                    path.span,
                ));
            }
            return Ok(Resolved::Var(VarRef::Local(slot)));
        }
        match self.globals.get(&path.base).copied() {
            Some(GlobalRef::Param(i)) => {
                if !path.segs.is_empty() {
                    return Err(err("params cannot be indexed", path.span));
                }
                Ok(Resolved::Var(VarRef::Param(i)))
            }
            Some(GlobalRef::Const(i)) => {
                if !path.segs.is_empty() {
                    return Err(err("consts cannot be indexed", path.span));
                }
                Ok(Resolved::Var(VarRef::Const(i)))
            }
            Some(GlobalRef::Func(_)) => Err(err(
                format!("`{}` is a function, not a variable", path.base),
                path.span,
            )),
            Some(GlobalRef::Object(oid)) => {
                let obj = self.prog.object(oid);
                let ndims = obj.dims.len();
                let mut segs = std::mem::take(&mut path.segs).into_iter();
                let mut idx = Vec::with_capacity(ndims);
                for d in 0..ndims {
                    match segs.next() {
                        Some(PathSeg::Index(mut e)) => {
                            self.expr(&mut e)?;
                            idx.push(e);
                        }
                        _ => {
                            return Err(err(
                                format!(
                                    "`{}` has {} dimension(s); index {} missing",
                                    obj.name, ndims, d
                                ),
                                path.span,
                            ))
                        }
                    }
                }
                let mut field = None;
                match segs.next() {
                    None => {}
                    Some(PathSeg::Field(fname)) => {
                        let ElemTy::Struct(sid) = obj.elem else {
                            return Err(err(
                                format!("`{}` elements are not structs", obj.name),
                                path.span,
                            ));
                        };
                        let (fid, fdecl) = self
                            .prog
                            .struct_(sid)
                            .field_by_name(&fname)
                            .ok_or_else(|| {
                                err(
                                    format!(
                                        "struct `{}` has no field `{fname}`",
                                        self.prog.struct_(sid).name
                                    ),
                                    path.span,
                                )
                            })?;
                        let is_array = fdecl.len_expr.is_some();
                        let fidx = match segs.next() {
                            Some(PathSeg::Index(mut e)) => {
                                if !is_array {
                                    return Err(err(
                                        format!(
                                            "field `{fname}` is a scalar and cannot be indexed"
                                        ),
                                        path.span,
                                    ));
                                }
                                self.expr(&mut e)?;
                                Some(Box::new(e))
                            }
                            None => {
                                if is_array {
                                    return Err(err(
                                        format!("array field `{fname}` requires an index"),
                                        path.span,
                                    ));
                                }
                                None
                            }
                            Some(PathSeg::Field(_)) => {
                                return Err(err(
                                    "nested struct fields are not supported",
                                    path.span,
                                ))
                            }
                        };
                        field = Some((fid, fidx));
                    }
                    Some(PathSeg::Index(_)) => {
                        return Err(err(
                            format!("too many indices for `{}`", obj.name),
                            path.span,
                        ))
                    }
                }
                if segs.next().is_some() {
                    return Err(err("trailing path segments", path.span));
                }
                if matches!(obj.elem, ElemTy::Struct(_)) && field.is_none() {
                    return Err(err(
                        format!("`{}` element is a struct; select a field", obj.name),
                        path.span,
                    ));
                }
                Ok(Resolved::Place(Place {
                    obj: oid,
                    idx,
                    field,
                    span: path.span,
                }))
            }
            None => Err(err(
                format!("unknown identifier `{}`", path.base),
                path.span,
            )),
        }
    }

    fn expr(&mut self, e: &mut Expr) -> Result<(), Error> {
        let span = e.span;
        match &mut e.kind {
            ExprKind::Int(_) | ExprKind::Var(_) => {}
            ExprKind::Path(p) => {
                let mut p = p.clone();
                e.kind = match self.resolve_path(&mut p)? {
                    Resolved::Var(v) => ExprKind::Var(v),
                    Resolved::Place(pl) => {
                        let obj = self.prog.object(pl.obj);
                        if obj.kind == ObjectKind::Lock {
                            return Err(err("locks can only be used with lock()/unlock()", span));
                        }
                        ExprKind::Load(pl)
                    }
                };
            }
            ExprKind::Load(_) => {}
            ExprKind::Unary(_, a) => self.expr(a)?,
            ExprKind::Binary(_, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
            }
            ExprKind::CallNamed(name, args) => {
                let callee = self.resolve_callee(name, span)?;
                if let Callee::User(f) = callee {
                    if !self.prog.func(f).returns_value {
                        return Err(err(
                            format!("function `{name}` returns no value; cannot use in expression"),
                            span,
                        ));
                    }
                }
                let mut args = std::mem::take(args);
                self.check_call(callee, &mut args, span)?;
                e.kind = ExprKind::Call(callee, args);
            }
            ExprKind::Call(callee, args) => {
                let callee = *callee;
                let mut a = std::mem::take(args);
                self.check_call(callee, &mut a, span)?;
                e.kind = ExprKind::Call(callee, a);
            }
        }
        Ok(())
    }

    fn block(&mut self, b: &mut Block) -> Result<(), Error> {
        self.scopes.push(HashMap::new());
        let r = b.stmts.iter_mut().try_for_each(|s| self.stmt(s));
        self.scopes.pop();
        r
    }

    fn stmt(&mut self, s: &mut Stmt) -> Result<(), Error> {
        let span = s.span;
        let was_main_top = self.in_main_top;
        // `forall` must be at the *top level* of main's body: any nested
        // statement context clears the flag for children.
        match &mut s.kind {
            StmtKind::VarDecl { name, init, slot } => {
                if let Some(init) = init {
                    self.expr(init)?;
                }
                *slot = self.declare_local(name, span)?;
            }
            StmtKind::Assign { target, value } => {
                self.expr(value)?;
                self.resolve_target(target, span, false)?;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond)?;
                self.in_main_top = false;
                self.block(then_blk)?;
                if let Some(e) = else_blk {
                    self.block(e)?;
                }
                self.in_main_top = was_main_top;
            }
            StmtKind::While { cond, body } => {
                self.expr(cond)?;
                self.loop_depth += 1;
                self.in_main_top = false;
                self.block(body)?;
                self.in_main_top = was_main_top;
                self.loop_depth -= 1;
            }
            StmtKind::For {
                var,
                slot,
                lo,
                hi,
                step,
                body,
            } => {
                self.expr(lo)?;
                self.expr(hi)?;
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.scopes.push(HashMap::new());
                *slot = self.declare_local(var, span)?;
                self.loop_depth += 1;
                self.in_main_top = false;
                let r = self.block(body);
                self.in_main_top = was_main_top;
                self.loop_depth -= 1;
                self.scopes.pop();
                r?;
            }
            StmtKind::Forall {
                var,
                slot,
                lo,
                hi,
                body,
            } => {
                if !self.in_main_top {
                    return Err(err("forall is only allowed at the top level of main", span));
                }
                if self.saw_forall {
                    return Err(err("only one forall is allowed per program", span));
                }
                self.saw_forall = true;
                self.expr(lo)?;
                self.expr(hi)?;
                self.scopes.push(HashMap::new());
                *slot = self.declare_local(var, span)?;
                self.in_main_top = false;
                let r = self.block(body);
                self.in_main_top = was_main_top;
                self.scopes.pop();
                r?;
            }
            StmtKind::Barrier { id } => {
                *id = self.next_barrier;
                self.next_barrier += 1;
            }
            StmtKind::Lock { target } | StmtKind::Unlock { target } => {
                self.resolve_target(target, span, true)?;
            }
            StmtKind::CallStmt { callee, name, args } => {
                let c = self.resolve_callee(name, span)?;
                self.check_call(c, args, span)?;
                *callee = Some(c);
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.expr(e)?;
                    self.returns_value = true;
                }
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(err("break/continue outside of a loop", span));
                }
            }
            StmtKind::Block(b) => {
                self.in_main_top = false;
                self.block(b)?;
                self.in_main_top = was_main_top;
            }
        }
        Ok(())
    }

    fn resolve_target(
        &mut self,
        target: &mut Target,
        span: Span,
        want_lock: bool,
    ) -> Result<(), Error> {
        if let Target::Path(p) = target {
            let mut p = p.clone();
            *target = match self.resolve_path(&mut p)? {
                Resolved::Var(VarRef::Local(slot)) => {
                    if want_lock {
                        return Err(err("lock()/unlock() target must be a lock object", span));
                    }
                    Target::Local(slot)
                }
                Resolved::Var(_) => {
                    return Err(err("cannot assign to a param or const", span));
                }
                Resolved::Place(pl) => {
                    let is_lock = self.prog.object(pl.obj).kind == ObjectKind::Lock;
                    if want_lock && !is_lock {
                        return Err(err("lock()/unlock() target must be a lock object", span));
                    }
                    if !want_lock && is_lock {
                        return Err(err("cannot assign to a lock; use lock()/unlock()", span));
                    }
                    Target::Place(pl)
                }
            };
        }
        Ok(())
    }
}

enum Resolved {
    Var(VarRef),
    Place(Place),
}

/// Typecheck and resolve a parsed program in place. `bind_params` must run
/// first (or all params must have defaults — [`crate::compile`] handles
/// this).
pub fn check(prog: &mut Program) -> Result<(), Error> {
    // Params must be bound before any const evaluation.
    for p in &mut prog.params {
        if p.value.is_none() {
            p.value = p.default;
        }
        if p.value.is_none() {
            return Err(err(format!("param `{}` unbound", p.name), p.span));
        }
    }

    // Duplicate top-level name detection.
    {
        let mut seen: HashMap<&str, Span> = HashMap::new();
        let names = prog
            .params
            .iter()
            .map(|p| (p.name.as_str(), p.span))
            .chain(prog.consts.iter().map(|c| (c.name.as_str(), c.span)))
            .chain(prog.objects.iter().map(|o| (o.name.as_str(), o.span)))
            .chain(prog.funcs.iter().map(|f| (f.name.as_str(), f.span)))
            .chain(prog.structs.iter().map(|s| (s.name.as_str(), s.span)));
        for (n, sp) in names {
            if seen.insert(n, sp).is_some() {
                return Err(err(format!("duplicate top-level name `{n}`"), sp));
            }
        }
    }

    // Evaluate consts in declaration order.
    for i in 0..prog.consts.len() {
        let e = prog.consts[i].expr.clone();
        let v = const_eval(prog, &e)?;
        prog.consts[i].value = Some(v);
    }

    // Struct layout: field lengths, offsets, sizes.
    for i in 0..prog.structs.len() {
        let nfields = prog.structs[i].fields.len();
        let mut offset = 0u32;
        for j in 0..nfields {
            let len = match prog.structs[i].fields[j].len_expr.clone() {
                Some(e) => eval_dim(prog, &e)?,
                None => 1,
            };
            prog.structs[i].fields[j].len = len;
            prog.structs[i].fields[j].offset_words = offset;
            offset = offset
                .checked_add(len)
                .ok_or_else(|| err("struct too large", prog.structs[i].span))?;
        }
        if offset == 0 {
            return Err(err("empty structs are not allowed", prog.structs[i].span));
        }
        prog.structs[i].size_words = offset;
    }

    // Object element types and dimensions.
    for i in 0..prog.objects.len() {
        if let Some(ename) = prog.objects[i].elem_name.clone() {
            let (sid, _) = prog.struct_by_name(&ename).ok_or_else(|| {
                err(
                    format!("unknown struct type `{ename}`"),
                    prog.objects[i].span,
                )
            })?;
            prog.objects[i].elem = ElemTy::Struct(sid);
        }
        let dim_exprs = prog.objects[i].dim_exprs.clone();
        let mut dims = Vec::with_capacity(dim_exprs.len());
        for e in &dim_exprs {
            dims.push(eval_dim(prog, e)?);
        }
        prog.objects[i].dims = dims;
    }

    // Global name table.
    let mut globals = HashMap::new();
    for (i, p) in prog.params.iter().enumerate() {
        globals.insert(p.name.clone(), GlobalRef::Param(i as u32));
    }
    for (i, c) in prog.consts.iter().enumerate() {
        globals.insert(c.name.clone(), GlobalRef::Const(i as u32));
    }
    for (i, o) in prog.objects.iter().enumerate() {
        globals.insert(o.name.clone(), GlobalRef::Object(ObjId(i as u32)));
    }
    for (i, f) in prog.funcs.iter().enumerate() {
        if Builtin::by_name(&f.name).is_some() {
            return Err(err(
                format!("function `{}` shadows a builtin", f.name),
                f.span,
            ));
        }
        globals.insert(f.name.clone(), GlobalRef::Func(FuncId(i as u32)));
    }

    // `main` lookup.
    let (main_id, main_fn) = prog
        .func_by_name("main")
        .ok_or_else(|| err("program has no `main` function", Span::default()))?;
    if !main_fn.params.is_empty() {
        return Err(err("`main` takes no parameters", main_fn.span));
    }
    prog.main = Some(main_id);

    // Pre-pass: mark which functions return a value (needed before
    // resolving calls in expressions, which may reference any function).
    fn scan_returns(b: &Block) -> bool {
        b.stmts.iter().any(|s| match &s.kind {
            StmtKind::Return(Some(_)) => true,
            StmtKind::If {
                then_blk, else_blk, ..
            } => scan_returns(then_blk) || else_blk.as_ref().is_some_and(scan_returns),
            StmtKind::While { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Forall { body, .. } => scan_returns(body),
            StmtKind::Block(b) => scan_returns(b),
            _ => false,
        })
    }
    for f in &mut prog.funcs {
        f.returns_value = scan_returns(&f.body);
    }

    // Check each function body. Bodies are temporarily detached so the
    // checker can hold an immutable view of the program tables.
    let mut next_barrier = 0u32;
    let mut saw_forall = false;
    for fi in 0..prog.funcs.len() {
        let mut body = std::mem::take(&mut prog.funcs[fi].body);
        let params = prog.funcs[fi].params.clone();
        let is_main = FuncId(fi as u32) == main_id;
        let mut ck = Checker {
            prog,
            globals: globals.clone(),
            scopes: vec![HashMap::new()],
            next_slot: 0,
            slot_names: Vec::new(),
            loop_depth: 0,
            next_barrier,
            saw_forall,
            in_main_top: is_main,
            returns_value: false,
        };
        for p in &params {
            ck.declare_local(p, prog.funcs[fi].span)?;
        }
        let r = body.stmts.iter_mut().try_for_each(|s| ck.stmt(s));
        let slots = ck.next_slot;
        let slot_names = std::mem::take(&mut ck.slot_names);
        next_barrier = ck.next_barrier;
        saw_forall = ck.saw_forall;
        prog.funcs[fi].body = body;
        r?;
        prog.funcs[fi].num_slots = slots;
        prog.funcs[fi].slot_names = slot_names;
    }
    prog.num_barriers = next_barrier;

    if !saw_forall {
        return Err(err(
            "program has no `forall` (no parallelism to analyze)",
            prog.func(main_id).span,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, compile_with_params, parse};

    const OK_PROG: &str = r#"
        param NPROC = 4;
        const N = NPROC * 8;
        struct Node { int val; int nbr[2]; }
        shared int a[N];
        shared Node nodes[N];
        shared lock lk;
        private int scratch[8];
        fn work(int pid) {
            var i;
            for i in 0 .. N {
                a[i] = a[i] + pid;
                nodes[i].val = nodes[i].nbr[0];
            }
            lock(lk);
            a[0] = a[0] + 1;
            unlock(lk);
            barrier;
            scratch[pid % 8] = 1;
        }
        fn main() {
            forall p in 0 .. NPROC { work(p); }
        }
    "#;

    #[test]
    fn accepts_valid_program() {
        let p = compile(OK_PROG).unwrap();
        assert_eq!(p.num_barriers, 1);
        assert_eq!(p.param_value("NPROC"), Some(4));
        assert_eq!(p.consts[0].value, Some(32));
        let (_, nodes) = p.object_by_name("nodes").unwrap();
        assert_eq!(nodes.dims, vec![32]);
        let (sid, _) = p.struct_by_name("Node").unwrap();
        assert_eq!(p.struct_(sid).size_words, 3);
        assert_eq!(p.struct_(sid).fields[1].offset_words, 1);
    }

    #[test]
    fn param_override_changes_dims() {
        let p = compile_with_params(OK_PROG, &[("NPROC", 2)]).unwrap();
        let (_, a) = p.object_by_name("a").unwrap();
        assert_eq!(a.dims, vec![16]);
    }

    #[test]
    fn unknown_param_override_rejected() {
        let mut p = parse(OK_PROG).unwrap();
        assert!(bind_params(&mut p, &[("NOPE", 1)]).is_err());
    }

    #[test]
    fn unbound_param_rejected() {
        let e = compile("param X; fn main() { forall p in 0 .. X { } }").unwrap_err();
        assert!(e.msg.contains("no default"), "{}", e.msg);
    }

    fn expect_err(src: &str, needle: &str) {
        let e = compile(src).unwrap_err();
        assert!(e.msg.contains(needle), "expected {needle:?} in {:?}", e.msg);
    }

    #[test]
    fn rejects_missing_main() {
        expect_err("fn foo() { }", "no `main`");
    }

    #[test]
    fn rejects_missing_forall() {
        expect_err("fn main() { }", "no `forall`");
    }

    #[test]
    fn rejects_two_foralls() {
        expect_err(
            "fn main() { forall p in 0..2 { } forall q in 0..2 { } }",
            "only one forall",
        );
    }

    #[test]
    fn rejects_nested_forall() {
        expect_err(
            "fn main() { if (1) { forall p in 0..2 { } } }",
            "top level of main",
        );
        expect_err(
            "fn f() { forall p in 0..2 { } } fn main() { f(); }",
            "top level of main",
        );
    }

    #[test]
    fn rejects_unknown_identifier() {
        expect_err(
            "fn main() { forall p in 0..2 { zz = 1; } }",
            "unknown identifier",
        );
    }

    #[test]
    fn rejects_wrong_index_count() {
        expect_err(
            "shared int a[2][2]; fn main() { forall p in 0..2 { a[p] = 1; } }",
            "index 1 missing",
        );
        expect_err(
            "shared int a[2]; fn main() { forall p in 0..2 { a[p][0] = 1; } }",
            "too many indices",
        );
    }

    #[test]
    fn rejects_scalar_field_index_and_missing_field() {
        expect_err(
            "struct S { int x; } shared S s[2]; fn main() { forall p in 0..2 { s[p].x[0] = 1; } }",
            "scalar and cannot be indexed",
        );
        expect_err(
            "struct S { int x; } shared S s[2]; fn main() { forall p in 0..2 { s[p].y = 1; } }",
            "no field `y`",
        );
        expect_err(
            "struct S { int x[2]; } shared S s[2]; fn main() { forall p in 0..2 { s[p].x = 1; } }",
            "requires an index",
        );
    }

    #[test]
    fn rejects_struct_without_field_selection() {
        expect_err(
            "struct S { int x; } shared S s[2]; fn main() { forall p in 0..2 { var v = s[p]; } }",
            "select a field",
        );
    }

    #[test]
    fn rejects_lock_misuse() {
        expect_err(
            "shared lock lk; fn main() { forall p in 0..2 { lk = 1; } }",
            "cannot assign to a lock",
        );
        expect_err(
            "shared lock lk; fn main() { forall p in 0..2 { var v = lk; } }",
            "lock()/unlock()",
        );
        expect_err(
            "shared int a; fn main() { forall p in 0..2 { lock(a); } }",
            "must be a lock object",
        );
    }

    #[test]
    fn rejects_assign_to_const_or_param() {
        expect_err(
            "const C = 1; fn main() { forall p in 0..2 { C = 2; } }",
            "param or const",
        );
    }

    #[test]
    fn rejects_break_outside_loop() {
        expect_err(
            "fn main() { forall p in 0..2 { break; } }",
            "outside of a loop",
        );
    }

    #[test]
    fn break_in_loop_inside_forall_ok() {
        compile("fn main() { forall p in 0..2 { var i; for i in 0..4 { break; } } }").unwrap();
    }

    #[test]
    fn rejects_duplicate_names() {
        expect_err(
            "shared int a; shared int a; fn main() { forall p in 0..1 { } }",
            "duplicate",
        );
    }

    #[test]
    fn rejects_shadowing_global() {
        expect_err(
            "shared int a; fn main() { forall p in 0..2 { var a; } }",
            "shadows a global",
        );
    }

    #[test]
    fn rejects_void_call_in_expression() {
        expect_err(
            "fn f(int x) { } fn main() { forall p in 0..2 { var v = f(p); } }",
            "returns no value",
        );
    }

    #[test]
    fn value_call_in_expression_ok() {
        compile("fn f(int x) { return x + 1; } fn main() { forall p in 0..2 { var v = f(p); } }")
            .unwrap();
    }

    #[test]
    fn rejects_arity_mismatch() {
        expect_err(
            "fn f(int x) { return x; } fn main() { forall p in 0..2 { var v = f(p, p); } }",
            "expects 1 argument",
        );
        expect_err(
            "fn main() { forall p in 0..2 { var v = min(p); } }",
            "expects 2",
        );
    }

    #[test]
    fn rejects_builtin_shadow() {
        expect_err(
            "fn prand(int x) { return x; } fn main() { forall p in 0..2 { } }",
            "shadows a builtin",
        );
    }

    #[test]
    fn rejects_zero_dimension() {
        expect_err(
            "shared int a[0]; fn main() { forall p in 0..2 { } }",
            "positive",
        );
    }

    #[test]
    fn rejects_const_div_zero() {
        expect_err(
            "const C = 1 / 0; fn main() { forall p in 0..2 { } }",
            "division by zero",
        );
    }

    #[test]
    fn barrier_ids_are_sequential() {
        let p = compile(
            "fn w() { barrier; barrier; } fn main() { forall p in 0..2 { w(); barrier; } }",
        )
        .unwrap();
        assert_eq!(p.num_barriers, 3);
    }

    #[test]
    fn local_scopes_allow_reuse_across_blocks() {
        compile("fn main() { forall p in 0..2 { { var x = 1; } { var x = 2; } } }").unwrap();
    }

    #[test]
    fn slots_count_params_and_locals() {
        let p = compile("fn f(int a, int b) { var c; return a + b; } fn main() { forall p in 0..2 { var v = f(1, 2); } }").unwrap();
        let (_, f) = p.func_by_name("f").unwrap();
        assert_eq!(f.num_slots, 3);
    }
}
