//! Abstract syntax tree for PSL.
//!
//! The parser produces a program whose identifier references are
//! *unresolved* ([`ExprKind::Path`], [`Target::Path`]). [`crate::check`]
//! resolves them in place into [`ExprKind::Var`] / [`ExprKind::Load`] /
//! [`Target::Local`] / [`Target::Place`], evaluates all constant
//! expressions (array dimensions, struct field lengths), and assigns local
//! variable slots. Downstream crates may assume a checked program contains
//! no unresolved paths.

use crate::diag::Span;

/// Machine word size in bytes. PSL is a 32-bit-era language: every `int`
/// and every lock occupies one 4-byte word, matching the paper's KSR2-era
/// data layout assumptions.
pub const WORD_BYTES: u32 = 4;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// Index of a global data object or lock in [`Program::objects`].
    ObjId
);
id_type!(
    /// Index of a function in [`Program::funcs`].
    FuncId
);
id_type!(
    /// Index of a struct definition in [`Program::structs`].
    StructId
);
id_type!(
    /// Index of a field within a struct definition.
    FieldId
);

/// A `param` declaration: a compile-time constant bound by the driver
/// (e.g. the number of processes `NPROC`).
#[derive(Debug, Clone)]
pub struct ParamDecl {
    pub name: String,
    /// Default value from the source, if any.
    pub default: Option<i64>,
    /// Bound value; set by `check::bind_params` (falls back to `default`).
    pub value: Option<i64>,
    pub span: Span,
}

/// A `const` definition, evaluated during checking.
#[derive(Debug, Clone)]
pub struct ConstDecl {
    pub name: String,
    pub expr: Expr,
    /// Evaluated value; set during checking.
    pub value: Option<i64>,
    pub span: Span,
}

/// Element type of a data object or struct field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    Int,
    Struct(StructId),
}

/// One field of a struct: an `int` scalar or a fixed-length `int` array.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    /// Declared length expression for array fields.
    pub len_expr: Option<Expr>,
    /// Resolved length in elements (1 for scalars); set during checking.
    pub len: u32,
    /// Offset of the field within the struct, in words; set during checking.
    pub offset_words: u32,
    pub span: Span,
}

/// A struct type definition. Structs contain only `int` scalar/array
/// fields (the paper's model has no nested aggregates requiring more).
#[derive(Debug, Clone)]
pub struct StructDecl {
    pub name: String,
    pub fields: Vec<FieldDecl>,
    /// Total size in words; set during checking.
    pub size_words: u32,
    pub span: Span,
}

impl StructDecl {
    pub fn field_by_name(&self, name: &str) -> Option<(FieldId, &FieldDecl)> {
        self.fields
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FieldId(i as u32), f))
    }
}

/// What a global object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// Shared data, visible to all processes at the same addresses.
    SharedData,
    /// Private data: every process gets its own copy.
    PrivateData,
    /// A lock (or array of locks). One word each, shared.
    Lock,
    /// Per-process indirection arena introduced by a transformation; never
    /// written by the parser, only by the layout engine's bookkeeping.
    Arena,
}

/// A global object: shared/private data or a lock (array).
#[derive(Debug, Clone)]
pub struct ObjectDecl {
    pub name: String,
    pub kind: ObjectKind,
    /// Element type (ignored for locks, which are `int`-shaped words).
    pub elem: ElemTy,
    /// Element type name for struct-typed objects, as written in source;
    /// resolved into `elem` during checking.
    pub elem_name: Option<String>,
    /// Dimension expressions, outermost first (0, 1 or 2 of them).
    pub dim_exprs: Vec<Expr>,
    /// Resolved dimensions; set during checking. Scalars have `[]`.
    pub dims: Vec<u32>,
    pub span: Span,
}

impl ObjectDecl {
    /// Total number of elements (product of dims; 1 for scalars).
    pub fn elem_count(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }

    pub fn is_shared(&self) -> bool {
        !matches!(self.kind, ObjectKind::PrivateData)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `prand(x)`: deterministic pseudo-random hash of `x` (splitmix-style),
    /// non-negative. Models data-dependent access patterns reproducibly.
    Prand,
    Min,
    Max,
    Abs,
}

impl Builtin {
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "prand" => Builtin::Prand,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "abs" => Builtin::Abs,
            _ => return None,
        })
    }

    pub fn arity(self) -> usize {
        match self {
            Builtin::Prand | Builtin::Abs => 1,
            Builtin::Min | Builtin::Max => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Builtin::Prand => "prand",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Abs => "abs",
        }
    }
}

/// A scalar variable reference, resolved by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRef {
    /// Function-local slot (includes parameters and loop variables).
    Local(u32),
    /// A `param` (compile-time constant bound at run configuration).
    Param(u32),
    /// A `const`.
    Const(u32),
}

/// Unresolved access path produced by the parser: `base[e1][e2].field[e3]`.
#[derive(Debug, Clone)]
pub struct Path {
    pub base: String,
    pub segs: Vec<PathSeg>,
    pub span: Span,
}

/// One segment of an unresolved path.
#[derive(Debug, Clone)]
pub enum PathSeg {
    Index(Expr),
    Field(String),
}

/// Resolved access path to a memory cell of a global object.
#[derive(Debug, Clone)]
pub struct Place {
    pub obj: ObjId,
    /// One expression per declared dimension.
    pub idx: Vec<Expr>,
    /// For arrays of structs: which field, plus the field-array index if
    /// the field is an array.
    pub field: Option<(FieldId, Option<Box<Expr>>)>,
    pub span: Span,
}

/// Callee of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    User(FuncId),
    Builtin(Builtin),
}

/// Expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// Expression kinds. `Path` only appears before checking.
#[derive(Debug, Clone)]
pub enum ExprKind {
    Int(i64),
    /// Unresolved identifier or access path (pre-check only).
    Path(Path),
    /// Resolved scalar variable read.
    Var(VarRef),
    /// Resolved read of a global object element.
    Load(Place),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Call(Callee, Vec<Expr>),
    /// Unresolved call (pre-check only).
    CallNamed(String, Vec<Expr>),
}

impl Expr {
    pub fn int(v: i64, span: Span) -> Expr {
        Expr {
            kind: ExprKind::Int(v),
            span,
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone)]
pub enum Target {
    /// Unresolved (pre-check only).
    Path(Path),
    /// Local scalar slot.
    Local(u32),
    /// Global object element.
    Place(Place),
}

/// Statement node.
#[derive(Debug, Clone)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `var x;` or `var x = e;` — declares a private local scalar.
    VarDecl {
        name: String,
        init: Option<Expr>,
        /// Local slot; set during checking.
        slot: u32,
    },
    Assign {
        target: Target,
        value: Expr,
    },
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    While {
        cond: Expr,
        body: Block,
    },
    /// `for v in lo .. hi step s { .. }`; iterates while `v < hi`
    /// (or `v > hi` for negative step).
    For {
        var: String,
        slot: u32,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        body: Block,
    },
    /// `forall v in lo .. hi { .. }` — spawns one process per value.
    /// Allowed exactly once, in `main`, at the top level of its body.
    Forall {
        var: String,
        slot: u32,
        lo: Expr,
        hi: Expr,
        body: Block,
    },
    Barrier {
        /// Sequential index of this barrier statement in the program;
        /// set during checking. Used by phase analysis.
        id: u32,
    },
    /// `lock(l);` / `unlock(l);`
    Lock {
        target: Target,
    },
    Unlock {
        target: Target,
    },
    /// Call for effect.
    CallStmt {
        callee: Option<Callee>,
        name: String,
        args: Vec<Expr>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Block),
}

/// A `{ .. }` block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A function definition. All parameters are `int`.
#[derive(Debug, Clone)]
pub struct Func {
    pub name: String,
    pub params: Vec<String>,
    pub body: Block,
    /// Total local slots (params first); set during checking.
    pub num_slots: u32,
    /// Source name of each local slot (params first); set during checking.
    /// Names may repeat when disjoint scopes reuse an identifier.
    pub slot_names: Vec<String>,
    /// Whether any `return e;` with a value occurs; set during checking.
    pub returns_value: bool,
    pub span: Span,
}

/// A full PSL program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub params: Vec<ParamDecl>,
    pub consts: Vec<ConstDecl>,
    pub structs: Vec<StructDecl>,
    pub objects: Vec<ObjectDecl>,
    pub funcs: Vec<Func>,
    /// Index of `main`; set during checking.
    pub main: Option<FuncId>,
    /// Number of `barrier` statements; set during checking.
    pub num_barriers: u32,
}

impl Program {
    pub fn object(&self, id: ObjId) -> &ObjectDecl {
        &self.objects[id.index()]
    }

    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.index()]
    }

    pub fn struct_(&self, id: StructId) -> &StructDecl {
        &self.structs[id.index()]
    }

    pub fn object_by_name(&self, name: &str) -> Option<(ObjId, &ObjectDecl)> {
        self.objects
            .iter()
            .enumerate()
            .find(|(_, o)| o.name == name)
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Func)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    pub fn struct_by_name(&self, name: &str) -> Option<(StructId, &StructDecl)> {
        self.structs
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (StructId(i as u32), s))
    }

    pub fn param_value(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|p| p.name == name)?.value
    }

    /// All shared data objects and locks (everything coherence applies to).
    pub fn shared_objects(&self) -> impl Iterator<Item = (ObjId, &ObjectDecl)> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_shared())
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    /// Size in words of one element of the given element type.
    pub fn elem_words(&self, ty: ElemTy) -> u32 {
        match ty {
            ElemTy::Int => 1,
            ElemTy::Struct(sid) => self.struct_(sid).size_words,
        }
    }

    /// The `forall` statement of `main`: `(pdv name, slot, lo, hi, body)`.
    /// Panics if called on an unchecked program without a forall.
    pub fn forall(&self) -> Option<(&str, u32, &Expr, &Expr, &Block)> {
        let main = self.func(self.main?);
        for s in &main.body.stmts {
            if let StmtKind::Forall {
                var,
                slot,
                lo,
                hi,
                body,
            } = &s.kind
            {
                return Some((var, *slot, lo, hi, body));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_count_of_scalar_is_one() {
        let o = ObjectDecl {
            name: "x".into(),
            kind: ObjectKind::SharedData,
            elem: ElemTy::Int,
            elem_name: None,
            dim_exprs: vec![],
            dims: vec![],
            span: Span::default(),
        };
        assert_eq!(o.elem_count(), 1);
    }

    #[test]
    fn elem_count_multiplies_dims() {
        let o = ObjectDecl {
            name: "a".into(),
            kind: ObjectKind::SharedData,
            elem: ElemTy::Int,
            elem_name: None,
            dim_exprs: vec![],
            dims: vec![3, 5],
            span: Span::default(),
        };
        assert_eq!(o.elem_count(), 15);
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::by_name("prand"), Some(Builtin::Prand));
        assert_eq!(Builtin::by_name("min").unwrap().arity(), 2);
        assert_eq!(Builtin::by_name("frobnicate"), None);
    }

    #[test]
    fn private_objects_are_not_shared() {
        let o = ObjectDecl {
            name: "p".into(),
            kind: ObjectKind::PrivateData,
            elem: ElemTy::Int,
            elem_name: None,
            dim_exprs: vec![],
            dims: vec![4],
            span: Span::default(),
        };
        assert!(!o.is_shared());
    }
}
