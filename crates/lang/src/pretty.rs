//! Source renderer for PSL programs.
//!
//! Renders both unchecked (path-form) and checked (resolved) programs back
//! to parseable PSL text. Used by the transformation report to show the
//! "restructured source" a source-to-source compiler would emit, and by
//! round-trip tests.

use crate::ast::*;
use std::fmt::Write;

/// Rendering context: the program plus (optionally) the enclosing
/// function, used to name resolved local slots.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    pub prog: &'a Program,
    pub func: Option<&'a Func>,
}

impl<'a> Ctx<'a> {
    pub fn new(prog: &'a Program) -> Self {
        Ctx { prog, func: None }
    }

    fn slot_name(&self, slot: u32) -> String {
        match self.func {
            Some(f) if (slot as usize) < f.slot_names.len() => f.slot_names[slot as usize].clone(),
            _ => format!("_local{slot}"),
        }
    }
}

/// Render a whole program to PSL source.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for pd in &p.params {
        match pd.value.or(pd.default) {
            Some(v) => writeln!(out, "param {} = {};", pd.name, v).unwrap(),
            None => writeln!(out, "param {};", pd.name).unwrap(),
        }
    }
    for c in &p.consts {
        writeln!(out, "const {} = {};", c.name, expr(Ctx::new(p), &c.expr)).unwrap();
    }
    let ctx = Ctx::new(p);
    for s in &p.structs {
        writeln!(out, "struct {} {{", s.name).unwrap();
        for f in &s.fields {
            match &f.len_expr {
                Some(e) => writeln!(out, "    int {}[{}];", f.name, expr(ctx, e)).unwrap(),
                None => writeln!(out, "    int {};", f.name).unwrap(),
            }
        }
        writeln!(out, "}}").unwrap();
    }
    for o in &p.objects {
        if o.kind == ObjectKind::Arena {
            continue; // synthetic; has no source form
        }
        let qual = match o.kind {
            ObjectKind::PrivateData => "private",
            _ => "shared",
        };
        let ty = match o.kind {
            ObjectKind::Lock => "lock".to_string(),
            _ => match o.elem {
                ElemTy::Int => "int".to_string(),
                ElemTy::Struct(sid) => p.struct_(sid).name.clone(),
            },
        };
        let mut dims = String::new();
        if !o.dim_exprs.is_empty() {
            for e in &o.dim_exprs {
                write!(dims, "[{}]", expr(ctx, e)).unwrap();
            }
        } else {
            for d in &o.dims {
                write!(dims, "[{d}]").unwrap();
            }
        }
        writeln!(out, "{qual} {ty} {}{dims};", o.name).unwrap();
    }
    for f in &p.funcs {
        let params = f
            .params
            .iter()
            .map(|s| format!("int {s}"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(out, "fn {}({params}) {{", f.name).unwrap();
        let fctx = Ctx {
            prog: p,
            func: Some(f),
        };
        for s in &f.body.stmts {
            stmt(fctx, s, 1, &mut out);
        }
        writeln!(out, "}}").unwrap();
    }
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn block(p: Ctx, b: &Block, level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(p, s, level + 1, out);
    }
    indent(level, out);
    out.push('}');
}

/// Render a statement at the given indentation level.
pub fn stmt(p: Ctx, s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &s.kind {
        StmtKind::VarDecl { name, init, .. } => match init {
            Some(e) => {
                out.push_str("var ");
                out.push_str(name);
                out.push_str(" = ");
                out.push_str(&expr(p, e));
                out.push_str(";\n");
            }
            None => {
                out.push_str("var ");
                out.push_str(name);
                out.push_str(";\n");
            }
        },
        StmtKind::Assign { target, value } => {
            out.push_str(&target_str(p, target));
            out.push_str(" = ");
            out.push_str(&expr(p, value));
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if (");
            out.push_str(&expr(p, cond));
            out.push_str(") ");
            block(p, then_blk, level, out);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                block(p, e, level, out);
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            out.push_str(&expr(p, cond));
            out.push_str(") ");
            block(p, body, level, out);
            out.push('\n');
        }
        StmtKind::For {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            out.push_str("for ");
            out.push_str(var);
            out.push_str(" in ");
            out.push_str(&expr(p, lo));
            out.push_str(" .. ");
            out.push_str(&expr(p, hi));
            if let Some(st) = step {
                out.push_str(" step ");
                out.push_str(&expr(p, st));
            }
            out.push(' ');
            block(p, body, level, out);
            out.push('\n');
        }
        StmtKind::Forall {
            var, lo, hi, body, ..
        } => {
            out.push_str("forall ");
            out.push_str(var);
            out.push_str(" in ");
            out.push_str(&expr(p, lo));
            out.push_str(" .. ");
            out.push_str(&expr(p, hi));
            out.push(' ');
            block(p, body, level, out);
            out.push('\n');
        }
        StmtKind::Barrier { .. } => out.push_str("barrier;\n"),
        StmtKind::Lock { target } => {
            out.push_str("lock(");
            out.push_str(&target_str(p, target));
            out.push_str(");\n");
        }
        StmtKind::Unlock { target } => {
            out.push_str("unlock(");
            out.push_str(&target_str(p, target));
            out.push_str(");\n");
        }
        StmtKind::CallStmt { name, args, .. } => {
            out.push_str(name);
            out.push('(');
            out.push_str(
                &args
                    .iter()
                    .map(|a| expr(p, a))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push_str(");\n");
        }
        StmtKind::Return(e) => match e {
            Some(e) => {
                out.push_str("return ");
                out.push_str(&expr(p, e));
                out.push_str(";\n");
            }
            None => out.push_str("return;\n"),
        },
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Block(b) => {
            block(p, b, level, out);
            out.push('\n');
        }
    }
}

fn target_str(p: Ctx, t: &Target) -> String {
    match t {
        Target::Path(path) => path_str(p, path),
        Target::Local(slot) => p.slot_name(*slot),
        Target::Place(pl) => place(p, pl),
    }
}

fn path_str(p: Ctx, path: &Path) -> String {
    let mut s = path.base.clone();
    for seg in &path.segs {
        match seg {
            PathSeg::Index(e) => {
                s.push('[');
                s.push_str(&expr(p, e));
                s.push(']');
            }
            PathSeg::Field(f) => {
                s.push('.');
                s.push_str(f);
            }
        }
    }
    s
}

/// Render a resolved place.
pub fn place(p: Ctx, pl: &Place) -> String {
    let obj = p.prog.object(pl.obj);
    let mut s = obj.name.clone();
    for e in &pl.idx {
        s.push('[');
        s.push_str(&expr(p, e));
        s.push(']');
    }
    if let Some((fid, fidx)) = &pl.field {
        if let ElemTy::Struct(sid) = obj.elem {
            s.push('.');
            s.push_str(&p.prog.struct_(sid).fields[fid.index()].name);
        }
        if let Some(e) = fidx {
            s.push('[');
            s.push_str(&expr(p, e));
            s.push(']');
        }
    }
    s
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

/// Render an expression (fully parenthesized for unambiguous round-trips).
pub fn expr(p: Ctx, e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Path(path) => path_str(p, path),
        ExprKind::Var(v) => match v {
            VarRef::Local(slot) => p.slot_name(*slot),
            VarRef::Param(i) => p.prog.params[*i as usize].name.clone(),
            VarRef::Const(i) => p.prog.consts[*i as usize].name.clone(),
        },
        ExprKind::Load(pl) => place(p, pl),
        ExprKind::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}({})", expr(p, a))
        }
        ExprKind::Binary(op, a, b) => {
            format!("({} {} {})", expr(p, a), binop_str(*op), expr(p, b))
        }
        ExprKind::Call(callee, args) => {
            let name = match callee {
                Callee::User(f) => p.prog.func(*f).name.clone(),
                Callee::Builtin(b) => b.name().to_string(),
            };
            format!(
                "{name}({})",
                args.iter()
                    .map(|a| expr(p, a))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
        ExprKind::CallNamed(name, args) => format!(
            "{name}({})",
            args.iter()
                .map(|a| expr(p, a))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, parse};

    const SRC: &str = r#"
        param NPROC = 4;
        const N = NPROC * 8;
        struct Node { int val; int nbr[2]; }
        shared int a[N];
        shared Node nodes[N];
        shared lock lk;
        fn work(int pid) {
            var i;
            for i in 0 .. N step 2 {
                if (a[i] > 0) {
                    a[i] = a[i] + pid;
                } else {
                    nodes[i].val = min(nodes[i].nbr[0], prand(i));
                }
            }
            while (a[0] > 0) { a[0] = a[0] - 1; break; }
            lock(lk);
            unlock(lk);
            barrier;
            return;
        }
        fn main() {
            forall p in 0 .. NPROC { work(p); }
        }
    "#;

    #[test]
    fn unchecked_render_reparses() {
        let p = parse(SRC).unwrap();
        let text = program(&p);
        let p2 = parse(&text).unwrap();
        assert_eq!(p2.funcs.len(), p.funcs.len());
        assert_eq!(p2.objects.len(), p.objects.len());
    }

    #[test]
    fn checked_render_reparses_and_rechecks() {
        let p = compile(SRC).unwrap();
        let text = program(&p);
        // Resolved locals are renamed `_localN`, which still parses.
        let p2 = compile(&text).unwrap();
        assert_eq!(p2.num_barriers, p.num_barriers);
        assert_eq!(p2.structs[0].size_words, p.structs[0].size_words);
    }

    #[test]
    fn render_contains_expected_syntax() {
        let p = compile(SRC).unwrap();
        let text = program(&p);
        assert!(text.contains("forall"));
        assert!(text.contains("barrier;"));
        assert!(text.contains("lock(lk);"));
        assert!(text.contains("struct Node {"));
        assert!(text.contains("step 2"));
    }

    #[test]
    fn double_round_trip_is_stable() {
        let p = compile(SRC).unwrap();
        let t1 = program(&p);
        let p2 = compile(&t1).unwrap();
        let t2 = program(&p2);
        let p3 = compile(&t2).unwrap();
        let t3 = program(&p3);
        assert_eq!(t2, t3);
    }
}
